/root/repo/target/release/deps/table_correctness-682cf1a834cff3c9.d: crates/bench/src/bin/table_correctness.rs

/root/repo/target/release/deps/table_correctness-682cf1a834cff3c9: crates/bench/src/bin/table_correctness.rs

crates/bench/src/bin/table_correctness.rs:
