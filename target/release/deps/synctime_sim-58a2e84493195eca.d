/root/repo/target/release/deps/synctime_sim-58a2e84493195eca.d: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libsynctime_sim-58a2e84493195eca.rlib: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libsynctime_sim-58a2e84493195eca.rmeta: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/programs.rs:
crates/sim/src/scenarios.rs:
crates/sim/src/sim.rs:
crates/sim/src/workload.rs:
