/root/repo/target/release/deps/ablate_ack-c497b534e03e23af.d: crates/bench/src/bin/ablate_ack.rs

/root/repo/target/release/deps/ablate_ack-c497b534e03e23af: crates/bench/src/bin/ablate_ack.rs

crates/bench/src/bin/ablate_ack.rs:
