/root/repo/target/release/deps/synctime-9852669fd08ae9d3.d: src/lib.rs

/root/repo/target/release/deps/libsynctime-9852669fd08ae9d3.rlib: src/lib.rs

/root/repo/target/release/deps/libsynctime-9852669fd08ae9d3.rmeta: src/lib.rs

src/lib.rs:
