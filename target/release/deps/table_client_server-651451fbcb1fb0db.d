/root/repo/target/release/deps/table_client_server-651451fbcb1fb0db.d: crates/bench/src/bin/table_client_server.rs

/root/repo/target/release/deps/table_client_server-651451fbcb1fb0db: crates/bench/src/bin/table_client_server.rs

crates/bench/src/bin/table_client_server.rs:
