/root/repo/target/release/deps/table_width-69349d858e126e74.d: crates/bench/src/bin/table_width.rs

/root/repo/target/release/deps/table_width-69349d858e126e74: crates/bench/src/bin/table_width.rs

crates/bench/src/bin/table_width.rs:
