/root/repo/target/release/deps/rand-5a22ccdeed9c7980.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-5a22ccdeed9c7980.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-5a22ccdeed9c7980.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
