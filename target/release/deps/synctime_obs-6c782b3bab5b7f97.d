/root/repo/target/release/deps/synctime_obs-6c782b3bab5b7f97.d: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

/root/repo/target/release/deps/libsynctime_obs-6c782b3bab5b7f97.rlib: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

/root/repo/target/release/deps/libsynctime_obs-6c782b3bab5b7f97.rmeta: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

crates/obs/src/lib.rs:
crates/obs/src/deadlock.rs:
crates/obs/src/recorder.rs:
crates/obs/src/stats.rs:
