/root/repo/target/release/deps/table_runtime_obs-802845e6ec619aee.d: crates/bench/src/bin/table_runtime_obs.rs

/root/repo/target/release/deps/table_runtime_obs-802845e6ec619aee: crates/bench/src/bin/table_runtime_obs.rs

crates/bench/src/bin/table_runtime_obs.rs:
