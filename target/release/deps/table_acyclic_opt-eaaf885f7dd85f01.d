/root/repo/target/release/deps/table_acyclic_opt-eaaf885f7dd85f01.d: crates/bench/src/bin/table_acyclic_opt.rs

/root/repo/target/release/deps/table_acyclic_opt-eaaf885f7dd85f01: crates/bench/src/bin/table_acyclic_opt.rs

crates/bench/src/bin/table_acyclic_opt.rs:
