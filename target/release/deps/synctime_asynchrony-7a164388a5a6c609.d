/root/repo/target/release/deps/synctime_asynchrony-7a164388a5a6c609.d: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/release/deps/libsynctime_asynchrony-7a164388a5a6c609.rlib: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/release/deps/libsynctime_asynchrony-7a164388a5a6c609.rmeta: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

crates/asynchrony/src/lib.rs:
crates/asynchrony/src/computation.rs:
crates/asynchrony/src/fm.rs:
