/root/repo/target/release/deps/ablate_step3-a34613d032421d31.d: crates/bench/src/bin/ablate_step3.rs

/root/repo/target/release/deps/ablate_step3-a34613d032421d31: crates/bench/src/bin/ablate_step3.rs

crates/bench/src/bin/ablate_step3.rs:
