/root/repo/target/release/deps/synctime_poset-8160399f8c6007a8.d: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

/root/repo/target/release/deps/libsynctime_poset-8160399f8c6007a8.rlib: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

/root/repo/target/release/deps/libsynctime_poset-8160399f8c6007a8.rmeta: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

crates/poset/src/lib.rs:
crates/poset/src/bitset.rs:
crates/poset/src/error.rs:
crates/poset/src/poset.rs:
crates/poset/src/chains.rs:
crates/poset/src/dimension.rs:
crates/poset/src/matching.rs:
crates/poset/src/realizer.rs:
