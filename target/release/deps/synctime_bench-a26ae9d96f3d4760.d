/root/repo/target/release/deps/synctime_bench-a26ae9d96f3d4760.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsynctime_bench-a26ae9d96f3d4760.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsynctime_bench-a26ae9d96f3d4760.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
