/root/repo/target/release/deps/table_clock_size-6f95c56e417fdc80.d: crates/bench/src/bin/table_clock_size.rs

/root/repo/target/release/deps/table_clock_size-6f95c56e417fdc80: crates/bench/src/bin/table_clock_size.rs

crates/bench/src/bin/table_clock_size.rs:
