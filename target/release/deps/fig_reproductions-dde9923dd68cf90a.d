/root/repo/target/release/deps/fig_reproductions-dde9923dd68cf90a.d: crates/bench/src/bin/fig_reproductions.rs

/root/repo/target/release/deps/fig_reproductions-dde9923dd68cf90a: crates/bench/src/bin/fig_reproductions.rs

crates/bench/src/bin/fig_reproductions.rs:
