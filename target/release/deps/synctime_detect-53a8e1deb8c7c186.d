/root/repo/target/release/deps/synctime_detect-53a8e1deb8c7c186.d: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/release/deps/libsynctime_detect-53a8e1deb8c7c186.rlib: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/release/deps/libsynctime_detect-53a8e1deb8c7c186.rmeta: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

crates/detect/src/lib.rs:
crates/detect/src/monitor.rs:
crates/detect/src/orphans.rs:
crates/detect/src/wcp.rs:
