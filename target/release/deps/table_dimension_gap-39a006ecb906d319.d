/root/repo/target/release/deps/table_dimension_gap-39a006ecb906d319.d: crates/bench/src/bin/table_dimension_gap.rs

/root/repo/target/release/deps/table_dimension_gap-39a006ecb906d319: crates/bench/src/bin/table_dimension_gap.rs

crates/bench/src/bin/table_dimension_gap.rs:
