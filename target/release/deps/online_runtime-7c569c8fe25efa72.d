/root/repo/target/release/deps/online_runtime-7c569c8fe25efa72.d: crates/bench/benches/online_runtime.rs

/root/repo/target/release/deps/online_runtime-7c569c8fe25efa72: crates/bench/benches/online_runtime.rs

crates/bench/benches/online_runtime.rs:
