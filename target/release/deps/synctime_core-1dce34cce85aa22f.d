/root/repo/target/release/deps/synctime_core-1dce34cce85aa22f.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/vector.rs crates/core/src/events.rs crates/core/src/fm.rs crates/core/src/fz.rs crates/core/src/lamport.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/plausible.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libsynctime_core-1dce34cce85aa22f.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/vector.rs crates/core/src/events.rs crates/core/src/fm.rs crates/core/src/fz.rs crates/core/src/lamport.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/plausible.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libsynctime_core-1dce34cce85aa22f.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/vector.rs crates/core/src/events.rs crates/core/src/fm.rs crates/core/src/fz.rs crates/core/src/lamport.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/plausible.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/vector.rs:
crates/core/src/events.rs:
crates/core/src/fm.rs:
crates/core/src/fz.rs:
crates/core/src/lamport.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/plausible.rs:
crates/core/src/wire.rs:
