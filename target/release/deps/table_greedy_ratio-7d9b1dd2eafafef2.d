/root/repo/target/release/deps/table_greedy_ratio-7d9b1dd2eafafef2.d: crates/bench/src/bin/table_greedy_ratio.rs

/root/repo/target/release/deps/table_greedy_ratio-7d9b1dd2eafafef2: crates/bench/src/bin/table_greedy_ratio.rs

crates/bench/src/bin/table_greedy_ratio.rs:
