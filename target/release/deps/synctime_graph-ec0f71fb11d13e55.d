/root/repo/target/release/deps/synctime_graph-ec0f71fb11d13e55.d: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/release/deps/libsynctime_graph-ec0f71fb11d13e55.rlib: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/release/deps/libsynctime_graph-ec0f71fb11d13e55.rmeta: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

crates/graph/src/lib.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/cover.rs:
crates/graph/src/decompose.rs:
crates/graph/src/incremental.rs:
crates/graph/src/topology.rs:
