/root/repo/target/release/deps/synctime_runtime-de4f9f68e9c5b09b.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/release/deps/libsynctime_runtime-de4f9f68e9c5b09b.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/release/deps/libsynctime_runtime-de4f9f68e9c5b09b.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/matcher.rs:
crates/runtime/src/runtime.rs:
