/root/repo/target/release/deps/table_wire_bytes-1019fce55b0c6607.d: crates/bench/src/bin/table_wire_bytes.rs

/root/repo/target/release/deps/table_wire_bytes-1019fce55b0c6607: crates/bench/src/bin/table_wire_bytes.rs

crates/bench/src/bin/table_wire_bytes.rs:
