/root/repo/target/release/deps/synctime_trace-50d6b9765d85d365.d: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/release/deps/libsynctime_trace-50d6b9765d85d365.rlib: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/release/deps/libsynctime_trace-50d6b9765d85d365.rmeta: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

crates/trace/src/lib.rs:
crates/trace/src/computation.rs:
crates/trace/src/error.rs:
crates/trace/src/oracle.rs:
crates/trace/src/diagram.rs:
crates/trace/src/examples.rs:
crates/trace/src/json.rs:
