/root/repo/target/release/deps/table_plausible-82344057be78d7d7.d: crates/bench/src/bin/table_plausible.rs

/root/repo/target/release/deps/table_plausible-82344057be78d7d7: crates/bench/src/bin/table_plausible.rs

crates/bench/src/bin/table_plausible.rs:
