/root/repo/target/release/deps/synctime-f6bfd7461fcad884.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/release/deps/synctime-f6bfd7461fcad884: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
