/root/repo/target/debug/deps/table_acyclic_opt-cc2d958b66f00b05.d: crates/bench/src/bin/table_acyclic_opt.rs

/root/repo/target/debug/deps/table_acyclic_opt-cc2d958b66f00b05: crates/bench/src/bin/table_acyclic_opt.rs

crates/bench/src/bin/table_acyclic_opt.rs:
