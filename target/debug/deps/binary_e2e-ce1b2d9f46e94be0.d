/root/repo/target/debug/deps/binary_e2e-ce1b2d9f46e94be0.d: crates/cli/tests/binary_e2e.rs

/root/repo/target/debug/deps/binary_e2e-ce1b2d9f46e94be0: crates/cli/tests/binary_e2e.rs

crates/cli/tests/binary_e2e.rs:

# env-dep:CARGO_BIN_EXE_synctime=/root/repo/target/debug/synctime
