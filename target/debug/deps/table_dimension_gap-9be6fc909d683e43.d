/root/repo/target/debug/deps/table_dimension_gap-9be6fc909d683e43.d: crates/bench/src/bin/table_dimension_gap.rs

/root/repo/target/debug/deps/table_dimension_gap-9be6fc909d683e43: crates/bench/src/bin/table_dimension_gap.rs

crates/bench/src/bin/table_dimension_gap.rs:
