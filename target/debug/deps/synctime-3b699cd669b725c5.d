/root/repo/target/debug/deps/synctime-3b699cd669b725c5.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/synctime-3b699cd669b725c5: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
