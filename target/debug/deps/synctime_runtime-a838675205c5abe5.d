/root/repo/target/debug/deps/synctime_runtime-a838675205c5abe5.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/synctime_runtime-a838675205c5abe5: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/matcher.rs:
crates/runtime/src/runtime.rs:
