/root/repo/target/debug/deps/table_correctness-f497b1e637dcb7c5.d: crates/bench/src/bin/table_correctness.rs

/root/repo/target/debug/deps/table_correctness-f497b1e637dcb7c5: crates/bench/src/bin/table_correctness.rs

crates/bench/src/bin/table_correctness.rs:
