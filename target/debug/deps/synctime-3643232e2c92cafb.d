/root/repo/target/debug/deps/synctime-3643232e2c92cafb.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/synctime-3643232e2c92cafb: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
