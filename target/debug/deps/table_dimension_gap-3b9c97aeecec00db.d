/root/repo/target/debug/deps/table_dimension_gap-3b9c97aeecec00db.d: crates/bench/src/bin/table_dimension_gap.rs

/root/repo/target/debug/deps/table_dimension_gap-3b9c97aeecec00db: crates/bench/src/bin/table_dimension_gap.rs

crates/bench/src/bin/table_dimension_gap.rs:
