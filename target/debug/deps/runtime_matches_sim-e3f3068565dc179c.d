/root/repo/target/debug/deps/runtime_matches_sim-e3f3068565dc179c.d: tests/runtime_matches_sim.rs

/root/repo/target/debug/deps/runtime_matches_sim-e3f3068565dc179c: tests/runtime_matches_sim.rs

tests/runtime_matches_sim.rs:
