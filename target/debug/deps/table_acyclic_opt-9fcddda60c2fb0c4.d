/root/repo/target/debug/deps/table_acyclic_opt-9fcddda60c2fb0c4.d: crates/bench/src/bin/table_acyclic_opt.rs

/root/repo/target/debug/deps/table_acyclic_opt-9fcddda60c2fb0c4: crates/bench/src/bin/table_acyclic_opt.rs

crates/bench/src/bin/table_acyclic_opt.rs:
