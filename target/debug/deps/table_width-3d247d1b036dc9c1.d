/root/repo/target/debug/deps/table_width-3d247d1b036dc9c1.d: crates/bench/src/bin/table_width.rs

/root/repo/target/debug/deps/table_width-3d247d1b036dc9c1: crates/bench/src/bin/table_width.rs

crates/bench/src/bin/table_width.rs:
