/root/repo/target/debug/deps/synctime_trace-9c11d0c24991294b.d: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/debug/deps/libsynctime_trace-9c11d0c24991294b.rlib: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/debug/deps/libsynctime_trace-9c11d0c24991294b.rmeta: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

crates/trace/src/lib.rs:
crates/trace/src/computation.rs:
crates/trace/src/error.rs:
crates/trace/src/oracle.rs:
crates/trace/src/diagram.rs:
crates/trace/src/examples.rs:
crates/trace/src/json.rs:
