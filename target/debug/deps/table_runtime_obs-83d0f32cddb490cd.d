/root/repo/target/debug/deps/table_runtime_obs-83d0f32cddb490cd.d: crates/bench/src/bin/table_runtime_obs.rs

/root/repo/target/debug/deps/table_runtime_obs-83d0f32cddb490cd: crates/bench/src/bin/table_runtime_obs.rs

crates/bench/src/bin/table_runtime_obs.rs:
