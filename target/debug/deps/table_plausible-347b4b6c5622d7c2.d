/root/repo/target/debug/deps/table_plausible-347b4b6c5622d7c2.d: crates/bench/src/bin/table_plausible.rs

/root/repo/target/debug/deps/table_plausible-347b4b6c5622d7c2: crates/bench/src/bin/table_plausible.rs

crates/bench/src/bin/table_plausible.rs:
