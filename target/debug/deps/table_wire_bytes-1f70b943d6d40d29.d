/root/repo/target/debug/deps/table_wire_bytes-1f70b943d6d40d29.d: crates/bench/src/bin/table_wire_bytes.rs

/root/repo/target/debug/deps/table_wire_bytes-1f70b943d6d40d29: crates/bench/src/bin/table_wire_bytes.rs

crates/bench/src/bin/table_wire_bytes.rs:
