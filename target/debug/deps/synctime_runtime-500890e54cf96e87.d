/root/repo/target/debug/deps/synctime_runtime-500890e54cf96e87.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-500890e54cf96e87.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/matcher.rs:
crates/runtime/src/runtime.rs:
