/root/repo/target/debug/deps/oracle_scaling-60f48f2630a890c5.d: crates/bench/benches/oracle_scaling.rs

/root/repo/target/debug/deps/oracle_scaling-60f48f2630a890c5: crates/bench/benches/oracle_scaling.rs

crates/bench/benches/oracle_scaling.rs:
