/root/repo/target/debug/deps/synctime_runtime-ff7d56f625cc7971.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/synctime_runtime-ff7d56f625cc7971: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/runtime.rs:
