/root/repo/target/debug/deps/serde_json-eaf649bcdaa83271.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-eaf649bcdaa83271.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
