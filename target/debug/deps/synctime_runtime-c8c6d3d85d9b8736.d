/root/repo/target/debug/deps/synctime_runtime-c8c6d3d85d9b8736.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-c8c6d3d85d9b8736.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-c8c6d3d85d9b8736.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/runtime.rs:
