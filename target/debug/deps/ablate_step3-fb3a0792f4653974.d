/root/repo/target/debug/deps/ablate_step3-fb3a0792f4653974.d: crates/bench/src/bin/ablate_step3.rs

/root/repo/target/debug/deps/ablate_step3-fb3a0792f4653974: crates/bench/src/bin/ablate_step3.rs

crates/bench/src/bin/ablate_step3.rs:
