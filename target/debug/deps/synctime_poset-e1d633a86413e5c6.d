/root/repo/target/debug/deps/synctime_poset-e1d633a86413e5c6.d: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

/root/repo/target/debug/deps/libsynctime_poset-e1d633a86413e5c6.rlib: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

/root/repo/target/debug/deps/libsynctime_poset-e1d633a86413e5c6.rmeta: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

crates/poset/src/lib.rs:
crates/poset/src/bitset.rs:
crates/poset/src/error.rs:
crates/poset/src/poset.rs:
crates/poset/src/chains.rs:
crates/poset/src/dimension.rs:
crates/poset/src/matching.rs:
crates/poset/src/realizer.rs:
