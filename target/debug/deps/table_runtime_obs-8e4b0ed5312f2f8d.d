/root/repo/target/debug/deps/table_runtime_obs-8e4b0ed5312f2f8d.d: crates/bench/src/bin/table_runtime_obs.rs

/root/repo/target/debug/deps/table_runtime_obs-8e4b0ed5312f2f8d: crates/bench/src/bin/table_runtime_obs.rs

crates/bench/src/bin/table_runtime_obs.rs:
