/root/repo/target/debug/deps/table_width-286bdba5cbb22f1f.d: crates/bench/src/bin/table_width.rs

/root/repo/target/debug/deps/table_width-286bdba5cbb22f1f: crates/bench/src/bin/table_width.rs

crates/bench/src/bin/table_width.rs:
