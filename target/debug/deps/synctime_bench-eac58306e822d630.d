/root/repo/target/debug/deps/synctime_bench-eac58306e822d630.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/synctime_bench-eac58306e822d630: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
