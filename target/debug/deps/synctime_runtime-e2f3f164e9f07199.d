/root/repo/target/debug/deps/synctime_runtime-e2f3f164e9f07199.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-e2f3f164e9f07199.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-e2f3f164e9f07199.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/matcher.rs:
crates/runtime/src/runtime.rs:
