/root/repo/target/debug/deps/synctime_trace-0c916c3da38c9c01.d: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/debug/deps/libsynctime_trace-0c916c3da38c9c01.rmeta: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

crates/trace/src/lib.rs:
crates/trace/src/computation.rs:
crates/trace/src/error.rs:
crates/trace/src/oracle.rs:
crates/trace/src/diagram.rs:
crates/trace/src/examples.rs:
crates/trace/src/json.rs:
