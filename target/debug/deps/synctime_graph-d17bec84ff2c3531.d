/root/repo/target/debug/deps/synctime_graph-d17bec84ff2c3531.d: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/debug/deps/libsynctime_graph-d17bec84ff2c3531.rlib: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/debug/deps/libsynctime_graph-d17bec84ff2c3531.rmeta: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

crates/graph/src/lib.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/cover.rs:
crates/graph/src/decompose.rs:
crates/graph/src/incremental.rs:
crates/graph/src/topology.rs:
