/root/repo/target/debug/deps/table_wire_bytes-0ab971e177d91ee9.d: crates/bench/src/bin/table_wire_bytes.rs

/root/repo/target/debug/deps/table_wire_bytes-0ab971e177d91ee9: crates/bench/src/bin/table_wire_bytes.rs

crates/bench/src/bin/table_wire_bytes.rs:
