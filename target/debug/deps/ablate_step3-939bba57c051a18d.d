/root/repo/target/debug/deps/ablate_step3-939bba57c051a18d.d: crates/bench/src/bin/ablate_step3.rs

/root/repo/target/debug/deps/ablate_step3-939bba57c051a18d: crates/bench/src/bin/ablate_step3.rs

crates/bench/src/bin/ablate_step3.rs:
