/root/repo/target/debug/deps/decomposition_props-4f953de08bffbe7b.d: tests/decomposition_props.rs

/root/repo/target/debug/deps/decomposition_props-4f953de08bffbe7b: tests/decomposition_props.rs

tests/decomposition_props.rs:
