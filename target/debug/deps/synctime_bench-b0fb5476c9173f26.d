/root/repo/target/debug/deps/synctime_bench-b0fb5476c9173f26.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-b0fb5476c9173f26.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-b0fb5476c9173f26.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
