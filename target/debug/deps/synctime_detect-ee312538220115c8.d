/root/repo/target/debug/deps/synctime_detect-ee312538220115c8.d: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/debug/deps/libsynctime_detect-ee312538220115c8.rlib: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/debug/deps/libsynctime_detect-ee312538220115c8.rmeta: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

crates/detect/src/lib.rs:
crates/detect/src/monitor.rs:
crates/detect/src/orphans.rs:
crates/detect/src/wcp.rs:
