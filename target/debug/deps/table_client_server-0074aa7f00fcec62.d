/root/repo/target/debug/deps/table_client_server-0074aa7f00fcec62.d: crates/bench/src/bin/table_client_server.rs

/root/repo/target/debug/deps/table_client_server-0074aa7f00fcec62: crates/bench/src/bin/table_client_server.rs

crates/bench/src/bin/table_client_server.rs:
