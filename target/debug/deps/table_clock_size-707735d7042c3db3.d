/root/repo/target/debug/deps/table_clock_size-707735d7042c3db3.d: crates/bench/src/bin/table_clock_size.rs

/root/repo/target/debug/deps/table_clock_size-707735d7042c3db3: crates/bench/src/bin/table_clock_size.rs

crates/bench/src/bin/table_clock_size.rs:
