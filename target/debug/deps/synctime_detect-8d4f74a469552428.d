/root/repo/target/debug/deps/synctime_detect-8d4f74a469552428.d: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/debug/deps/synctime_detect-8d4f74a469552428: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

crates/detect/src/lib.rs:
crates/detect/src/monitor.rs:
crates/detect/src/orphans.rs:
crates/detect/src/wcp.rs:
