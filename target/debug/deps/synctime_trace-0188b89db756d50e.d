/root/repo/target/debug/deps/synctime_trace-0188b89db756d50e.d: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/debug/deps/libsynctime_trace-0188b89db756d50e.rlib: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/debug/deps/libsynctime_trace-0188b89db756d50e.rmeta: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

crates/trace/src/lib.rs:
crates/trace/src/computation.rs:
crates/trace/src/error.rs:
crates/trace/src/oracle.rs:
crates/trace/src/diagram.rs:
crates/trace/src/examples.rs:
crates/trace/src/json.rs:
