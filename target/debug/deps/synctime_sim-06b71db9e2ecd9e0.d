/root/repo/target/debug/deps/synctime_sim-06b71db9e2ecd9e0.d: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libsynctime_sim-06b71db9e2ecd9e0.rlib: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libsynctime_sim-06b71db9e2ecd9e0.rmeta: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/programs.rs:
crates/sim/src/scenarios.rs:
crates/sim/src/sim.rs:
crates/sim/src/workload.rs:
