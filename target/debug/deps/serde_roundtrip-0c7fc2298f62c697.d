/root/repo/target/debug/deps/serde_roundtrip-0c7fc2298f62c697.d: crates/trace/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-0c7fc2298f62c697: crates/trace/tests/serde_roundtrip.rs

crates/trace/tests/serde_roundtrip.rs:
