/root/repo/target/debug/deps/ablate_ack-0f762becc95f8eb7.d: crates/bench/src/bin/ablate_ack.rs

/root/repo/target/debug/deps/ablate_ack-0f762becc95f8eb7: crates/bench/src/bin/ablate_ack.rs

crates/bench/src/bin/ablate_ack.rs:
