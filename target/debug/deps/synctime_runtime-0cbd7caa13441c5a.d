/root/repo/target/debug/deps/synctime_runtime-0cbd7caa13441c5a.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-0cbd7caa13441c5a.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-0cbd7caa13441c5a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/matcher.rs:
crates/runtime/src/runtime.rs:
