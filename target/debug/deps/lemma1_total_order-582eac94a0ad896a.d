/root/repo/target/debug/deps/lemma1_total_order-582eac94a0ad896a.d: tests/lemma1_total_order.rs

/root/repo/target/debug/deps/lemma1_total_order-582eac94a0ad896a: tests/lemma1_total_order.rs

tests/lemma1_total_order.rs:
