/root/repo/target/debug/deps/table_greedy_ratio-d2f77e4e6b5c6151.d: crates/bench/src/bin/table_greedy_ratio.rs

/root/repo/target/debug/deps/table_greedy_ratio-d2f77e4e6b5c6151: crates/bench/src/bin/table_greedy_ratio.rs

crates/bench/src/bin/table_greedy_ratio.rs:
