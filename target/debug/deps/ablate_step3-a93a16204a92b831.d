/root/repo/target/debug/deps/ablate_step3-a93a16204a92b831.d: crates/bench/src/bin/ablate_step3.rs

/root/repo/target/debug/deps/ablate_step3-a93a16204a92b831: crates/bench/src/bin/ablate_step3.rs

crates/bench/src/bin/ablate_step3.rs:
