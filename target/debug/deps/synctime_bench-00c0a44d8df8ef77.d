/root/repo/target/debug/deps/synctime_bench-00c0a44d8df8ef77.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-00c0a44d8df8ef77.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-00c0a44d8df8ef77.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
