/root/repo/target/debug/deps/table_greedy_ratio-0e847169820ea17b.d: crates/bench/src/bin/table_greedy_ratio.rs

/root/repo/target/debug/deps/table_greedy_ratio-0e847169820ea17b: crates/bench/src/bin/table_greedy_ratio.rs

crates/bench/src/bin/table_greedy_ratio.rs:
