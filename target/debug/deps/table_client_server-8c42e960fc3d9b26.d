/root/repo/target/debug/deps/table_client_server-8c42e960fc3d9b26.d: crates/bench/src/bin/table_client_server.rs

/root/repo/target/debug/deps/table_client_server-8c42e960fc3d9b26: crates/bench/src/bin/table_client_server.rs

crates/bench/src/bin/table_client_server.rs:
