/root/repo/target/debug/deps/table_dimension_gap-e629a51c671ec5bb.d: crates/bench/src/bin/table_dimension_gap.rs

/root/repo/target/debug/deps/table_dimension_gap-e629a51c671ec5bb: crates/bench/src/bin/table_dimension_gap.rs

crates/bench/src/bin/table_dimension_gap.rs:
