/root/repo/target/debug/deps/table_correctness-eabfbb3b1adf3912.d: crates/bench/src/bin/table_correctness.rs

/root/repo/target/debug/deps/table_correctness-eabfbb3b1adf3912: crates/bench/src/bin/table_correctness.rs

crates/bench/src/bin/table_correctness.rs:
