/root/repo/target/debug/deps/synctime-6fc4b9d685cc518e.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/synctime-6fc4b9d685cc518e: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
