/root/repo/target/debug/deps/live_monitoring-c57238cd8a424b8b.d: tests/live_monitoring.rs

/root/repo/target/debug/deps/live_monitoring-c57238cd8a424b8b: tests/live_monitoring.rs

tests/live_monitoring.rs:
