/root/repo/target/debug/deps/theorem8_offline-680d98bbb44d4da5.d: tests/theorem8_offline.rs

/root/repo/target/debug/deps/theorem8_offline-680d98bbb44d4da5: tests/theorem8_offline.rs

tests/theorem8_offline.rs:
