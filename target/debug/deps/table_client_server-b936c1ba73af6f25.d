/root/repo/target/debug/deps/table_client_server-b936c1ba73af6f25.d: crates/bench/src/bin/table_client_server.rs

/root/repo/target/debug/deps/table_client_server-b936c1ba73af6f25: crates/bench/src/bin/table_client_server.rs

crates/bench/src/bin/table_client_server.rs:
