/root/repo/target/debug/deps/rand-eab032d410af28d1.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-eab032d410af28d1.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-eab032d410af28d1.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
