/root/repo/target/debug/deps/runtime_matches_sim-7b51de22686b3d74.d: tests/runtime_matches_sim.rs

/root/repo/target/debug/deps/runtime_matches_sim-7b51de22686b3d74: tests/runtime_matches_sim.rs

tests/runtime_matches_sim.rs:
