/root/repo/target/debug/deps/synctime_bench-187a1af6e711b07a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/synctime_bench-187a1af6e711b07a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
