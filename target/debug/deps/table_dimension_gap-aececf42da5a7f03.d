/root/repo/target/debug/deps/table_dimension_gap-aececf42da5a7f03.d: crates/bench/src/bin/table_dimension_gap.rs

/root/repo/target/debug/deps/table_dimension_gap-aececf42da5a7f03: crates/bench/src/bin/table_dimension_gap.rs

crates/bench/src/bin/table_dimension_gap.rs:
