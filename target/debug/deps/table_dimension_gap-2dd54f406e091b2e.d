/root/repo/target/debug/deps/table_dimension_gap-2dd54f406e091b2e.d: crates/bench/src/bin/table_dimension_gap.rs

/root/repo/target/debug/deps/table_dimension_gap-2dd54f406e091b2e: crates/bench/src/bin/table_dimension_gap.rs

crates/bench/src/bin/table_dimension_gap.rs:
