/root/repo/target/debug/deps/binary_e2e-3476663b904f5033.d: crates/cli/tests/binary_e2e.rs

/root/repo/target/debug/deps/binary_e2e-3476663b904f5033: crates/cli/tests/binary_e2e.rs

crates/cli/tests/binary_e2e.rs:

# env-dep:CARGO_BIN_EXE_synctime=/root/repo/target/debug/synctime
