/root/repo/target/debug/deps/ablate_step3-2ea1ebdb6a4aed86.d: crates/bench/src/bin/ablate_step3.rs

/root/repo/target/debug/deps/ablate_step3-2ea1ebdb6a4aed86: crates/bench/src/bin/ablate_step3.rs

crates/bench/src/bin/ablate_step3.rs:
