/root/repo/target/debug/deps/embedding-4f6aa1dde0f99520.d: crates/asynchrony/tests/embedding.rs

/root/repo/target/debug/deps/embedding-4f6aa1dde0f99520: crates/asynchrony/tests/embedding.rs

crates/asynchrony/tests/embedding.rs:
