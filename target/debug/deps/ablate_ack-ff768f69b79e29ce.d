/root/repo/target/debug/deps/ablate_ack-ff768f69b79e29ce.d: crates/bench/src/bin/ablate_ack.rs

/root/repo/target/debug/deps/ablate_ack-ff768f69b79e29ce: crates/bench/src/bin/ablate_ack.rs

crates/bench/src/bin/ablate_ack.rs:
