/root/repo/target/debug/deps/table_wire_bytes-89f9c23da067f0ff.d: crates/bench/src/bin/table_wire_bytes.rs

/root/repo/target/debug/deps/table_wire_bytes-89f9c23da067f0ff: crates/bench/src/bin/table_wire_bytes.rs

crates/bench/src/bin/table_wire_bytes.rs:
