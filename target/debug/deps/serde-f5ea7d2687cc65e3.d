/root/repo/target/debug/deps/serde-f5ea7d2687cc65e3.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f5ea7d2687cc65e3.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
