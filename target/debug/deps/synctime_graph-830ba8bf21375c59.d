/root/repo/target/debug/deps/synctime_graph-830ba8bf21375c59.d: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/debug/deps/synctime_graph-830ba8bf21375c59: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

crates/graph/src/lib.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/cover.rs:
crates/graph/src/decompose.rs:
crates/graph/src/incremental.rs:
crates/graph/src/topology.rs:
