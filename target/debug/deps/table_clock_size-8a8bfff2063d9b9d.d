/root/repo/target/debug/deps/table_clock_size-8a8bfff2063d9b9d.d: crates/bench/src/bin/table_clock_size.rs

/root/repo/target/debug/deps/table_clock_size-8a8bfff2063d9b9d: crates/bench/src/bin/table_clock_size.rs

crates/bench/src/bin/table_clock_size.rs:
