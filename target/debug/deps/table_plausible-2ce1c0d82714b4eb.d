/root/repo/target/debug/deps/table_plausible-2ce1c0d82714b4eb.d: crates/bench/src/bin/table_plausible.rs

/root/repo/target/debug/deps/table_plausible-2ce1c0d82714b4eb: crates/bench/src/bin/table_plausible.rs

crates/bench/src/bin/table_plausible.rs:
