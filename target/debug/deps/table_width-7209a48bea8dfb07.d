/root/repo/target/debug/deps/table_width-7209a48bea8dfb07.d: crates/bench/src/bin/table_width.rs

/root/repo/target/debug/deps/table_width-7209a48bea8dfb07: crates/bench/src/bin/table_width.rs

crates/bench/src/bin/table_width.rs:
