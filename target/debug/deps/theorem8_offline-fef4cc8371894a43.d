/root/repo/target/debug/deps/theorem8_offline-fef4cc8371894a43.d: tests/theorem8_offline.rs

/root/repo/target/debug/deps/theorem8_offline-fef4cc8371894a43: tests/theorem8_offline.rs

tests/theorem8_offline.rs:
