/root/repo/target/debug/deps/table_greedy_ratio-d510dc2dcaa48eaa.d: crates/bench/src/bin/table_greedy_ratio.rs

/root/repo/target/debug/deps/table_greedy_ratio-d510dc2dcaa48eaa: crates/bench/src/bin/table_greedy_ratio.rs

crates/bench/src/bin/table_greedy_ratio.rs:
