/root/repo/target/debug/deps/table_client_server-65a43eb245dfb5d3.d: crates/bench/src/bin/table_client_server.rs

/root/repo/target/debug/deps/table_client_server-65a43eb245dfb5d3: crates/bench/src/bin/table_client_server.rs

crates/bench/src/bin/table_client_server.rs:
