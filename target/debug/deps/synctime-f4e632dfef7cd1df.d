/root/repo/target/debug/deps/synctime-f4e632dfef7cd1df.d: src/lib.rs

/root/repo/target/debug/deps/synctime-f4e632dfef7cd1df: src/lib.rs

src/lib.rs:
