/root/repo/target/debug/deps/live_monitoring-264ac625b1290509.d: tests/live_monitoring.rs

/root/repo/target/debug/deps/live_monitoring-264ac625b1290509: tests/live_monitoring.rs

tests/live_monitoring.rs:
