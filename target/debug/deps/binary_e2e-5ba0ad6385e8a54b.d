/root/repo/target/debug/deps/binary_e2e-5ba0ad6385e8a54b.d: crates/cli/tests/binary_e2e.rs

/root/repo/target/debug/deps/binary_e2e-5ba0ad6385e8a54b: crates/cli/tests/binary_e2e.rs

crates/cli/tests/binary_e2e.rs:

# env-dep:CARGO_BIN_EXE_synctime=/root/repo/target/debug/synctime
