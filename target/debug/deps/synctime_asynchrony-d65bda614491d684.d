/root/repo/target/debug/deps/synctime_asynchrony-d65bda614491d684.d: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/debug/deps/synctime_asynchrony-d65bda614491d684: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

crates/asynchrony/src/lib.rs:
crates/asynchrony/src/computation.rs:
crates/asynchrony/src/fm.rs:
