/root/repo/target/debug/deps/synctime-0b870e62952d16c2.d: src/lib.rs

/root/repo/target/debug/deps/libsynctime-0b870e62952d16c2.rlib: src/lib.rs

/root/repo/target/debug/deps/libsynctime-0b870e62952d16c2.rmeta: src/lib.rs

src/lib.rs:
