/root/repo/target/debug/deps/table_wire_bytes-426493d9f1933a89.d: crates/bench/src/bin/table_wire_bytes.rs

/root/repo/target/debug/deps/table_wire_bytes-426493d9f1933a89: crates/bench/src/bin/table_wire_bytes.rs

crates/bench/src/bin/table_wire_bytes.rs:
