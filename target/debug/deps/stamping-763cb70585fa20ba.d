/root/repo/target/debug/deps/stamping-763cb70585fa20ba.d: crates/bench/benches/stamping.rs

/root/repo/target/debug/deps/stamping-763cb70585fa20ba: crates/bench/benches/stamping.rs

crates/bench/benches/stamping.rs:
