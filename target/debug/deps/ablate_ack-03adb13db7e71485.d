/root/repo/target/debug/deps/ablate_ack-03adb13db7e71485.d: crates/bench/src/bin/ablate_ack.rs

/root/repo/target/debug/deps/ablate_ack-03adb13db7e71485: crates/bench/src/bin/ablate_ack.rs

crates/bench/src/bin/ablate_ack.rs:
