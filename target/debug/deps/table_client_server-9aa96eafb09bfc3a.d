/root/repo/target/debug/deps/table_client_server-9aa96eafb09bfc3a.d: crates/bench/src/bin/table_client_server.rs

/root/repo/target/debug/deps/table_client_server-9aa96eafb09bfc3a: crates/bench/src/bin/table_client_server.rs

crates/bench/src/bin/table_client_server.rs:
