/root/repo/target/debug/deps/synctime-e5f8dd535e1eb4a5.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/synctime-e5f8dd535e1eb4a5: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
