/root/repo/target/debug/deps/synctime_graph-f1b7f4cf898b751e.d: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/debug/deps/libsynctime_graph-f1b7f4cf898b751e.rmeta: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

crates/graph/src/lib.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/cover.rs:
crates/graph/src/decompose.rs:
crates/graph/src/incremental.rs:
crates/graph/src/topology.rs:
