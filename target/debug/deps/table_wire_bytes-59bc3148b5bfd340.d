/root/repo/target/debug/deps/table_wire_bytes-59bc3148b5bfd340.d: crates/bench/src/bin/table_wire_bytes.rs

/root/repo/target/debug/deps/table_wire_bytes-59bc3148b5bfd340: crates/bench/src/bin/table_wire_bytes.rs

crates/bench/src/bin/table_wire_bytes.rs:
