/root/repo/target/debug/deps/synctime-6c91fa158aaa5cfc.d: src/lib.rs

/root/repo/target/debug/deps/synctime-6c91fa158aaa5cfc: src/lib.rs

src/lib.rs:
