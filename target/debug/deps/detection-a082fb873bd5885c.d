/root/repo/target/debug/deps/detection-a082fb873bd5885c.d: crates/bench/benches/detection.rs

/root/repo/target/debug/deps/detection-a082fb873bd5885c: crates/bench/benches/detection.rs

crates/bench/benches/detection.rs:
