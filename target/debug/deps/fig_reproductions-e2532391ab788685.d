/root/repo/target/debug/deps/fig_reproductions-e2532391ab788685.d: crates/bench/src/bin/fig_reproductions.rs

/root/repo/target/debug/deps/fig_reproductions-e2532391ab788685: crates/bench/src/bin/fig_reproductions.rs

crates/bench/src/bin/fig_reproductions.rs:
