/root/repo/target/debug/deps/differential_timestamps-ca081e2ae0653e22.d: tests/differential_timestamps.rs

/root/repo/target/debug/deps/differential_timestamps-ca081e2ae0653e22: tests/differential_timestamps.rs

tests/differential_timestamps.rs:
