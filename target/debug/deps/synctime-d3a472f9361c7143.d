/root/repo/target/debug/deps/synctime-d3a472f9361c7143.d: src/lib.rs

/root/repo/target/debug/deps/libsynctime-d3a472f9361c7143.rlib: src/lib.rs

/root/repo/target/debug/deps/libsynctime-d3a472f9361c7143.rmeta: src/lib.rs

src/lib.rs:
