/root/repo/target/debug/deps/synctime_obs-d70eef3d5eef3fc3.d: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

/root/repo/target/debug/deps/libsynctime_obs-d70eef3d5eef3fc3.rmeta: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

crates/obs/src/lib.rs:
crates/obs/src/deadlock.rs:
crates/obs/src/recorder.rs:
crates/obs/src/stats.rs:
