/root/repo/target/debug/deps/fig_reproductions-e14b8870a48f871f.d: crates/bench/src/bin/fig_reproductions.rs

/root/repo/target/debug/deps/fig_reproductions-e14b8870a48f871f: crates/bench/src/bin/fig_reproductions.rs

crates/bench/src/bin/fig_reproductions.rs:
