/root/repo/target/debug/deps/rand-fdc7ef35d6ce4312.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-fdc7ef35d6ce4312.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
