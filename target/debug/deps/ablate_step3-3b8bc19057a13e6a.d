/root/repo/target/debug/deps/ablate_step3-3b8bc19057a13e6a.d: crates/bench/src/bin/ablate_step3.rs

/root/repo/target/debug/deps/ablate_step3-3b8bc19057a13e6a: crates/bench/src/bin/ablate_step3.rs

crates/bench/src/bin/ablate_step3.rs:
