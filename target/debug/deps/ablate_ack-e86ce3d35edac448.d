/root/repo/target/debug/deps/ablate_ack-e86ce3d35edac448.d: crates/bench/src/bin/ablate_ack.rs

/root/repo/target/debug/deps/ablate_ack-e86ce3d35edac448: crates/bench/src/bin/ablate_ack.rs

crates/bench/src/bin/ablate_ack.rs:
