/root/repo/target/debug/deps/table_plausible-e84b0ef5dbf45903.d: crates/bench/src/bin/table_plausible.rs

/root/repo/target/debug/deps/table_plausible-e84b0ef5dbf45903: crates/bench/src/bin/table_plausible.rs

crates/bench/src/bin/table_plausible.rs:
