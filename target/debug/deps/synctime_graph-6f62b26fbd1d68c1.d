/root/repo/target/debug/deps/synctime_graph-6f62b26fbd1d68c1.d: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/debug/deps/libsynctime_graph-6f62b26fbd1d68c1.rlib: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

/root/repo/target/debug/deps/libsynctime_graph-6f62b26fbd1d68c1.rmeta: crates/graph/src/lib.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/cover.rs crates/graph/src/decompose.rs crates/graph/src/incremental.rs crates/graph/src/topology.rs

crates/graph/src/lib.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/cover.rs:
crates/graph/src/decompose.rs:
crates/graph/src/incremental.rs:
crates/graph/src/topology.rs:
