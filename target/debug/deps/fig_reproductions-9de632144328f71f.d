/root/repo/target/debug/deps/fig_reproductions-9de632144328f71f.d: crates/bench/src/bin/fig_reproductions.rs

/root/repo/target/debug/deps/fig_reproductions-9de632144328f71f: crates/bench/src/bin/fig_reproductions.rs

crates/bench/src/bin/fig_reproductions.rs:
