/root/repo/target/debug/deps/table_plausible-539d48ed48748ba7.d: crates/bench/src/bin/table_plausible.rs

/root/repo/target/debug/deps/table_plausible-539d48ed48748ba7: crates/bench/src/bin/table_plausible.rs

crates/bench/src/bin/table_plausible.rs:
