/root/repo/target/debug/deps/synctime_asynchrony-233b28bf58bd9282.d: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/debug/deps/libsynctime_asynchrony-233b28bf58bd9282.rmeta: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

crates/asynchrony/src/lib.rs:
crates/asynchrony/src/computation.rs:
crates/asynchrony/src/fm.rs:
