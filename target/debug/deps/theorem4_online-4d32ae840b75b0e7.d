/root/repo/target/debug/deps/theorem4_online-4d32ae840b75b0e7.d: tests/theorem4_online.rs

/root/repo/target/debug/deps/theorem4_online-4d32ae840b75b0e7: tests/theorem4_online.rs

tests/theorem4_online.rs:
