/root/repo/target/debug/deps/dynamic_topology-8005f5921cea2dbd.d: tests/dynamic_topology.rs

/root/repo/target/debug/deps/dynamic_topology-8005f5921cea2dbd: tests/dynamic_topology.rs

tests/dynamic_topology.rs:
