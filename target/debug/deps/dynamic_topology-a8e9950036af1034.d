/root/repo/target/debug/deps/dynamic_topology-a8e9950036af1034.d: tests/dynamic_topology.rs

/root/repo/target/debug/deps/dynamic_topology-a8e9950036af1034: tests/dynamic_topology.rs

tests/dynamic_topology.rs:
