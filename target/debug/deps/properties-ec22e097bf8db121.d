/root/repo/target/debug/deps/properties-ec22e097bf8db121.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-ec22e097bf8db121: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
