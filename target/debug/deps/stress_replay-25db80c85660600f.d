/root/repo/target/debug/deps/stress_replay-25db80c85660600f.d: tests/stress_replay.rs

/root/repo/target/debug/deps/stress_replay-25db80c85660600f: tests/stress_replay.rs

tests/stress_replay.rs:
