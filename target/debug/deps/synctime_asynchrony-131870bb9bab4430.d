/root/repo/target/debug/deps/synctime_asynchrony-131870bb9bab4430.d: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/debug/deps/libsynctime_asynchrony-131870bb9bab4430.rlib: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/debug/deps/libsynctime_asynchrony-131870bb9bab4430.rmeta: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

crates/asynchrony/src/lib.rs:
crates/asynchrony/src/computation.rs:
crates/asynchrony/src/fm.rs:
