/root/repo/target/debug/deps/table_clock_size-866660f959fdb3c8.d: crates/bench/src/bin/table_clock_size.rs

/root/repo/target/debug/deps/table_clock_size-866660f959fdb3c8: crates/bench/src/bin/table_clock_size.rs

crates/bench/src/bin/table_clock_size.rs:
