/root/repo/target/debug/deps/synctime_detect-411b4ad332821ac2.d: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/debug/deps/libsynctime_detect-411b4ad332821ac2.rlib: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/debug/deps/libsynctime_detect-411b4ad332821ac2.rmeta: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

crates/detect/src/lib.rs:
crates/detect/src/monitor.rs:
crates/detect/src/orphans.rs:
crates/detect/src/wcp.rs:
