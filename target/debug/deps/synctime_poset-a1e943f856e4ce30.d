/root/repo/target/debug/deps/synctime_poset-a1e943f856e4ce30.d: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

/root/repo/target/debug/deps/libsynctime_poset-a1e943f856e4ce30.rmeta: crates/poset/src/lib.rs crates/poset/src/bitset.rs crates/poset/src/error.rs crates/poset/src/poset.rs crates/poset/src/chains.rs crates/poset/src/dimension.rs crates/poset/src/matching.rs crates/poset/src/realizer.rs

crates/poset/src/lib.rs:
crates/poset/src/bitset.rs:
crates/poset/src/error.rs:
crates/poset/src/poset.rs:
crates/poset/src/chains.rs:
crates/poset/src/dimension.rs:
crates/poset/src/matching.rs:
crates/poset/src/realizer.rs:
