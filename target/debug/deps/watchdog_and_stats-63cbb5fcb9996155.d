/root/repo/target/debug/deps/watchdog_and_stats-63cbb5fcb9996155.d: tests/watchdog_and_stats.rs

/root/repo/target/debug/deps/watchdog_and_stats-63cbb5fcb9996155: tests/watchdog_and_stats.rs

tests/watchdog_and_stats.rs:
