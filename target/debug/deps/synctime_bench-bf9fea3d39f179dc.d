/root/repo/target/debug/deps/synctime_bench-bf9fea3d39f179dc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/synctime_bench-bf9fea3d39f179dc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
