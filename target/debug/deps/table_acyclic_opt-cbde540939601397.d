/root/repo/target/debug/deps/table_acyclic_opt-cbde540939601397.d: crates/bench/src/bin/table_acyclic_opt.rs

/root/repo/target/debug/deps/table_acyclic_opt-cbde540939601397: crates/bench/src/bin/table_acyclic_opt.rs

crates/bench/src/bin/table_acyclic_opt.rs:
