/root/repo/target/debug/deps/synctime_sim-d88db9bc13a35ec8.d: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libsynctime_sim-d88db9bc13a35ec8.rmeta: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/programs.rs:
crates/sim/src/scenarios.rs:
crates/sim/src/sim.rs:
crates/sim/src/workload.rs:
