/root/repo/target/debug/deps/synctime-34d0770b7c101dc8.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/synctime-34d0770b7c101dc8: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
