/root/repo/target/debug/deps/synctime_asynchrony-726a76d1abdc5bd5.d: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/debug/deps/libsynctime_asynchrony-726a76d1abdc5bd5.rlib: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

/root/repo/target/debug/deps/libsynctime_asynchrony-726a76d1abdc5bd5.rmeta: crates/asynchrony/src/lib.rs crates/asynchrony/src/computation.rs crates/asynchrony/src/fm.rs

crates/asynchrony/src/lib.rs:
crates/asynchrony/src/computation.rs:
crates/asynchrony/src/fm.rs:
