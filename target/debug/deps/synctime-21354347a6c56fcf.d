/root/repo/target/debug/deps/synctime-21354347a6c56fcf.d: src/lib.rs

/root/repo/target/debug/deps/libsynctime-21354347a6c56fcf.rlib: src/lib.rs

/root/repo/target/debug/deps/libsynctime-21354347a6c56fcf.rmeta: src/lib.rs

src/lib.rs:
