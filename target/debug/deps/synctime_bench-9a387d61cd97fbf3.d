/root/repo/target/debug/deps/synctime_bench-9a387d61cd97fbf3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-9a387d61cd97fbf3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-9a387d61cd97fbf3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
