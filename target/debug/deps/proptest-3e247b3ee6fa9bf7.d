/root/repo/target/debug/deps/proptest-3e247b3ee6fa9bf7.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3e247b3ee6fa9bf7.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3e247b3ee6fa9bf7.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
