/root/repo/target/debug/deps/synctime_sim-07fadf1cab17578a.d: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libsynctime_sim-07fadf1cab17578a.rlib: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libsynctime_sim-07fadf1cab17578a.rmeta: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/programs.rs:
crates/sim/src/scenarios.rs:
crates/sim/src/sim.rs:
crates/sim/src/workload.rs:
