/root/repo/target/debug/deps/synctime_bench-4b74334840ac89c8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-4b74334840ac89c8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsynctime_bench-4b74334840ac89c8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
