/root/repo/target/debug/deps/synctime_runtime-2a64c6ac9b9efcde.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/synctime_runtime-2a64c6ac9b9efcde: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/matcher.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/matcher.rs:
crates/runtime/src/runtime.rs:
