/root/repo/target/debug/deps/theorem9_events-4625bb270eae9d2b.d: tests/theorem9_events.rs

/root/repo/target/debug/deps/theorem9_events-4625bb270eae9d2b: tests/theorem9_events.rs

tests/theorem9_events.rs:
