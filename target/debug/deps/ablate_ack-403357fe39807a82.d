/root/repo/target/debug/deps/ablate_ack-403357fe39807a82.d: crates/bench/src/bin/ablate_ack.rs

/root/repo/target/debug/deps/ablate_ack-403357fe39807a82: crates/bench/src/bin/ablate_ack.rs

crates/bench/src/bin/ablate_ack.rs:
