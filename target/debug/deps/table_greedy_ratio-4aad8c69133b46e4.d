/root/repo/target/debug/deps/table_greedy_ratio-4aad8c69133b46e4.d: crates/bench/src/bin/table_greedy_ratio.rs

/root/repo/target/debug/deps/table_greedy_ratio-4aad8c69133b46e4: crates/bench/src/bin/table_greedy_ratio.rs

crates/bench/src/bin/table_greedy_ratio.rs:
