/root/repo/target/debug/deps/decompose_scaling-c4f7dccc9158ed60.d: crates/bench/benches/decompose_scaling.rs

/root/repo/target/debug/deps/decompose_scaling-c4f7dccc9158ed60: crates/bench/benches/decompose_scaling.rs

crates/bench/benches/decompose_scaling.rs:
