/root/repo/target/debug/deps/table_runtime_obs-d38594bb7c9ae252.d: crates/bench/src/bin/table_runtime_obs.rs

/root/repo/target/debug/deps/table_runtime_obs-d38594bb7c9ae252: crates/bench/src/bin/table_runtime_obs.rs

crates/bench/src/bin/table_runtime_obs.rs:
