/root/repo/target/debug/deps/lemma1_total_order-ca3e58d894f98a97.d: tests/lemma1_total_order.rs

/root/repo/target/debug/deps/lemma1_total_order-ca3e58d894f98a97: tests/lemma1_total_order.rs

tests/lemma1_total_order.rs:
