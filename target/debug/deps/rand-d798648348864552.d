/root/repo/target/debug/deps/rand-d798648348864552.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d798648348864552.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d798648348864552.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
