/root/repo/target/debug/deps/table_plausible-f5e95ead24b94b46.d: crates/bench/src/bin/table_plausible.rs

/root/repo/target/debug/deps/table_plausible-f5e95ead24b94b46: crates/bench/src/bin/table_plausible.rs

crates/bench/src/bin/table_plausible.rs:
