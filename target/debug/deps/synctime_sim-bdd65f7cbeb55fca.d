/root/repo/target/debug/deps/synctime_sim-bdd65f7cbeb55fca.d: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/synctime_sim-bdd65f7cbeb55fca: crates/sim/src/lib.rs crates/sim/src/programs.rs crates/sim/src/scenarios.rs crates/sim/src/sim.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/programs.rs:
crates/sim/src/scenarios.rs:
crates/sim/src/sim.rs:
crates/sim/src/workload.rs:
