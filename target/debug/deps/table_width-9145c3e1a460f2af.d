/root/repo/target/debug/deps/table_width-9145c3e1a460f2af.d: crates/bench/src/bin/table_width.rs

/root/repo/target/debug/deps/table_width-9145c3e1a460f2af: crates/bench/src/bin/table_width.rs

crates/bench/src/bin/table_width.rs:
