/root/repo/target/debug/deps/online_runtime-c7da05e5026f796c.d: crates/bench/benches/online_runtime.rs

/root/repo/target/debug/deps/online_runtime-c7da05e5026f796c: crates/bench/benches/online_runtime.rs

crates/bench/benches/online_runtime.rs:
