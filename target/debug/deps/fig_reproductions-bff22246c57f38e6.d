/root/repo/target/debug/deps/fig_reproductions-bff22246c57f38e6.d: crates/bench/src/bin/fig_reproductions.rs

/root/repo/target/debug/deps/fig_reproductions-bff22246c57f38e6: crates/bench/src/bin/fig_reproductions.rs

crates/bench/src/bin/fig_reproductions.rs:
