/root/repo/target/debug/deps/table_clock_size-652f861dc278f8ca.d: crates/bench/src/bin/table_clock_size.rs

/root/repo/target/debug/deps/table_clock_size-652f861dc278f8ca: crates/bench/src/bin/table_clock_size.rs

crates/bench/src/bin/table_clock_size.rs:
