/root/repo/target/debug/deps/table_acyclic_opt-7ecb91735626b94a.d: crates/bench/src/bin/table_acyclic_opt.rs

/root/repo/target/debug/deps/table_acyclic_opt-7ecb91735626b94a: crates/bench/src/bin/table_acyclic_opt.rs

crates/bench/src/bin/table_acyclic_opt.rs:
