/root/repo/target/debug/deps/table_width-9ff1d2da1017a305.d: crates/bench/src/bin/table_width.rs

/root/repo/target/debug/deps/table_width-9ff1d2da1017a305: crates/bench/src/bin/table_width.rs

crates/bench/src/bin/table_width.rs:
