/root/repo/target/debug/deps/table_correctness-cb4525e1868ce470.d: crates/bench/src/bin/table_correctness.rs

/root/repo/target/debug/deps/table_correctness-cb4525e1868ce470: crates/bench/src/bin/table_correctness.rs

crates/bench/src/bin/table_correctness.rs:
