/root/repo/target/debug/deps/synctime_runtime-70b683251f43664e.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-70b683251f43664e.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

/root/repo/target/debug/deps/libsynctime_runtime-70b683251f43664e.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/runtime.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/runtime.rs:
