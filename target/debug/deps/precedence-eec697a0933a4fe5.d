/root/repo/target/debug/deps/precedence-eec697a0933a4fe5.d: crates/bench/benches/precedence.rs

/root/repo/target/debug/deps/precedence-eec697a0933a4fe5: crates/bench/benches/precedence.rs

crates/bench/benches/precedence.rs:
