/root/repo/target/debug/deps/table_greedy_ratio-c4a9d6377ba52a9f.d: crates/bench/src/bin/table_greedy_ratio.rs

/root/repo/target/debug/deps/table_greedy_ratio-c4a9d6377ba52a9f: crates/bench/src/bin/table_greedy_ratio.rs

crates/bench/src/bin/table_greedy_ratio.rs:
