/root/repo/target/debug/deps/synctime_trace-68b788fdf3d94829.d: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

/root/repo/target/debug/deps/synctime_trace-68b788fdf3d94829: crates/trace/src/lib.rs crates/trace/src/computation.rs crates/trace/src/error.rs crates/trace/src/oracle.rs crates/trace/src/diagram.rs crates/trace/src/examples.rs crates/trace/src/json.rs

crates/trace/src/lib.rs:
crates/trace/src/computation.rs:
crates/trace/src/error.rs:
crates/trace/src/oracle.rs:
crates/trace/src/diagram.rs:
crates/trace/src/examples.rs:
crates/trace/src/json.rs:
