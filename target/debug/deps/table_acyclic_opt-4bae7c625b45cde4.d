/root/repo/target/debug/deps/table_acyclic_opt-4bae7c625b45cde4.d: crates/bench/src/bin/table_acyclic_opt.rs

/root/repo/target/debug/deps/table_acyclic_opt-4bae7c625b45cde4: crates/bench/src/bin/table_acyclic_opt.rs

crates/bench/src/bin/table_acyclic_opt.rs:
