/root/repo/target/debug/deps/table_correctness-f2074365d3c8ebf2.d: crates/bench/src/bin/table_correctness.rs

/root/repo/target/debug/deps/table_correctness-f2074365d3c8ebf2: crates/bench/src/bin/table_correctness.rs

crates/bench/src/bin/table_correctness.rs:
