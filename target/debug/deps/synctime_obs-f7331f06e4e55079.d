/root/repo/target/debug/deps/synctime_obs-f7331f06e4e55079.d: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

/root/repo/target/debug/deps/libsynctime_obs-f7331f06e4e55079.rlib: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

/root/repo/target/debug/deps/libsynctime_obs-f7331f06e4e55079.rmeta: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

crates/obs/src/lib.rs:
crates/obs/src/deadlock.rs:
crates/obs/src/recorder.rs:
crates/obs/src/stats.rs:
