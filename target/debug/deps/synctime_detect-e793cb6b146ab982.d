/root/repo/target/debug/deps/synctime_detect-e793cb6b146ab982.d: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

/root/repo/target/debug/deps/libsynctime_detect-e793cb6b146ab982.rmeta: crates/detect/src/lib.rs crates/detect/src/monitor.rs crates/detect/src/orphans.rs crates/detect/src/wcp.rs

crates/detect/src/lib.rs:
crates/detect/src/monitor.rs:
crates/detect/src/orphans.rs:
crates/detect/src/wcp.rs:
