/root/repo/target/debug/deps/stress_replay-e524825aaaf1338e.d: tests/stress_replay.rs

/root/repo/target/debug/deps/stress_replay-e524825aaaf1338e: tests/stress_replay.rs

tests/stress_replay.rs:
