/root/repo/target/debug/deps/decomposition_props-9e4dfa71cb97a2c6.d: tests/decomposition_props.rs

/root/repo/target/debug/deps/decomposition_props-9e4dfa71cb97a2c6: tests/decomposition_props.rs

tests/decomposition_props.rs:
