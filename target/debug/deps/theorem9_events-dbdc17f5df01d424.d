/root/repo/target/debug/deps/theorem9_events-dbdc17f5df01d424.d: tests/theorem9_events.rs

/root/repo/target/debug/deps/theorem9_events-dbdc17f5df01d424: tests/theorem9_events.rs

tests/theorem9_events.rs:
