/root/repo/target/debug/deps/synctime-0a4689755be47ff7.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/synctime-0a4689755be47ff7: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
