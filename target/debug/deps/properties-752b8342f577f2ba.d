/root/repo/target/debug/deps/properties-752b8342f577f2ba.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-752b8342f577f2ba: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
