/root/repo/target/debug/deps/theorem4_online-fa86f44f214cf045.d: tests/theorem4_online.rs

/root/repo/target/debug/deps/theorem4_online-fa86f44f214cf045: tests/theorem4_online.rs

tests/theorem4_online.rs:
