/root/repo/target/debug/deps/table_clock_size-effcecfd653a01b3.d: crates/bench/src/bin/table_clock_size.rs

/root/repo/target/debug/deps/table_clock_size-effcecfd653a01b3: crates/bench/src/bin/table_clock_size.rs

crates/bench/src/bin/table_clock_size.rs:
