/root/repo/target/debug/deps/synctime_obs-e83bab5517951951.d: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

/root/repo/target/debug/deps/synctime_obs-e83bab5517951951: crates/obs/src/lib.rs crates/obs/src/deadlock.rs crates/obs/src/recorder.rs crates/obs/src/stats.rs

crates/obs/src/lib.rs:
crates/obs/src/deadlock.rs:
crates/obs/src/recorder.rs:
crates/obs/src/stats.rs:
