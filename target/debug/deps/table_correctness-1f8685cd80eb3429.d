/root/repo/target/debug/deps/table_correctness-1f8685cd80eb3429.d: crates/bench/src/bin/table_correctness.rs

/root/repo/target/debug/deps/table_correctness-1f8685cd80eb3429: crates/bench/src/bin/table_correctness.rs

crates/bench/src/bin/table_correctness.rs:
