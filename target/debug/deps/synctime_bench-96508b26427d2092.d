/root/repo/target/debug/deps/synctime_bench-96508b26427d2092.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/synctime_bench-96508b26427d2092: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
