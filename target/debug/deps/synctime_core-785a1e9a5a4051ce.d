/root/repo/target/debug/deps/synctime_core-785a1e9a5a4051ce.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/vector.rs crates/core/src/events.rs crates/core/src/fm.rs crates/core/src/fz.rs crates/core/src/lamport.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/plausible.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libsynctime_core-785a1e9a5a4051ce.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/vector.rs crates/core/src/events.rs crates/core/src/fm.rs crates/core/src/fz.rs crates/core/src/lamport.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/plausible.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libsynctime_core-785a1e9a5a4051ce.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/vector.rs crates/core/src/events.rs crates/core/src/fm.rs crates/core/src/fz.rs crates/core/src/lamport.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/plausible.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/vector.rs:
crates/core/src/events.rs:
crates/core/src/fm.rs:
crates/core/src/fz.rs:
crates/core/src/lamport.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/plausible.rs:
crates/core/src/wire.rs:
