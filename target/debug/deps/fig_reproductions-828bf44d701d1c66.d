/root/repo/target/debug/deps/fig_reproductions-828bf44d701d1c66.d: crates/bench/src/bin/fig_reproductions.rs

/root/repo/target/debug/deps/fig_reproductions-828bf44d701d1c66: crates/bench/src/bin/fig_reproductions.rs

crates/bench/src/bin/fig_reproductions.rs:
