/root/repo/target/debug/examples/quickstart-82be9cdc21c2c322.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-82be9cdc21c2c322: examples/quickstart.rs

examples/quickstart.rs:
