/root/repo/target/debug/examples/predicate_detection-ce32a65266bb8d73.d: examples/predicate_detection.rs

/root/repo/target/debug/examples/predicate_detection-ce32a65266bb8d73: examples/predicate_detection.rs

examples/predicate_detection.rs:
