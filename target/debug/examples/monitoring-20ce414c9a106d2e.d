/root/repo/target/debug/examples/monitoring-20ce414c9a106d2e.d: examples/monitoring.rs

/root/repo/target/debug/examples/monitoring-20ce414c9a106d2e: examples/monitoring.rs

examples/monitoring.rs:
