/root/repo/target/debug/examples/predicate_detection-eff558e46bc58c4b.d: examples/predicate_detection.rs

/root/repo/target/debug/examples/predicate_detection-eff558e46bc58c4b: examples/predicate_detection.rs

examples/predicate_detection.rs:
