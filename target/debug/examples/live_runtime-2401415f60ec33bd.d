/root/repo/target/debug/examples/live_runtime-2401415f60ec33bd.d: examples/live_runtime.rs

/root/repo/target/debug/examples/live_runtime-2401415f60ec33bd: examples/live_runtime.rs

examples/live_runtime.rs:
