/root/repo/target/debug/examples/monitoring-e91de5eb56c36a7f.d: examples/monitoring.rs

/root/repo/target/debug/examples/monitoring-e91de5eb56c36a7f: examples/monitoring.rs

examples/monitoring.rs:
