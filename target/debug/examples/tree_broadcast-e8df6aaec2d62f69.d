/root/repo/target/debug/examples/tree_broadcast-e8df6aaec2d62f69.d: examples/tree_broadcast.rs

/root/repo/target/debug/examples/tree_broadcast-e8df6aaec2d62f69: examples/tree_broadcast.rs

examples/tree_broadcast.rs:
