/root/repo/target/debug/examples/quickstart-6afc4760999d3d7e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6afc4760999d3d7e: examples/quickstart.rs

examples/quickstart.rs:
