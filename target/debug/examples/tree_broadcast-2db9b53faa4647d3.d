/root/repo/target/debug/examples/tree_broadcast-2db9b53faa4647d3.d: examples/tree_broadcast.rs

/root/repo/target/debug/examples/tree_broadcast-2db9b53faa4647d3: examples/tree_broadcast.rs

examples/tree_broadcast.rs:
