/root/repo/target/debug/examples/async_vs_sync-12e6c47fcba04f5f.d: examples/async_vs_sync.rs

/root/repo/target/debug/examples/async_vs_sync-12e6c47fcba04f5f: examples/async_vs_sync.rs

examples/async_vs_sync.rs:
