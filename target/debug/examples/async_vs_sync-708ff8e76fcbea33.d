/root/repo/target/debug/examples/async_vs_sync-708ff8e76fcbea33.d: examples/async_vs_sync.rs

/root/repo/target/debug/examples/async_vs_sync-708ff8e76fcbea33: examples/async_vs_sync.rs

examples/async_vs_sync.rs:
