/root/repo/target/debug/examples/debugger_trace-ed7f319aa251f0d7.d: examples/debugger_trace.rs

/root/repo/target/debug/examples/debugger_trace-ed7f319aa251f0d7: examples/debugger_trace.rs

examples/debugger_trace.rs:
