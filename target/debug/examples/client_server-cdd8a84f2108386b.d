/root/repo/target/debug/examples/client_server-cdd8a84f2108386b.d: examples/client_server.rs

/root/repo/target/debug/examples/client_server-cdd8a84f2108386b: examples/client_server.rs

examples/client_server.rs:
