/root/repo/target/debug/examples/live_runtime-1fe557ed8e47ccb3.d: examples/live_runtime.rs

/root/repo/target/debug/examples/live_runtime-1fe557ed8e47ccb3: examples/live_runtime.rs

examples/live_runtime.rs:
