/root/repo/target/debug/examples/client_server-4466e4f4ede710ca.d: examples/client_server.rs

/root/repo/target/debug/examples/client_server-4466e4f4ede710ca: examples/client_server.rs

examples/client_server.rs:
