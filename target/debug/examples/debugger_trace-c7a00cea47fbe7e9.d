/root/repo/target/debug/examples/debugger_trace-c7a00cea47fbe7e9.d: examples/debugger_trace.rs

/root/repo/target/debug/examples/debugger_trace-c7a00cea47fbe7e9: examples/debugger_trace.rs

examples/debugger_trace.rs:
