window.ALL_CRATES = ["synctime"];
//{"start":21,"fragment_lengths":[10]}