createSrcSidebar('[["synctime",["",[],["lib.rs"]]]]');
//{"start":19,"fragment_lengths":[31]}