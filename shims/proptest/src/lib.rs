//! A minimal, dependency-free, API-compatible subset of [`proptest`],
//! vendored locally so the workspace builds in offline environments.
//!
//! Supports the surface this workspace uses: the [`proptest!`],
//! [`prop_compose!`], [`prop_assert!`], [`prop_assert_eq!`], and
//! [`prop_assume!`] macros, numeric-range and [`collection::vec`]
//! strategies, [`any`], and [`ProptestConfig::with_cases`]. Unlike real
//! proptest there is **no shrinking**: a failing case reports its inputs
//! and panics. Case generation is deterministic per test (fixed seed,
//! overridable with `PROPTEST_SEED`), so failures reproduce run-to-run.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// `prop_assert!`-style failure with its message.
    Fail(String),
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A constant strategy, always yielding a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy computed by a closure; what [`prop_compose!`] expands to.
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
    /// Wraps a sampling function.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// How many elements a [`vec`] strategy draws.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many.
        Fixed(usize),
        /// Uniform in `lo..hi` (exclusive).
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), *r.end() + 1)
        }
    }

    /// The strategy of vectors whose elements come from `elem`.
    pub struct VecStrategy<S: Strategy> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Range(lo, hi) => rng.gen_range(lo..hi),
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors of `size.into()` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Drives one `proptest!`-generated test: draws cases until `config.cases`
/// pass, retrying rejected cases (bounded), panicking on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            // Stable per-test seed so failures reproduce.
            name.bytes().fold(0xC0FF_EEu64, |h, b| {
                h.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64)
            })
        });
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64).saturating_mul(1024).max(65_536);
    while passed < config.cases {
        match one_case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {passed} passing case(s): {msg}\n(seed {seed}; rerun with PROPTEST_SEED={seed})")
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::result::Result::Err($crate::TestCaseError::Fail(
                                format!("{msg}\n  inputs: {}", __inputs),
                            ))
                        }
                        other => other,
                    }
                });
            }
        )*
    };
}

/// Defines a reusable parameterized strategy as a function returning
/// `impl Strategy`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)($($arg:ident in $strat:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy::new(move |__rng: &mut $crate::TestRng| -> $out {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Asserts inside a proptest body, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __left, __right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __left, __right
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __left
            )));
        }
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The everyday imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop` (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_in_bounds(n in 3usize..10, p in 0.1f64..0.9, s in 0u64..1000) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.1..0.9).contains(&p));
            prop_assert!(s < 1000);
        }

        fn vec_strategy_sizes(bytes in collection::vec(any::<u8>(), 0..40)) {
            prop_assert!(bytes.len() < 40);
        }

        fn assume_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    prop_compose! {
        fn arb_pair(max: u64)(a in 0u64..1000, b in collection::vec(0u64..10, 3)) -> (u64, Vec<u64>) {
            (a.min(max), b)
        }
    }

    proptest! {
        fn composed(pair in arb_pair(5)) {
            prop_assert!(pair.0 <= 5);
            prop_assert_eq!(pair.1.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failure_reports_inputs() {
        run_proptest(
            &ProptestConfig::with_cases(10),
            "failure_reports_inputs",
            |_rng| Err(TestCaseError::Fail("boom".to_string())),
        );
    }

    use super::{run_proptest, ProptestConfig as PC, TestCaseError as TCE};

    #[test]
    #[should_panic(expected = "too many")]
    fn rejection_storm_bounded() {
        run_proptest(&PC::with_cases(1), "rejection_storm", |_rng| {
            Err(TCE::Reject)
        });
    }
}
