//! A minimal, dependency-free, API-compatible subset of the [`rand`] crate,
//! vendored locally so the workspace builds in offline environments.
//!
//! Only the surface this workspace actually uses is provided: [`Rng`]
//! (`gen_range`, `gen_bool`, `gen`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] / [`rngs::SmallRng`], and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). The generator is xoshiro256++ seeded via
//! SplitMix64 — high quality and deterministic, but **not** the same
//! stream as upstream `rand`'s ChaCha-based `StdRng`; seeded experiment
//! outputs differ from runs made with the real crate, while every
//! distributional property (and therefore every test in this workspace)
//! is preserved.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support; only [`SeedableRng::seed_from_u64`] is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types with a uniform distribution over bounded ranges.
///
/// Mirrors upstream's single generic `SampleRange` impl so a call like
/// `rng.gen_range(0..n)` leaves the literal's integer type free for the
/// surrounding code (e.g. slice indexing) to pin down.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` (Lemire-style widening multiply with
/// rejection to remove modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        f64::sample_standard(self) < p
    }

    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ by Blackman & Vigna — the shim's stand-in for the
    /// upstream ChaCha12-based `StdRng` (deterministic, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator; in this shim it is the same xoshiro256++.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = crate::uniform_u64_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = r.gen_range(0..=4u32);
            assert!(y <= 4);
            let f = r.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: Vec<usize> = Vec::new();
        assert!(empty.choose(&mut r).is_none());
    }
}
