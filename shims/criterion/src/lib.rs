//! A minimal, dependency-free, API-compatible subset of [`criterion`],
//! vendored locally so the workspace builds in offline environments.
//!
//! Benchmarks compile and run with the same source: each
//! [`Bencher::iter`] does a short warm-up, then times batches and reports
//! the median per-iteration wall-clock time (plus throughput when set).
//! There is no statistical analysis, HTML report, or baseline comparison —
//! numbers are indicative, not publication-grade.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many items each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as in real criterion.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Times one routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median batch time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow until a batch takes
        // at least ~2ms or we hit a cap.
        let mut batch = 1u64;
        let batch_time = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || batch >= 1 << 20 {
                break dt;
            }
            batch *= 4;
        };
        let _ = batch_time;
        let samples = 9;
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t0.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        self.last_ns = times[samples / 2] * 1e9;
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id, b.last_ns);
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.into(), b.last_ns);
    }

    /// Ends the group (explicit for API compatibility).
    pub fn finish(self) {}

    fn report(&mut self, id: &BenchmarkId, ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{}/{}: {:.1} ns/iter{rate}", self.name, id, ns);
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
