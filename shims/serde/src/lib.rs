//! A minimal, dependency-free, API-compatible subset of [`serde`],
//! vendored locally so the workspace builds in offline environments.
//!
//! Unlike real serde's zero-copy visitor architecture, this shim routes
//! everything through an owned [`Value`] tree: [`Serialize`] renders a
//! value *to* a [`Value`], [`Deserialize`] rebuilds one *from* it. The
//! companion `serde_json` shim maps [`Value`] to and from JSON text, and
//! the `serde_derive` shim generates impls for the
//! `#[derive(Serialize, Deserialize)]` attributes used across this
//! workspace (named/tuple structs; unit, newtype, tuple and struct enum
//! variants with external tagging and `#[serde(rename = "...")]`).
//!
//! [`serde`]: https://crates.io/crates/serde

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value's JSON type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field<'a>(&'a self, name: &str) -> Option<&'a Value> {
        self.as_object()?
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v))
    }
}

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// `expected X, found <type of v>`.
    pub fn expected(what: &str, v: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", v.type_name()))
    }

    /// A struct field was absent from the object.
    pub fn missing_field(name: &str) -> Self {
        DeError::new(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion *into* the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion *from* the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// A [`DeError`] describing the first shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived struct impls when a field is absent; `Option`
    /// overrides this to yield `None`, everything else errors.
    ///
    /// # Errors
    ///
    /// [`DeError::missing_field`] by default.
    fn missing_field(name: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(name))
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| DeError::expected("integer", v))?
                    }
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(DeError::new(format!(
                        "expected array of length {arity}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys may be arbitrary types, so maps serialize as [k, v] pair
        // arrays (this shim defines its own interchange format).
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<(usize, usize)> = vec![(1, 2), (3, 4)];
        assert_eq!(Vec::<(usize, usize)>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<String, u32> = [("a".to_string(), 1)].into();
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
        let arr = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[u64; 2]>::from_value(&arr.to_value()).is_err());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::missing_field("f").unwrap(), None);
        assert!(u32::missing_field("f").is_err());
    }
}
