//! `#[derive(Serialize, Deserialize)]` for the local `serde` shim, written
//! against `proc_macro` alone (no `syn`/`quote`, so it builds offline).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields, tuple structs (any arity; arity 1 is a
//!   transparent newtype), unit structs;
//! * enums with unit, newtype, tuple, and struct variants, externally
//!   tagged exactly like real serde (`"Unit"`, `{"Newtype": v}`,
//!   `{"Tuple": [..]}`, `{"Struct": {..}}`);
//! * `#[serde(rename = "...")]` on variants and named fields.
//!
//! Generic types are rejected with a compile error rather than silently
//! mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    /// Tuple fields, by count.
    Tuple(usize),
    /// Named fields as `(rust_name, serialized_name)` pairs.
    Named(Vec<(String, String)>),
}

struct Variant {
    ident: String,
    /// The externally-tagged name (`rename` or the ident verbatim).
    tag: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the local shim's trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (the local shim's trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if serialize {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Rust")
}

// ------------------------------------------------------------------ parse

/// Extracts `rename = "..."` from the tokens of a `#[serde(...)]` attribute
/// body, if present.
fn rename_from_attr(group: &proc_macro::Group) -> Option<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    // Shape: serde ( rename = "..." )
    if let [TokenTree::Ident(tag), TokenTree::Group(args)] = tokens.as_slice() {
        if tag.to_string() == "serde" {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            if let [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)] =
                inner.as_slice()
            {
                if key.to_string() == "rename" && eq.as_char() == '=' {
                    let s = lit.to_string();
                    return Some(s.trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Consumes a run of leading attributes, returning any `serde(rename)`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut rename = None;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if let Some(r) = rename_from_attr(g) {
                    rename = Some(r);
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, rename)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Counts commas at angle-bracket depth 0 in a field list (commas inside
/// nested `TokenTree::Group`s are invisible at this level by construction;
/// only `<...>` generic argument lists need explicit depth tracking).
fn split_top_level_commas(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut parts = 0usize;
    let mut part_has_tokens = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                parts += 1;
                part_has_tokens = false;
                continue;
            }
            _ => {}
        }
        part_has_tokens = true;
    }
    parts + usize::from(part_has_tokens)
}

/// Parses the `{ name: Type, ... }` body of a struct or struct variant into
/// `(rust_name, serialized_name)` pairs.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<(String, String)>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, rename) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, j);
        let TokenTree::Ident(field) = &tokens[i] else {
            return Err(format!("expected field name, found `{}`", tokens[i]));
        };
        let rust_name = field.to_string();
        let ser_name = rename.unwrap_or_else(|| rust_name.clone());
        fields.push((rust_name, ser_name));
        i += 1;
        // Skip `: Type` up to the next comma at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, found `{other}`")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_level_commas(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = tokens.get(i) else {
                return Err("expected enum body".to_string());
            };
            let vt: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < vt.len() {
                let (k, rename) = skip_attrs(&vt, j);
                j = k;
                let TokenTree::Ident(vid) = &vt[j] else {
                    return Err(format!("expected variant name, found `{}`", vt[j]));
                };
                let ident = vid.to_string();
                let tag = rename.unwrap_or_else(|| ident.clone());
                j += 1;
                let fields = match vt.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(split_top_level_commas(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Fields::Named(parse_named_fields(g)?)
                    }
                    _ => Fields::Unit,
                };
                variants.push(Variant { ident, tag, fields });
                // Skip to past the next comma (tolerates discriminants).
                while j < vt.len() {
                    if matches!(&vt[j], TokenTree::Punct(p) if p.as_char() == ',') {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive serde traits for `{other}`")),
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => named_to_object(fs, "self."),
            };
            impl_serialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let Variant { ident, tag, fields } = v;
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{ident} => ::serde::Value::Str({tag:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{ident}(f0) => ::serde::Value::Object(::std::vec![({tag:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{ident}({}) => ::serde::Value::Object(::std::vec![({tag:?}.to_string(), ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<&str> =
                            fs.iter().map(|(rust, _)| rust.as_str()).collect();
                        let obj = named_to_object(fs, "");
                        arms.push_str(&format!(
                            "{name}::{ident} {{ {} }} => ::serde::Value::Object(::std::vec![({tag:?}.to_string(), {obj})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

/// `Object` literal for named fields; `access` prefixes each field
/// (`self.` for structs, empty for match binders).
fn named_to_object(fields: &[(String, String)], access: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|(rust, ser)| {
            format!("({ser:?}.to_string(), ::serde::Serialize::to_value(&{access}{rust}))")
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                         if items.len() != {n} {{\n\
                             return Err(::serde::DeError::new(format!(\"expected array of length {n}, found {{}}\", items.len())));\n\
                         }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => format!(
                    "if v.as_object().is_none() {{\n\
                         return Err(::serde::DeError::expected(\"object\", v));\n\
                     }}\n\
                     Ok({name} {{ {} }})",
                    named_from_object(fs, "v")
                ),
            };
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let Variant { ident, tag, fields } = v;
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{tag:?} => return Ok({name}::{ident}),\n"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{tag:?} => return Ok({name}::{ident}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                                 let items = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", inner))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::DeError::new(format!(\"expected array of length {n}, found {{}}\", items.len())));\n\
                                 }}\n\
                                 return Ok({name}::{ident}({}));\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => tagged_arms.push_str(&format!(
                        "{tag:?} => {{\n\
                             if inner.as_object().is_none() {{\n\
                                 return Err(::serde::DeError::expected(\"object\", inner));\n\
                             }}\n\
                             return Ok({name}::{ident} {{ {} }});\n\
                         }}\n",
                        named_from_object(fs, "inner")
                    )),
                }
            }
            let body = format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{\n{unit_arms}\
                         other => return Err(::serde::DeError::new(format!(\"unknown variant `{{other}}`\"))),\n\
                     }}\n\
                 }}\n\
                 if let Some(fields) = v.as_object() {{\n\
                     if fields.len() == 1 {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n{tagged_arms}\
                             other => return Err(::serde::DeError::new(format!(\"unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"externally tagged enum\", v))"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// Field initializers reading from object value `src`.
fn named_from_object(fields: &[(String, String)], src: &str) -> String {
    fields
        .iter()
        .map(|(rust, ser)| {
            format!(
                "{rust}: match {src}.get_field({ser:?}) {{\n\
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     ::std::option::Option::None => ::serde::Deserialize::missing_field({ser:?})?,\n\
                 }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
