//! A minimal, dependency-free, API-compatible subset of [`serde_json`],
//! vendored locally so the workspace builds in offline environments.
//!
//! Provides [`from_str`], [`to_string`], [`to_string_pretty`] (2-space
//! indent, like upstream) and an [`Error`] type, all routed through the
//! local `serde` shim's [`Value`] data model.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A parse or shape error, with byte offset for syntax errors.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Deserializes an instance of `T` from a JSON string.
///
/// # Errors
///
/// An [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser::new(text).parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value reads back as float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                // JSON has no Inf/NaN; upstream errors, we emit null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than combined
                            // (no occurrences in this workspace's data).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, true, null, "x\ny"]}"#).unwrap();
        let items = v.get_field("a").unwrap().as_array().unwrap();
        assert_eq!(items[0], Value::UInt(1));
        assert_eq!(items[1], Value::Int(-2));
        assert_eq!(items[2], Value::Float(3.5));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Null);
        assert_eq!(items[5], Value::Str("x\ny".to_string()));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{nope").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v: Value = from_str(r#"{"k": [1, {"x": "y"}], "empty": []}"#).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"k":[1,{"x":"y"}],"empty":[]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert_eq!(to_string(&xs).unwrap(), "[1,2,3]");
        let err = from_str::<Vec<u64>>(r#"["a"]"#).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
