//! Live monitoring: a profiler-style observer fed from the threaded
//! runtime's piggybacked timestamps.
//!
//! The workers run a real rendezvous computation; each message's timestamp
//! is forwarded to a [`Monitor`] in a scrambled order (observation
//! channels are not causally ordered). The monitor reconstructs the order
//! relation from the `d`-dimensional stamps alone: frontier, causal
//! histories, and a parallelism metric.
//!
//! Run with: `cargo run --example monitoring`

use rand::seq::SliceRandom;
use rand::SeedableRng;
use synctime::detect::monitor::{Monitor, Observation};
use synctime::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-server, 3-client system on real threads.
    let topo = graph::topology::client_server(2, 3);
    let dec = graph::decompose::best_known(&topo);
    let runtime = Runtime::new(&topo, &dec);

    let client = |id: usize| -> Behavior {
        Box::new(move |ctx| {
            for round in 0..3u64 {
                let server = (id as u64 + round) as usize % 2;
                ctx.send(server, round)?;
                ctx.receive_from(server)?;
            }
            Ok(())
        })
    };
    let server = |queue: Vec<(usize, usize)>| -> Behavior {
        // (client, count) pairs served in order.
        Box::new(move |ctx| {
            for (client, count) in &queue {
                for _ in 0..*count {
                    let (x, _) = ctx.receive_from(*client)?;
                    ctx.send(*client, x + 1)?;
                }
            }
            Ok(())
        })
    };
    // Client c sends to servers (c+0)%2, (c+1)%2, (c+2)%2 in rounds 0..3.
    // Server s receives from each client in that client's round order; we
    // serve clients in a fixed order per server consistent with rounds:
    // derive the queues from the plan.
    let mut queues: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 2];
    for round in 0..3usize {
        for c in 0..3usize {
            let s = (c + round) % 2;
            queues[s].push((c + 2, 1));
        }
    }
    let run = runtime.run(vec![
        server(queues[0].clone()),
        server(queues[1].clone()),
        client(0),
        client(1),
        client(2),
    ])?;
    let (comp, stamps) = run.reconstruct()?;
    println!(
        "executed {} rendezvous; forwarding stamps ({}-dimensional) to the monitor\n",
        comp.message_count(),
        stamps.dim()
    );

    // Observation channel scrambles delivery order.
    let mut order: Vec<usize> = (0..comp.message_count()).collect();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(17));
    let mut monitor = Monitor::new(stamps.dim());
    for i in order {
        monitor.observe(Observation {
            message: MessageId(i),
            stamp: stamps.vector(MessageId(i)).clone(),
        })?;
    }

    println!("monitor state after full observation:");
    println!("  observed messages : {}", monitor.len());
    println!("  frontier          : {:?}", monitor.frontier());
    println!("  concurrent pairs  : {}", monitor.concurrent_pairs());
    let last = MessageId(comp.message_count() - 1);
    println!(
        "  |history({last})|  : {}",
        monitor.history_of(last).unwrap().len()
    );

    // Spot-check the monitor against the ground truth.
    let oracle = Oracle::new(&comp);
    for i in 0..comp.message_count() {
        for j in 0..comp.message_count() {
            assert_eq!(
                monitor.precedes(MessageId(i), MessageId(j)).unwrap(),
                oracle.synchronously_precedes(MessageId(i), MessageId(j))
            );
        }
    }
    println!("\nmonitor verdicts match the ground truth on all pairs ✓");
    Ok(())
}
