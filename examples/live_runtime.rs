//! The online protocol on real threads: rendezvous channels, piggybacked
//! vectors, acknowledgements — Figure 5 exactly as a runtime would ship it.
//!
//! Five threads implement a tiny work-distribution service over a
//! client–server topology; every send blocks until the receiver takes the
//! message and acknowledges it, and both sides deterministically agree on
//! each message's timestamp. Afterwards the execution's logs are
//! reconstructed into a `SyncComputation` and cross-checked against the
//! ground-truth oracle and the batch stamper.
//!
//! Run with: `cargo run --example live_runtime`

use synctime::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two servers (0, 1), three clients (2, 3, 4).
    let topo = graph::topology::client_server(2, 3);
    let dec = graph::decompose::best_known(&topo);
    assert_eq!(dec.len(), 2);
    let runtime = Runtime::new(&topo, &dec);

    const ROUNDS: u64 = 3;
    let server = |_id: usize| -> Behavior {
        Box::new(move |ctx| {
            // Serve ROUNDS requests from each of the three clients, in
            // whatever order their rendezvous arrive per client.
            for _ in 0..ROUNDS {
                for client in 2..=4 {
                    let (job, _t) = ctx.receive_from(client)?;
                    ctx.internal(); // do the work
                    ctx.send(client, job * 10)?;
                }
            }
            Ok(())
        })
    };
    let client = |id: usize| -> Behavior {
        Box::new(move |ctx| {
            for round in 0..ROUNDS {
                for srv in 0..=1 {
                    let job = (id as u64) * 100 + round;
                    let t_req = ctx.send(srv, job)?;
                    let (result, t_rep) = ctx.receive_from(srv)?;
                    assert_eq!(result, job * 10);
                    // The reply's stamp strictly dominates the request's.
                    assert!(t_req < t_rep);
                }
            }
            Ok(())
        })
    };

    let run = runtime.run(vec![server(0), server(1), client(2), client(3), client(4)])?;

    let (comp, live_stamps) = run.reconstruct()?;
    println!(
        "executed {} rendezvous across {} threads; vector dimension {}",
        comp.message_count(),
        comp.process_count(),
        live_stamps.dim()
    );

    // The piggybacked stamps encode the true order...
    let oracle = Oracle::new(&comp);
    assert!(live_stamps.encodes(&oracle));
    // ...and equal what the batch stamper computes for the same computation
    // (the protocol is deterministic given the computation, independent of
    // the thread schedule).
    let batch = OnlineStamper::new(&dec).stamp_computation(&comp)?;
    assert_eq!(live_stamps, batch);
    println!("piggybacked timestamps = batch timestamps = ground truth ✓");

    // Show a few.
    for m in comp.messages().iter().take(6) {
        println!(
            "  {}: P{} -> P{}  v = {}",
            m.id,
            m.sender,
            m.receiver,
            live_stamps.vector(m.id)
        );
    }
    Ok(())
}
