//! Why synchrony buys anything at all: the Charron-Bost contrast.
//!
//! Asynchronously, vector clocks of size N are unavoidable in the worst
//! case — this example *builds* Charron-Bost's computation and exhibits the
//! crown structure forcing N components. It then shows that no rendezvous
//! execution can realize that computation, and that on the same process
//! count the synchronous message poset stays narrow (width ≤ ⌊N/2⌋), which
//! is what lets the paper's clocks shrink to the topology's edge
//! decomposition.
//!
//! Run with: `cargo run --example async_vs_sync`

use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::asynchrony::{charron_bost, fm_event_clocks};
use synctime::poset::{chains, dimension};
use synctime::prelude::*;
use synctime::sim::workload::random_computation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 4;

    // ---- the asynchronous side ------------------------------------------
    let cb = charron_bost(N);
    println!(
        "Charron-Bost computation on {N} processes: {} messages, {} events",
        cb.message_count(),
        cb.events().count()
    );
    let clocks = fm_event_clocks(&cb);
    assert!(clocks.encodes(&cb));
    println!("  Fidge-Mattern ({N} components) encodes it correctly.");

    // Its essential structure is the crown S_N, of dimension N:
    let crown = dimension::charron_bost_events(3);
    println!(
        "  crown S_3: width = {}, exact dimension = {}",
        chains::width(&crown),
        dimension::dimension(&crown)
    );
    assert_eq!(dimension::dimension(&crown), 3);
    println!("  -> no characterizing timestamp scheme can beat N components here.");

    // And it is *not* realizable synchronously:
    assert!(cb.to_synchronous().is_err());
    println!("  rendezvous cannot realize it (crossing broadcasts deadlock).\n");

    // ---- the synchronous side -------------------------------------------
    let topo = graph::topology::complete(N);
    let mut rng = StdRng::seed_from_u64(7);
    let comp: SyncComputation = random_computation(&topo, 40, &mut rng);
    let oracle = Oracle::new(&comp);
    let width = chains::width(oracle.message_poset());
    println!(
        "a synchronous computation on the same {N} processes (40 messages): width = {width} <= {}",
        N / 2
    );
    assert!(width <= N / 2);

    let dec = graph::decompose::best_known(&topo);
    let stamps = OnlineStamper::new(&dec).stamp_computation(&comp)?;
    assert!(stamps.encodes(&oracle));
    println!(
        "  online stamps: {} components (edge decomposition of K{N}); offline: {} (width)",
        stamps.dim(),
        synctime::core::offline::stamp_computation(&comp).dim()
    );
    println!("  both strictly below the asynchronous floor of {N}.");
    Ok(())
}
