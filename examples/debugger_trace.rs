//! Distributed-debugger use case: detecting racy (concurrent) events.
//!
//! The paper motivates timestamps with monitoring systems (POET, XPVM) and
//! predicate detection. This example replays a synchronous computation in
//! which several workers update a shared notion of state under a
//! coordinator's locks — except one update that slips outside the protocol.
//! The Section 5 event timestamps flag exactly the unordered update pair,
//! using vectors with **one** component (star topology) plus the
//! `(prev, succ, c)` triple, instead of Fidge–Mattern's N components.
//!
//! Run with: `cargo run --example debugger_trace`

use synctime::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coordinator P0, workers P1..P4, star topology.
    let topo = graph::topology::star(4);
    let dec = graph::decompose::best_known(&topo);
    assert_eq!(dec.len(), 1);

    let mut b = Builder::with_topology(&topo);
    let mut updates: Vec<(EventId, &'static str)> = Vec::new();

    // Worker 1: acquire -> update -> release.
    b.message(1, 0)?; // acquire
    updates.push((b.internal(1)?, "worker-1 update (locked)"));
    b.message(1, 0)?; // release

    // Worker 2: acquire -> update -> release.
    b.message(2, 0)?;
    updates.push((b.internal(2)?, "worker-2 update (locked)"));
    b.message(2, 0)?;

    // Worker 3 performs an update *without* talking to the coordinator —
    // the bug this debugger hunts for.
    updates.push((b.internal(3)?, "worker-3 update (NO LOCK)"));

    // Worker 4: a later, properly locked update.
    b.message(4, 0)?;
    updates.push((b.internal(4)?, "worker-4 update (locked)"));
    b.message(4, 0)?;

    let comp = b.build();
    let msg_stamps = OnlineStamper::new(&dec).stamp_computation(&comp)?;
    let ev_stamps = stamp_events(&comp, &msg_stamps);
    let oracle = Oracle::new(&comp);
    assert!(ev_stamps.encodes(&comp, &oracle), "Theorem 9 check");

    println!("update events and their (prev, succ, c) stamps:");
    for (e, label) in &updates {
        println!("  {label:<28} {}", ev_stamps.stamp(*e));
    }

    println!("\nracy (concurrent) update pairs:");
    let mut races = 0;
    for i in 0..updates.len() {
        for j in (i + 1)..updates.len() {
            let (a, la) = updates[i];
            let (b_, lb) = updates[j];
            if !ev_stamps.happened_before(a, b_) && !ev_stamps.happened_before(b_, a) {
                println!("  RACE: {la}  ||  {lb}");
                races += 1;
            }
        }
    }
    // Worker 3's unlocked update races with every other update.
    assert_eq!(races, 3);
    println!("\n{races} races found (all involve the unlocked update) ✓");
    Ok(())
}
