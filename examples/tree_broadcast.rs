//! Tree-structured computations: the Figure 4 scenario.
//!
//! A 20-process tree decomposes into **3 stars**, so a broadcast +
//! convergecast over it is timestamped with 3-component vectors. The
//! example also shows the decomposition scaling as the tree grows — the
//! vector size tracks the number of internal hubs, not the process count.
//!
//! Run with: `cargo run --example tree_broadcast`

use synctime::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 20-process tree of Figure 4.
    let tree = graph::topology::figure4_tree();
    let run = graph::decompose::greedy_with_trace(&tree);
    let dec = run.decomposition;
    println!(
        "Figure 4 tree: {} processes, {} edges",
        tree.node_count(),
        tree.edge_count()
    );
    println!("edge decomposition ({} groups):", dec.len());
    for (i, g) in dec.groups().iter().enumerate() {
        println!("  E{} = {g}", i + 1);
    }
    assert_eq!(dec.len(), 3);

    // Broadcast down, convergecast up.
    let sc = scenarios::tree_broadcast_convergecast(&tree, 0);
    let stamps = OnlineStamper::new(&dec).stamp_computation(&sc.computation)?;
    let oracle = Oracle::new(&sc.computation);
    assert!(stamps.encodes(&oracle));

    let first = sc.computation.messages()[0];
    let last = sc.computation.messages()[sc.computation.message_count() - 1];
    println!(
        "\nbroadcast start {} = {}   final convergecast {} = {}",
        first.id,
        stamps.vector(first.id),
        last.id,
        stamps.vector(last.id)
    );
    assert!(stamps.precedes(first.id, last.id));

    // Two different subtrees proceed concurrently.
    let down: Vec<&Message> = sc
        .computation
        .messages()
        .iter()
        .filter(|m| m.sender != 0 && m.receiver > 3)
        .collect();
    if let (Some(a), Some(b)) = (
        down.iter().find(|m| m.sender == 1),
        down.iter().find(|m| m.sender == 2),
    ) {
        println!(
            "hub-1 branch {} and hub-2 branch {} concurrent? {}",
            a.id,
            b.id,
            stamps.concurrent(a.id, b.id)
        );
    }

    // Growth: double the tree size repeatedly; the dimension tracks the
    // internal-hub count, not N.
    println!(
        "\n{:>10} {:>8} {:>12} {:>8}",
        "processes", "ours", "vertex-cover", "FM"
    );
    for depth in 1..=6 {
        let t = graph::topology::balanced_tree(2, depth);
        let d = graph::decompose::best_known(&t);
        let beta = if t.node_count() <= 24 {
            graph::cover::beta(&t).to_string()
        } else {
            "-".to_string()
        };
        println!(
            "{:>10} {:>8} {:>12} {:>8}",
            t.node_count(),
            d.len(),
            beta,
            t.node_count()
        );
    }
    Ok(())
}
