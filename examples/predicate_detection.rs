//! Global property evaluation and fault tolerance — the two applications
//! the paper's introduction motivates timestamps with.
//!
//! A tiny distributed transaction system on a client–server topology:
//! workers flag "holding a lock" around their critical sections
//! (predicate detection checks whether two could have held locks
//! simultaneously), and a server failure triggers orphan analysis to find
//! the recovery line.
//!
//! Run with: `cargo run --example predicate_detection`

use synctime::prelude::*;
use synctime::trace::diagram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coordinator 0, lock server 1, workers 2 and 3.
    let topo = graph::topology::client_server(2, 2);
    let dec = graph::decompose::best_known(&topo);
    let mut b = Builder::with_topology(&topo);

    // Worker 2 acquires from server 1, works, releases.
    b.message(2, 1)?;
    let w2_cs = b.internal(2)?;
    b.message(2, 1)?;
    // Worker 3 does the same *afterwards* (server serializes them).
    b.message(3, 1)?;
    let w3_cs = b.internal(3)?;
    b.message(3, 1)?;
    // Both also report to the coordinator.
    b.message(2, 0)?;
    b.message(3, 0)?;
    let comp = b.build();

    println!("space-time diagram (S/R: rendezvous endpoints, o: internal):\n");
    print!("{}", diagram::render(&comp));

    let msgs = OnlineStamper::new(&dec).stamp_computation(&comp)?;
    let events = stamp_events(&comp, &msgs);

    // --- predicate detection --------------------------------------------
    // "Did both workers possibly hold their lock at the same time?"
    let witness = wcp::possibly(&events, &[vec![w2_cs], vec![w3_cs]]);
    println!(
        "\nmutual exclusion: both in critical section possible? {:?}",
        witness.is_some()
    );
    assert!(witness.is_none(), "the lock server serialized the sections");

    // Now a buggy run where worker 3 skips the acquire.
    let mut b = Builder::with_topology(&topo);
    b.message(2, 1)?;
    let w2_cs = b.internal(2)?;
    b.message(2, 1)?;
    let w3_cs = b.internal(3)?; // no lock!
    b.message(3, 0)?;
    let buggy = b.build();
    let msgs2 = OnlineStamper::new(&dec).stamp_computation(&buggy)?;
    let events2 = stamp_events(&buggy, &msgs2);
    let witness = wcp::possibly(&events2, &[vec![w2_cs], vec![w3_cs]]);
    println!(
        "buggy run: both in critical section possible? {:?}",
        witness.is_some()
    );
    assert!(witness.is_some());
    if let Some(w) = witness {
        println!("  witness cut: {} and {}", w[0], w[1]);
    }

    // --- orphan analysis --------------------------------------------------
    // Back to the correct run: the lock server crashes after granting
    // worker 2 but loses everything after that grant.
    let failures = [orphans::Failure {
        process: 1,
        surviving_events: 1,
    }];
    let line = orphans::recovery_line(&comp, &events, &failures);
    let lost = orphans::orphan_events(&comp, &events, &failures);
    println!("\nserver 1 rolls back to its first grant:");
    println!("  orphaned events: {}", lost.len());
    for e in &lost {
        println!("    {e}");
    }
    println!("  recovery line (surviving prefix per process): {line:?}");
    // Worker 2's critical section survives (it only depended on the
    // surviving grant)... but its release rendezvous and everything the
    // workers did after server state was lost must roll back.
    assert!(line[2] > w2_cs.index || lost.iter().all(|e| e.process != 2 || e.index > w2_cs.index));
    Ok(())
}
