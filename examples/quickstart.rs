//! Quickstart: the paper's own worked examples, end to end.
//!
//! Reproduces Figure 1 (the order relation between synchronous messages)
//! and Figure 6 (the online algorithm stamping a fully-connected 5-process
//! system with 3-component vectors instead of 5).
//!
//! Run with: `cargo run --example quickstart`

use synctime::prelude::*;
use synctime::trace::examples::{figure1, figure1_messages, figure6, figure6_decomposition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Figure 1: the synchronously-precedes relation ------------------
    let comp = figure1();
    let oracle = Oracle::new(&comp);
    let [m1, m2, m3, m4, m5, m6] = figure1_messages();

    println!("Figure 1: a synchronous computation with 4 processes, 6 messages");
    for m in comp.messages() {
        println!("  {}: P{} -> P{}", m.id, m.sender + 1, m.receiver + 1);
    }
    println!("  m1 || m2?     {}", oracle.concurrent(m1, m2));
    println!("  m1 |-> m3?    {}", oracle.synchronously_precedes(m1, m3));
    println!("  m2 |-> m6?    {}", oracle.synchronously_precedes(m2, m6));
    println!("  m3 |-> m5?    {}", oracle.synchronously_precedes(m3, m5));
    println!(
        "  longest chain ending at m5: {} (m1 |-> m3 |-> m4 |-> m5)",
        oracle.chain_depths()[m5.index()]
    );
    let _ = m4;

    // ----- Figure 6: the online algorithm on K5 ---------------------------
    let comp = figure6();
    let dec = figure6_decomposition();
    println!("\nFigure 6: K5 decomposed as {dec}");
    println!("  -> vector dimension {} instead of N = 5", dec.len());

    let stamps = OnlineStamper::new(&dec).stamp_computation(&comp)?;
    println!("  timestamps:");
    for m in comp.messages() {
        println!(
            "    {}: P{} -> P{}   v = {}",
            m.id,
            m.sender + 1,
            m.receiver + 1,
            stamps.vector(m.id)
        );
    }

    // The precedence test is a plain vector comparison.
    let oracle = Oracle::new(&comp);
    assert!(
        stamps.encodes(&oracle),
        "Theorem 4: stamps encode the poset"
    );
    println!("  Theorem 4 check: every pair agrees with the ground truth ✓");

    // The offline algorithm does the same computation in 2 components.
    let offline = offline::stamp_computation(&comp);
    println!(
        "\nFigure 9 (offline): same poset encoded in {} components",
        offline.dim()
    );
    assert!(offline.encodes(&oracle));

    // The Fidge–Mattern baseline needs one component per process.
    let fm = synctime::core::fm::stamp_messages(&comp);
    println!("Fidge–Mattern baseline: {} components", fm.dim());
    assert!(fm.encodes(&oracle));

    Ok(())
}
