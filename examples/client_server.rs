//! Client–server RPC: timestamp size is the number of *servers*, however
//! many clients connect (Section 3.3's motivating example).
//!
//! Simulates synchronous-RPC workloads with a growing client population and
//! shows the online algorithm's vector dimension staying constant while the
//! Fidge–Mattern baseline grows linearly.
//!
//! Run with: `cargo run --example client_server`

use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SERVERS: usize = 3;
    println!("{SERVERS} servers; synchronous RPC (request + reply per call)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>14}",
        "clients", "processes", "ours (dim)", "FM (dim)", "bytes saved/msg"
    );

    for clients in [1, 2, 4, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(42);
        let sc = scenarios::client_server_rpc(SERVERS, clients, 50, &mut rng);
        let dec = graph::decompose::best_known(&sc.topology);
        let stamps = OnlineStamper::new(&dec).stamp_computation(&sc.computation)?;
        let fm = synctime::core::fm::stamp_messages(&sc.computation);

        // Both encode the order exactly...
        let oracle = Oracle::new(&sc.computation);
        assert!(stamps.encodes(&oracle));
        assert!(fm.encodes(&oracle));

        // ...but ours piggybacks `SERVERS` integers instead of N.
        let n = sc.topology.node_count();
        println!(
            "{:>8} {:>10} {:>12} {:>10} {:>14}",
            clients,
            n,
            stamps.dim(),
            fm.dim(),
            (fm.dim() - stamps.dim()) * 8
        );
        // With fewer clients than servers the client side is the smaller
        // vertex cover; from then on the dimension pins to SERVERS.
        assert_eq!(stamps.dim(), SERVERS.min(clients));
        assert_eq!(fm.dim(), n);
    }

    println!("\nA concrete query: which of two RPCs happened first?");
    let mut rng = StdRng::seed_from_u64(7);
    let sc = scenarios::client_server_rpc(SERVERS, 10, 20, &mut rng);
    let dec = graph::decompose::best_known(&sc.topology);
    let stamps = OnlineStamper::new(&dec).stamp_computation(&sc.computation)?;
    let calls: Vec<&Message> = sc
        .computation
        .messages()
        .iter()
        .filter(|m| m.receiver < SERVERS) // requests
        .collect();
    let (a, b) = (calls[0], calls[calls.len() - 1]);
    println!(
        "  {} (client {} -> server {})  vs  {} (client {} -> server {})",
        a.id, a.sender, a.receiver, b.id, b.sender, b.receiver
    );
    if stamps.precedes(a.id, b.id) {
        println!("  -> {} causally precedes {}", a.id, b.id);
    } else if stamps.concurrent(a.id, b.id) {
        println!("  -> they are concurrent");
    }
    Ok(())
}
