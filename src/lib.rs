//! # synctime
//!
//! Small vector timestamps for synchronous message-passing computations — a
//! full reproduction of *Garg & Skawratananond, "Timestamping Messages in
//! Synchronous Computations" (ICDCS 2002)*.
//!
//! Fidge–Mattern vector clocks need one component per process (`N`
//! components, and for asynchronous systems that is tight). When every
//! message is **synchronous** — a blocking rendezvous, as in CSP, Ada, or
//! synchronous RPC — the message set forms a poset `(M, ↦)` that can be
//! encoded exactly by vectors with one component per **edge group** of a
//! star/triangle decomposition of the communication topology: an integer
//! for a star or triangle topology, `#servers` components for a
//! client–server system, a handful for a tree, and never more than
//! `min(β(G), N − 2)` (vertex cover) in general.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `synctime-graph` | topologies, vertex covers, edge decompositions (Figure 7 algorithm) |
//! | [`poset`] | `synctime-poset` | Dilworth chain covers, realizers |
//! | [`trace`] | `synctime-trace` | computation traces, ground-truth oracle, the paper's Figure 1/6 examples |
//! | [`core`] | `synctime-core` | online (Figure 5) & offline (Figure 9) algorithms, event stamps, FM/Lamport baselines |
//! | [`sim`] | `synctime-sim` | workload generators, CSP-style rendezvous simulator |
//! | [`detect`] | `synctime-detect` | predicate detection & orphan/recovery analysis |
//! | [`asynchrony`] | `synctime-asynchrony` | asynchronous computations + Charron-Bost lower-bound construction (the contrast case) |
//! | [`runtime`] | `synctime-runtime` | threaded rendezvous runtime with piggybacking |
//!
//! The [`prelude`] re-exports the everyday names.
//!
//! # Example
//!
//! ```
//! use synctime::prelude::*;
//!
//! // 2 servers, 30 clients — timestamps still have just 2 components.
//! let topo = graph::topology::client_server(2, 30);
//! let dec = graph::decompose::best_known(&topo);
//! assert_eq!(dec.len(), 2);
//!
//! let mut b = Builder::with_topology(&topo);
//! let call = b.message(5, 0)?;  // client 3 calls server 0
//! let reply = b.message(0, 5)?; // and gets its reply
//! let other = b.message(9, 1)?; // an unrelated client calls server 1
//! let comp = b.build();
//!
//! let stamps = OnlineStamper::new(&dec).stamp_computation(&comp)?;
//! assert!(stamps.precedes(call, reply));
//! assert!(stamps.concurrent(reply, other));
//! assert!(stamps.encodes(&Oracle::new(&comp)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Compile-and-run the README's Rust code blocks as doctests, so the
// front-page examples can never drift from the API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use synctime_asynchrony as asynchrony;
pub use synctime_core as core;
pub use synctime_detect as detect;
pub use synctime_graph as graph;
pub use synctime_poset as poset;
pub use synctime_runtime as runtime;
pub use synctime_sim as sim;
pub use synctime_trace as trace;

/// The everyday names, importable with one `use synctime::prelude::*`.
pub mod prelude {
    pub use synctime_core::events::{
        stamp_events, EventStamp, EventTimestamps, PrevTime, SuccTime,
    };
    pub use synctime_core::online::{OnlineSession, OnlineStamper, ProcessClock};
    pub use synctime_core::{offline, CoreError, MessageTimestamps, VectorOrder, VectorTime};
    pub use synctime_detect::{orphans, wcp};
    pub use synctime_graph::{self as graph, Edge, EdgeDecomposition, EdgeGroup, Graph};
    pub use synctime_poset::{chains, realizer, Poset};
    pub use synctime_runtime::{Behavior, ProcessCtx, Runtime, RuntimeRun};
    pub use synctime_sim::{scenarios, workload, Op, Program, Simulator};
    pub use synctime_trace::{
        Builder, EventId, EventKind, Message, MessageId, Oracle, ProcessId, SyncComputation,
        TraceError,
    };
}
