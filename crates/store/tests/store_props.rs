//! Property tests for the store's crash tolerance: arbitrary stamp
//! payloads (covering what any clock backend emits through
//! `wire::encode_full`) encoded into store files, then truncated or
//! corrupted at arbitrary byte positions — recovery must keep exactly a
//! valid record prefix, reconstruct it successfully, and never panic.

use proptest::collection;
use proptest::prelude::*;

use synctime_core::wire;
use synctime_store::record::{encode_meta, encode_record, scan_file, Meta, FORMAT_VERSION};
use synctime_store::{
    materialize, persist_logs, read_trace_dir, LogEntry, StampRecord, StoreError,
};

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("synctime-store-props-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp root");
    dir
}

/// Arbitrary stamp bytes as any clock backend would produce them: every
/// backend serialises through `wire::encode_full`, so an arbitrary
/// component vector covers dense, tree-summarised, and fixed-capacity
/// clocks alike (they differ in how they *compute* components, not in
/// the wire form).
prop_compose! {
    fn arb_stamp()(components in collection::vec(0u64..1_000_000, 0..9)) -> Vec<u8> {
        wire::encode_full(&synctime_core::VectorTime::from(components))
    }
}

prop_compose! {
    fn arb_record()(
        process in 0u64..4,
        pseq in 0u64..64,
        peer in 0u64..4,
        key in any::<u64>(),
        stamp in arb_stamp(),
        kind in 0u8..3,
    ) -> StampRecord {
        match kind {
            0 => StampRecord::Sent { process, pseq, peer, key, stamp },
            1 => StampRecord::Received { process, pseq, peer, key, stamp },
            _ => StampRecord::Internal { process, pseq },
        }
    }
}

fn encode_file(records: &[StampRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_meta(
        &mut bytes,
        &Meta {
            version: FORMAT_VERSION,
            process_count: 4,
            generation: 0,
        },
    );
    for rec in records {
        encode_record(&mut bytes, rec);
    }
    bytes
}

/// Deterministic two-process rendezvous logs: `rounds` ping-pongs built
/// by hand (no runtime needed), with stamps of the given dimension so
/// different clock widths flow through persistence.
fn synthetic_logs(rounds: u64, dim: usize) -> Vec<Vec<LogEntry>> {
    let stamp = |c: u64| {
        let mut v = vec![0u64; dim.max(1)];
        v[0] = c;
        synctime_core::VectorTime::from(v)
    };
    let mut a = Vec::new();
    let mut b = Vec::new();
    for r in 0..rounds {
        let k1 = r * 2;
        let k2 = r * 2 + 1;
        a.push(LogEntry::Sent {
            to: 1,
            key: k1,
            stamp: stamp(k1 + 1),
        });
        b.push(LogEntry::Received {
            from: 0,
            key: k1,
            stamp: stamp(k1 + 1),
        });
        b.push(LogEntry::Internal);
        b.push(LogEntry::Sent {
            to: 0,
            key: (1 << 32) | k2,
            stamp: stamp(k2 + 1),
        });
        a.push(LogEntry::Received {
            from: 1,
            key: (1 << 32) | k2,
            stamp: stamp(k2 + 1),
        });
    }
    vec![a, b]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Untruncated files scan back to exactly the records written, and
    /// any truncation keeps a (possibly shorter) prefix — never garbage,
    /// never a panic.
    #[test]
    fn truncated_files_scan_to_a_record_prefix(
        records in collection::vec(arb_record(), 0..24),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_file(&records);
        let whole = scan_file(&bytes);
        prop_assert_eq!(whole.records.as_slice(), records.as_slice());
        prop_assert_eq!(whole.torn_bytes, 0);

        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let scan = scan_file(&bytes[..cut]);
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(scan.records.as_slice(), &records[..scan.records.len()]);
    }

    /// A single flipped byte anywhere in the file still yields a valid
    /// record prefix (the CRC refuses the damaged record and everything
    /// after it; records before the flip are untouched).
    #[test]
    fn corrupted_files_scan_to_a_record_prefix(
        records in collection::vec(arb_record(), 1..16),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_file(&records);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let scan = scan_file(&bytes);
        prop_assert!(scan.records.len() <= records.len());
        for (got, want) in scan.records.iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    /// End-to-end crash recovery: persist a run, truncate the sealed
    /// snapshot at an arbitrary byte, and recover — the result is always
    /// a reconstructible prefix of the original per-process logs (or a
    /// typed corruption error while META itself is torn; never a panic).
    #[test]
    fn torn_store_recovers_a_reconstructible_prefix(
        rounds in 1u64..6,
        dim in 1usize..5,
        cut_frac in 0.0f64..1.0,
    ) {
        let logs = synthetic_logs(rounds, dim);
        let root = temp_root(&format!("torn-{rounds}-{dim}"));
        let store = persist_logs(&root, "t", &logs).expect("persist");
        let snap = store.dir().join(synctime_store::SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap).expect("read snapshot");

        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&snap, &bytes[..cut]).expect("truncate");
        match read_trace_dir(store.dir()) {
            Ok(rec) => {
                prop_assert_eq!(rec.logs.len(), logs.len());
                for (got, want) in rec.logs.iter().zip(logs.iter()) {
                    prop_assert!(got.len() <= want.len());
                    prop_assert_eq!(got.as_slice(), &want[..got.len()]);
                }
                materialize(&rec.logs).expect("recovered prefix reconstructs");
            }
            Err(StoreError::Corrupt(_)) => {
                // Only legitimate while the META record itself is torn.
            }
            Err(other) => return Err(TestCaseError::Fail(format!("unexpected error: {other}"))),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Full round trip at arbitrary widths: what goes in comes back out,
    /// bit for bit, through persist → recover → materialize.
    #[test]
    fn persisted_runs_round_trip(rounds in 1u64..8, dim in 1usize..6) {
        let logs = synthetic_logs(rounds, dim);
        let root = temp_root(&format!("rt-{rounds}-{dim}"));
        let store = persist_logs(&root, "t", &logs).expect("persist");
        let rec = read_trace_dir(store.dir()).expect("recover");
        prop_assert_eq!(&rec.logs, &logs);
        prop_assert_eq!(rec.dropped_records, 0);
        materialize(&rec.logs).expect("reconstructs");
        let _ = std::fs::remove_dir_all(&root);
    }
}
