//! The on-disk record codec.
//!
//! A store file is a sequence of framed records:
//!
//! ```text
//! record := u32 le payload_len | u32 le crc32(payload) | payload
//! ```
//!
//! and a payload is a 1-byte tag followed by LEB128 varints (the same
//! varints `synctime_core::wire` uses on the network):
//!
//! | tag | name     | payload after the tag                                        |
//! |-----|----------|--------------------------------------------------------------|
//! | 0   | META     | varint version, varint process_count, varint generation      |
//! | 1   | SENT     | varint process, varint pseq, varint peer, varint key, stamp  |
//! | 2   | RECEIVED | varint process, varint pseq, varint peer, varint key, stamp  |
//! | 3   | INTERNAL | varint process, varint pseq                                  |
//! | 4   | RECONFIG | varint epoch, varint cut_count, cuts, varint op_count, ops   |
//!
//! The stamp is **last** and runs to the end of the payload: it is exactly
//! the bytes the clock seam (`Clock::encode_wire`, i.e.
//! [`wire::encode_full`]) produces, so every `--clock` backend round-trips
//! byte-identically and [`wire::decode_full`]'s exact-consumption check
//! validates it in place. Record sizes are priced byte-for-byte by
//! `wire::store_meta_record_bytes` / `store_stamp_record_bytes` /
//! `store_internal_record_bytes` (asserted by this module's tests).

use synctime_core::wire;

use crate::crc::crc32;

/// The record-format version written into every META record. Readers
/// refuse other versions rather than guess.
pub const FORMAT_VERSION: u64 = 1;

/// Upper bound on one record's payload length: a larger length prefix is
/// a torn or hostile file, not a real record (the largest legitimate
/// payload is a stamp record whose vector is bounded by the decomposition
/// dimension).
pub const MAX_RECORD_PAYLOAD: u32 = 1 << 24;

const TAG_META: u8 = 0;
const TAG_SENT: u8 = 1;
const TAG_RECEIVED: u8 = 2;
const TAG_INTERNAL: u8 = 3;
const TAG_RECONFIG: u8 = 4;

/// A store file's leading record: what a reader must know before it can
/// interpret the entry records that follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// The record-format version (see [`FORMAT_VERSION`]).
    pub version: u64,
    /// The run's process count — the number of per-process logs replay
    /// reassembles.
    pub process_count: u64,
    /// The snapshot generation this file belongs to. Incremented on every
    /// compaction; recovery uses coordinate-level deduplication, so even
    /// a log left stale by a crash between snapshot rename and log
    /// truncation replays correctly.
    pub generation: u64,
}

/// One durable execution-log record: a [`LogEntry`] plus the
/// `(process, pseq)` coordinates that make replay order-independent.
///
/// [`LogEntry`]: synctime_runtime::LogEntry
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StampRecord {
    /// The process sent a message (the OFFER side of a rendezvous).
    Sent {
        /// The logging (sending) process.
        process: u64,
        /// The entry's position in that process's log.
        pseq: u64,
        /// The receiving process.
        peer: u64,
        /// The message's reconstruction key.
        key: u64,
        /// The agreed timestamp, encoded by the clock wire seam
        /// ([`wire::encode_full`]).
        stamp: Vec<u8>,
    },
    /// The process received a message (the ACK side of a rendezvous).
    Received {
        /// The logging (receiving) process.
        process: u64,
        /// The entry's position in that process's log.
        pseq: u64,
        /// The sending process.
        peer: u64,
        /// The message's reconstruction key.
        key: u64,
        /// The agreed timestamp, encoded by the clock wire seam.
        stamp: Vec<u8>,
    },
    /// The process logged a local event.
    Internal {
        /// The logging process.
        process: u64,
        /// The entry's position in that process's log.
        pseq: u64,
    },
}

impl StampRecord {
    /// The logging process.
    pub fn process(&self) -> u64 {
        match self {
            StampRecord::Sent { process, .. }
            | StampRecord::Received { process, .. }
            | StampRecord::Internal { process, .. } => *process,
        }
    }

    /// The record's position in its process's log.
    pub fn pseq(&self) -> u64 {
        match self {
            StampRecord::Sent { pseq, .. }
            | StampRecord::Received { pseq, .. }
            | StampRecord::Internal { pseq, .. } => *pseq,
        }
    }

    /// The framed on-disk size of this record, via `core::wire`'s store
    /// pricing helpers — asserted byte-for-byte against [`encode_record`].
    pub fn encoded_len(&self) -> u64 {
        match self {
            StampRecord::Sent {
                process,
                pseq,
                peer,
                key,
                stamp,
            }
            | StampRecord::Received {
                process,
                pseq,
                peer,
                key,
                stamp,
            } => wire::store_stamp_record_bytes(*process, *pseq, *peer, *key, stamp.len()),
            StampRecord::Internal { process, pseq } => {
                wire::store_internal_record_bytes(*process, *pseq)
            }
        }
    }
}

/// An epoch boundary made durable: a committed reconfiguration's position
/// in every process's log, so replay can segment a trace into epochs and
/// materialize the latest one even after a crash mid-churn.
///
/// The remap itself is **not** stored — stamps are logged post-rebase, so
/// replay never needs to re-run a remap; the edge operations ride along as
/// provenance (what changed, auditable from the trace alone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigRecord {
    /// The epoch this boundary establishes (the first committed boundary
    /// writes epoch 1).
    pub epoch: u64,
    /// Per process, the length of its log when the boundary committed:
    /// entries `< cuts[p]` belong to earlier epochs, entries `>= cuts[p]`
    /// to this one. One cut per process of the run.
    pub cuts: Vec<u64>,
    /// The edit batch that produced the new topology, as
    /// `(kind, u, v)` triples — kind 0 inserts edge `(u, v)`, kind 1
    /// removes it (mirrors `synctime_graph::EdgeOp`).
    pub ops: Vec<(u8, u64, u64)>,
}

impl ReconfigRecord {
    /// The framed on-disk size of this record, priced byte-for-byte by
    /// `core::wire::store_reconfig_record_bytes`.
    pub fn encoded_len(&self) -> u64 {
        wire::store_reconfig_record_bytes(self.epoch, &self.cuts, &self.ops)
    }
}

/// Frames `payload` (length prefix + CRC) onto `out`.
fn frame_payload(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends a framed META record to `out`.
pub fn encode_meta(out: &mut Vec<u8>, meta: &Meta) {
    let mut payload = Vec::with_capacity(16);
    payload.push(TAG_META);
    wire::push_varint(&mut payload, meta.version);
    wire::push_varint(&mut payload, meta.process_count);
    wire::push_varint(&mut payload, meta.generation);
    frame_payload(out, &payload);
}

/// Appends a framed entry record to `out`.
pub fn encode_record(out: &mut Vec<u8>, rec: &StampRecord) {
    let mut payload = Vec::with_capacity(24);
    match rec {
        StampRecord::Sent {
            process,
            pseq,
            peer,
            key,
            stamp,
        } => {
            payload.push(TAG_SENT);
            wire::push_varint(&mut payload, *process);
            wire::push_varint(&mut payload, *pseq);
            wire::push_varint(&mut payload, *peer);
            wire::push_varint(&mut payload, *key);
            payload.extend_from_slice(stamp);
        }
        StampRecord::Received {
            process,
            pseq,
            peer,
            key,
            stamp,
        } => {
            payload.push(TAG_RECEIVED);
            wire::push_varint(&mut payload, *process);
            wire::push_varint(&mut payload, *pseq);
            wire::push_varint(&mut payload, *peer);
            wire::push_varint(&mut payload, *key);
            payload.extend_from_slice(stamp);
        }
        StampRecord::Internal { process, pseq } => {
            payload.push(TAG_INTERNAL);
            wire::push_varint(&mut payload, *process);
            wire::push_varint(&mut payload, *pseq);
        }
    }
    frame_payload(out, &payload);
}

/// Appends a framed RECONFIG record to `out`.
pub fn encode_reconfig(out: &mut Vec<u8>, rec: &ReconfigRecord) {
    let mut payload = Vec::with_capacity(24);
    payload.push(TAG_RECONFIG);
    wire::push_varint(&mut payload, rec.epoch);
    wire::push_varint(&mut payload, rec.cuts.len() as u64);
    for &cut in &rec.cuts {
        wire::push_varint(&mut payload, cut);
    }
    wire::push_varint(&mut payload, rec.ops.len() as u64);
    for &(kind, u, v) in &rec.ops {
        wire::push_varint(&mut payload, kind as u64);
        wire::push_varint(&mut payload, u);
        wire::push_varint(&mut payload, v);
    }
    frame_payload(out, &payload);
}

/// What a scan of one store file's bytes yielded: the valid prefix, and
/// how many tail bytes it refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileScan {
    /// The file's META record, if its first record parsed as one.
    pub meta: Option<Meta>,
    /// Every entry record of the valid prefix, in file order.
    pub records: Vec<StampRecord>,
    /// Every RECONFIG epoch-boundary record of the valid prefix, in file
    /// order. Kept apart from `records`: a boundary's position in a
    /// process log is given by its `cuts`, not by its interleaving in the
    /// file.
    pub reconfigs: Vec<ReconfigRecord>,
    /// Bytes at the tail that did not form a valid record: a torn final
    /// write, a failed checksum, or garbage. Everything before them is
    /// kept; everything from the first invalid byte on is dropped.
    pub torn_bytes: usize,
}

/// One decoded non-META payload: an entry record or an epoch boundary.
enum Decoded {
    Stamp(StampRecord),
    Reconfig(ReconfigRecord),
}

/// Decodes one record payload (tag + fields), or `None` for a malformed
/// payload. Stamp bytes are validated against [`wire::decode_full`] here
/// so replay never meets an undecodable stamp.
fn decode_payload(payload: &[u8]) -> Option<Decoded> {
    let (&tag, rest) = payload.split_first()?;
    let mut pos = 0usize;
    match tag {
        TAG_SENT | TAG_RECEIVED => {
            let process = wire::read_varint(rest, &mut pos)?;
            let pseq = wire::read_varint(rest, &mut pos)?;
            let peer = wire::read_varint(rest, &mut pos)?;
            let key = wire::read_varint(rest, &mut pos)?;
            let stamp = rest[pos..].to_vec();
            wire::decode_full(&stamp)?;
            Some(Decoded::Stamp(if tag == TAG_SENT {
                StampRecord::Sent {
                    process,
                    pseq,
                    peer,
                    key,
                    stamp,
                }
            } else {
                StampRecord::Received {
                    process,
                    pseq,
                    peer,
                    key,
                    stamp,
                }
            }))
        }
        TAG_INTERNAL => {
            let process = wire::read_varint(rest, &mut pos)?;
            let pseq = wire::read_varint(rest, &mut pos)?;
            (pos == rest.len()).then_some(Decoded::Stamp(StampRecord::Internal { process, pseq }))
        }
        TAG_RECONFIG => {
            let epoch = wire::read_varint(rest, &mut pos)?;
            let cut_count = wire::read_varint(rest, &mut pos)?;
            if cut_count > MAX_RECORD_PAYLOAD as u64 {
                return None;
            }
            let mut cuts = Vec::with_capacity(cut_count as usize);
            for _ in 0..cut_count {
                cuts.push(wire::read_varint(rest, &mut pos)?);
            }
            let op_count = wire::read_varint(rest, &mut pos)?;
            if op_count > MAX_RECORD_PAYLOAD as u64 {
                return None;
            }
            let mut ops = Vec::with_capacity(op_count as usize);
            for _ in 0..op_count {
                let kind = wire::read_varint(rest, &mut pos)?;
                if kind > 1 {
                    return None;
                }
                let u = wire::read_varint(rest, &mut pos)?;
                let v = wire::read_varint(rest, &mut pos)?;
                ops.push((kind as u8, u, v));
            }
            (pos == rest.len()).then_some(Decoded::Reconfig(ReconfigRecord { epoch, cuts, ops }))
        }
        _ => None,
    }
}

/// Decodes a META payload, or `None` if it is not one.
fn decode_meta_payload(payload: &[u8]) -> Option<Meta> {
    let (&tag, rest) = payload.split_first()?;
    if tag != TAG_META {
        return None;
    }
    let mut pos = 0usize;
    let version = wire::read_varint(rest, &mut pos)?;
    let process_count = wire::read_varint(rest, &mut pos)?;
    let generation = wire::read_varint(rest, &mut pos)?;
    (pos == rest.len()).then_some(Meta {
        version,
        process_count,
        generation,
    })
}

/// Splits the framed record at `bytes[*pos..]`, advancing the cursor past
/// it. Returns `None` (cursor untouched) when the bytes there do not form
/// a complete record with a matching checksum.
fn next_payload<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let rest = &bytes[*pos..];
    if rest.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    if len == 0 || len > MAX_RECORD_PAYLOAD {
        return None;
    }
    let want = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    let payload = rest.get(8..8 + len as usize)?;
    if crc32(payload) != want {
        return None;
    }
    *pos += 8 + len as usize;
    Some(payload)
}

/// Scans one store file's bytes into its valid record prefix.
///
/// The first record must be a META record; without one the whole file is
/// treated as torn (a crash during file creation). After it, records are
/// taken in order until the first framing violation, checksum failure, or
/// malformed payload — the torn-tail rule: **keep the valid prefix, drop
/// the rest, never fail**. Scanning cannot error; corruption shows up as
/// `torn_bytes` and a shorter prefix, and it is the caller's dedup/trim
/// pass ([`read_trace_dir`](crate::read_trace_dir)) that decides what the
/// surviving records mean.
pub fn scan_file(bytes: &[u8]) -> FileScan {
    let mut pos = 0usize;
    let Some(meta) = next_payload(bytes, &mut pos).and_then(decode_meta_payload) else {
        return FileScan {
            meta: None,
            records: Vec::new(),
            reconfigs: Vec::new(),
            torn_bytes: bytes.len(),
        };
    };
    let (records, reconfigs) = scan_entries(bytes, &mut pos);
    FileScan {
        meta: Some(meta),
        records,
        reconfigs,
        torn_bytes: bytes.len() - pos,
    }
}

/// Takes entry and RECONFIG records from `bytes[*pos..]` until the first
/// framing violation, checksum failure, or malformed payload, leaving the
/// cursor at the end of the valid prefix.
fn scan_entries(bytes: &[u8], pos: &mut usize) -> (Vec<StampRecord>, Vec<ReconfigRecord>) {
    let mut records = Vec::new();
    let mut reconfigs = Vec::new();
    while let Some(payload) = next_payload(bytes, pos) {
        match decode_payload(payload) {
            Some(Decoded::Stamp(rec)) => records.push(rec),
            Some(Decoded::Reconfig(rec)) => reconfigs.push(rec),
            None => {
                // A checksum-valid but malformed payload still ends the
                // prefix: trusting anything after an undecodable record
                // would re-order the stream.
                *pos -= 8 + payload.len();
                break;
            }
        }
    }
    (records, reconfigs)
}

/// Decodes only a file's leading META record, returning it together with
/// how many bytes it occupied — what a tailing reader needs to detect a
/// compaction (generation bump) without re-reading the whole file.
pub fn scan_meta(bytes: &[u8]) -> Option<(Meta, usize)> {
    let mut pos = 0usize;
    let meta = next_payload(bytes, &mut pos).and_then(decode_meta_payload)?;
    Some((meta, pos))
}

/// The result of scanning a log **tail** — bytes starting mid-file, after
/// a known-good offset, with no META record in front of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailScan {
    /// Entry records of the tail's valid prefix, in file order.
    pub records: Vec<StampRecord>,
    /// RECONFIG records of the tail's valid prefix, in file order.
    pub reconfigs: Vec<ReconfigRecord>,
    /// How many of the given bytes formed valid records. The caller
    /// advances its offset by exactly this much; a torn final record is
    /// left behind and may complete on a later read.
    pub consumed: usize,
}

/// Scans record bytes that start **after** a file's META — the
/// incremental half of [`scan_file`], used by tailing readers that
/// remember a byte offset and only re-read what appended since. Same
/// torn-tail rule: keep the valid prefix, report how far it reached.
pub fn scan_tail(bytes: &[u8]) -> TailScan {
    let mut pos = 0usize;
    let (records, reconfigs) = scan_entries(bytes, &mut pos);
    TailScan {
        records,
        reconfigs,
        consumed: pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::VectorTime;

    fn sample_records() -> Vec<StampRecord> {
        let stamp = |v: Vec<u64>| wire::encode_full(&VectorTime::from(v));
        vec![
            StampRecord::Sent {
                process: 0,
                pseq: 0,
                peer: 1,
                key: 0,
                stamp: stamp(vec![1, 0]),
            },
            StampRecord::Received {
                process: 1,
                pseq: 0,
                peer: 0,
                key: 0,
                stamp: stamp(vec![1, 0]),
            },
            StampRecord::Internal {
                process: 1,
                pseq: 1,
            },
            StampRecord::Sent {
                process: 1,
                pseq: 2,
                peer: 0,
                key: 1 << 32,
                stamp: stamp(vec![1, 300]),
            },
        ]
    }

    fn encode_file(meta: &Meta, records: &[StampRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_meta(&mut out, meta);
        for r in records {
            encode_record(&mut out, r);
        }
        out
    }

    #[test]
    fn records_roundtrip_and_match_wire_pricing() {
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: 2,
            generation: 3,
        };
        let records = sample_records();
        let bytes = encode_file(&meta, &records);
        // Every record's framed size is exactly what core::wire prices.
        let mut expected = wire::store_meta_record_bytes(FORMAT_VERSION, 2, 3);
        for r in &records {
            expected += r.encoded_len();
        }
        assert_eq!(bytes.len() as u64, expected);
        let scan = scan_file(&bytes);
        assert_eq!(scan.meta, Some(meta));
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: 2,
            generation: 0,
        };
        let records = sample_records();
        let bytes = encode_file(&meta, &records);
        for cut in 0..bytes.len() {
            let scan = scan_file(&bytes[..cut]);
            assert!(scan.records.len() <= records.len());
            assert_eq!(
                scan.records,
                records[..scan.records.len()],
                "prefix property violated at cut {cut}"
            );
        }
        // The untruncated file scans whole.
        assert_eq!(scan_file(&bytes).records.len(), records.len());
    }

    #[test]
    fn corrupt_byte_ends_the_prefix() {
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: 2,
            generation: 0,
        };
        let records = sample_records();
        let clean = encode_file(&meta, &records);
        // Flip one byte inside the third record's payload: the first two
        // records survive, everything after the flip is dropped.
        let meta_len = wire::store_meta_record_bytes(FORMAT_VERSION, 2, 0) as usize;
        let off = meta_len + (records[0].encoded_len() + records[1].encoded_len()) as usize + 9; // inside record 2's payload
        let mut bytes = clean.clone();
        bytes[off] ^= 0xff;
        let scan = scan_file(&bytes);
        assert_eq!(scan.records, records[..2]);
        assert!(scan.torn_bytes > 0);
        // A file whose META itself is unreadable yields nothing.
        let scan = scan_file(&clean[3..]);
        assert_eq!(scan.meta, None);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn reconfig_records_roundtrip_and_match_wire_pricing() {
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: 3,
            generation: 0,
        };
        let records = sample_records();
        let boundary = ReconfigRecord {
            epoch: 1,
            cuts: vec![2, 2, 0],
            ops: vec![(0, 1, 2), (1, 0, 1)],
        };
        let mut bytes = Vec::new();
        encode_meta(&mut bytes, &meta);
        encode_record(&mut bytes, &records[0]);
        encode_record(&mut bytes, &records[1]);
        encode_reconfig(&mut bytes, &boundary);
        encode_record(&mut bytes, &records[2]);
        // The boundary's framed size is exactly what core::wire prices.
        assert_eq!(
            boundary.encoded_len(),
            wire::store_reconfig_record_bytes(1, &[2, 2, 0], &[(0, 1, 2), (1, 0, 1)])
        );
        let scan = scan_file(&bytes);
        assert_eq!(scan.meta, Some(meta));
        assert_eq!(scan.records, records[..3]);
        assert_eq!(scan.reconfigs, vec![boundary]);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn scan_tail_resumes_where_a_full_scan_left_off() {
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: 2,
            generation: 0,
        };
        let records = sample_records();
        let mut head = Vec::new();
        encode_meta(&mut head, &meta);
        encode_record(&mut head, &records[0]);
        encode_record(&mut head, &records[1]);
        // Tail: two more records plus an epoch boundary, appended later.
        let boundary = ReconfigRecord {
            epoch: 1,
            cuts: vec![1, 2],
            ops: vec![(1, 0, 1)],
        };
        let mut tail = Vec::new();
        encode_record(&mut tail, &records[2]);
        encode_reconfig(&mut tail, &boundary);
        encode_record(&mut tail, &records[3]);
        let tail_scan = scan_tail(&tail);
        assert_eq!(tail_scan.records, records[2..]);
        assert_eq!(tail_scan.reconfigs, vec![boundary.clone()]);
        assert_eq!(tail_scan.consumed, tail.len());
        // Head-scan + tail-scan agree with one scan of the whole file.
        let mut whole = head.clone();
        whole.extend_from_slice(&tail);
        let full = scan_file(&whole);
        let head_scan = scan_file(&head);
        let mut combined = head_scan.records.clone();
        combined.extend(tail_scan.records.clone());
        assert_eq!(full.records, combined);
        assert_eq!(full.reconfigs, tail_scan.reconfigs);
        // A torn tail consumes only up to the torn record; the rest waits
        // for the bytes to complete.
        for cut in 0..tail.len() {
            let partial = scan_tail(&tail[..cut]);
            assert!(partial.consumed <= cut);
            assert_eq!(partial.records, tail_scan.records[..partial.records.len()]);
        }
    }
}
