//! The bridges between the runtime's ingestion seam and the on-disk
//! store: converting [`LogEntry`]/[`PersistEvent`] values into records,
//! streaming a live run into a [`TraceStore`] on a background thread, and
//! materialising a recovered trace back into queryable timestamps.

use std::path::Path;
use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

use synctime_core::wire;
use synctime_core::MessageTimestamps;
use synctime_runtime::{reconstruct_from_logs, LogEntry, PersistEvent};
use synctime_trace::SyncComputation;

use crate::log::TraceStore;
use crate::record::StampRecord;
use crate::StoreError;

/// Encodes one runtime log entry as a store record at coordinate
/// `(process, pseq)`. The stamp is serialised with the same
/// `synctime_core::wire::encode_full` codec every clock backend already
/// speaks, so any `--clock` choice round-trips through the store.
pub fn record_from_log_entry(process: u64, pseq: u64, entry: &LogEntry) -> StampRecord {
    match entry {
        LogEntry::Sent { to, key, stamp } => StampRecord::Sent {
            process,
            pseq,
            peer: *to as u64,
            key: *key,
            stamp: wire::encode_full(stamp),
        },
        LogEntry::Received { from, key, stamp } => StampRecord::Received {
            process,
            pseq,
            peer: *from as u64,
            key: *key,
            stamp: wire::encode_full(stamp),
        },
        LogEntry::Internal => StampRecord::Internal { process, pseq },
    }
}

/// Encodes a live-ingestion event (as emitted through
/// `Runtime::with_log_sink`) as a store record.
pub fn record_from_event(event: &PersistEvent) -> StampRecord {
    record_from_log_entry(event.process as u64, event.pseq, &event.entry)
}

/// Persists already-collected per-process logs (e.g. a finished
/// [`RuntimeRun`](synctime_runtime::RuntimeRun)'s logs, or logs merged
/// from distributed node reports) into `<root>/<trace>`, sealing the
/// result with a snapshot so the log is compact and fsynced.
///
/// # Errors
///
/// [`StoreError::InvalidTraceName`] or [`StoreError::Io`] from the
/// underlying [`TraceStore`].
pub fn persist_logs(
    root: &Path,
    trace: &str,
    logs: &[Vec<LogEntry>],
) -> Result<TraceStore, StoreError> {
    persist_logs_with_reconfigs(root, trace, logs, &[])
}

/// [`persist_logs`] for a reconfigured (multi-epoch) run: the per-process
/// logs are each epoch's logs concatenated in epoch order (so `pseq`
/// stays dense per process across epochs), and `reconfigs` carries one
/// epoch-boundary record per committed reconfiguration, its cuts naming
/// where in each concatenated log the boundary falls.
/// [`materialize_latest_epoch`] uses those cuts to serve the post-churn
/// trace after recovery.
///
/// # Errors
///
/// [`StoreError::InvalidTraceName`] or [`StoreError::Io`] from the
/// underlying [`TraceStore`].
pub fn persist_logs_with_reconfigs(
    root: &Path,
    trace: &str,
    logs: &[Vec<LogEntry>],
    reconfigs: &[crate::ReconfigRecord],
) -> Result<TraceStore, StoreError> {
    let mut store = TraceStore::create(root, trace, logs.len())?.with_snapshot_every(0);
    for (process, log) in logs.iter().enumerate() {
        for (pseq, entry) in log.iter().enumerate() {
            store.append(record_from_log_entry(process as u64, pseq as u64, entry))?;
        }
    }
    for boundary in reconfigs {
        store.append_reconfig(boundary)?;
    }
    store.snapshot()?;
    Ok(store)
}

/// Rebuilds the queryable trace from a recovered prefix family via the
/// same [`reconstruct_from_logs`] seam an in-memory run uses, so stored
/// and never-stored runs answer queries identically.
///
/// # Errors
///
/// [`StoreError::Replay`] when the recovered logs do not reassemble into
/// a synchronous computation (recovery's trimming rules make this
/// unreachable for stores written by this crate, but adversarial bytes
/// surface here as a typed error rather than a panic).
pub fn materialize(
    logs: &[Vec<LogEntry>],
) -> Result<(SyncComputation, MessageTimestamps), StoreError> {
    reconstruct_from_logs(logs).map_err(|e| StoreError::Replay(e.to_string()))
}

/// Materialises the **latest epoch** of a recovered trace: the log
/// segment after the newest covered RECONFIG boundary (the whole trace
/// when no boundary was recorded). Returns that epoch's number alongside
/// the reconstruction.
///
/// A reconfigured trace cannot reconstruct whole: stamps before and after
/// a boundary live in different vector dimensions, and message keys are
/// only unique within one epoch's run. The durable cuts segment the logs
/// exactly; a segment-local matched-keys pass then trims any rendezvous
/// half-lost to a torn tail (whole-trace recovery cannot see those,
/// because a recycled key from an older epoch masks the missing partner).
///
/// # Errors
///
/// [`StoreError::Replay`] when the segment does not reassemble into a
/// synchronous computation.
pub fn materialize_latest_epoch(
    trace: &crate::RecoveredTrace,
) -> Result<(u64, SyncComputation, MessageTimestamps), StoreError> {
    let Some(last) = trace.reconfigs.last() else {
        let (comp, stamps) = materialize(&trace.logs)?;
        return Ok((0, comp, stamps));
    };
    // Recovery kept only fully-covered boundaries, so every cut is in
    // range.
    let mut segment: Vec<Vec<LogEntry>> = trace
        .logs
        .iter()
        .zip(&last.cuts)
        .map(|(log, &cut)| log.get(cut as usize..).unwrap_or(&[]).to_vec())
        .collect();
    crate::log::match_keys_fixpoint(&mut segment);
    let (comp, stamps) = materialize(&segment)?;
    Ok((last.epoch, comp, stamps))
}

/// The handle to a background ingestion writer spawned by
/// [`spawn_writer`]. Dropping the event sender (and every clone the
/// runtime holds) ends the stream; [`StoreWriter::finish`] then joins the
/// thread and returns the sealed store.
#[derive(Debug)]
pub struct StoreWriter {
    handle: JoinHandle<Result<TraceStore, StoreError>>,
}

impl StoreWriter {
    /// Waits for the ingestion thread to drain the channel, seal the
    /// store with a final snapshot + fsync, and hand the store back.
    /// Callers must drop every [`Sender`] clone first (the runtime's
    /// `with_log_sink` clone included) or this blocks forever.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] the writer thread hit while appending or
    /// sealing.
    pub fn finish(self) -> Result<TraceStore, StoreError> {
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(StoreError::Io("store writer thread panicked".to_string())),
        }
    }
}

/// Records appended between writer-thread flushes before a flush is
/// forced even with the channel still busy. Bounds how far a polling
/// reader can lag a fast producer without costing one `write(2)` per
/// record when the writer outpaces the run (the common case).
const FLUSH_EVERY_RECORDS: usize = 1024;

/// How long the writer waits for the next event before flushing whatever
/// is buffered — the staleness bound a concurrently polling reader sees
/// during a quiet stretch.
const FLUSH_IDLE: std::time::Duration = std::time::Duration::from_millis(25);

/// Spawns the ingestion thread: event bursts sent on the returned
/// channel's [`Sender`] (wire it via `Runtime::with_log_sink`, which
/// ships one `Vec` per per-process burst) are appended to
/// `<root>/<trace>` as they arrive. Flushes are batched — every
/// [`FLUSH_EVERY_RECORDS`] appends under load, or after [`FLUSH_IDLE`]
/// without a new burst — so a concurrently polling reader observes
/// growth promptly while a fast run never pays one syscall per record.
/// The store snapshots/compacts automatically (geometric trigger seeded
/// at [`DEFAULT_SNAPSHOT_EVERY`](crate::DEFAULT_SNAPSHOT_EVERY)).
///
/// # Errors
///
/// [`StoreError::InvalidTraceName`] or [`StoreError::Io`] when the store
/// cannot be created (before any thread is spawned).
pub fn spawn_writer(
    root: &Path,
    trace: &str,
    process_count: usize,
) -> Result<(Sender<Vec<PersistEvent>>, StoreWriter), StoreError> {
    use std::sync::mpsc::RecvTimeoutError;
    let mut store = TraceStore::create(root, trace, process_count)?;
    let (tx, rx): (Sender<Vec<PersistEvent>>, Receiver<Vec<PersistEvent>>) =
        std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || -> Result<TraceStore, StoreError> {
        let mut unflushed = 0usize;
        loop {
            match rx.recv_timeout(FLUSH_IDLE) {
                Ok(burst) => {
                    for event in &burst {
                        store.append(record_from_event(event))?;
                        unflushed += 1;
                    }
                    // Drain whatever else is queued before considering a
                    // flush; under load this amortises the syscall over
                    // every pending burst.
                    while let Ok(burst) = rx.try_recv() {
                        for event in &burst {
                            store.append(record_from_event(event))?;
                            unflushed += 1;
                        }
                    }
                    if unflushed >= FLUSH_EVERY_RECORDS {
                        store.flush()?;
                        unflushed = 0;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if unflushed > 0 {
                        store.flush()?;
                        unflushed = 0;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        store.snapshot()?;
        store.sync()?;
        Ok(store)
    });
    Ok((tx, StoreWriter { handle }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_trace_dir;
    use std::sync::mpsc;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synctime-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp root");
        dir
    }

    fn ping_pong_logs(rounds: u64) -> Vec<Vec<LogEntry>> {
        use synctime_graph::{decompose, topology};
        use synctime_runtime::{Behavior, Runtime};
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let a: Behavior = Box::new(move |ctx| {
            for i in 0..rounds {
                ctx.send(1, i)?;
                ctx.receive_from(1)?;
            }
            Ok(())
        });
        let b: Behavior = Box::new(move |ctx| {
            for _ in 0..rounds {
                let (x, _) = ctx.receive_from(0)?;
                ctx.internal();
                ctx.send(0, x)?;
            }
            Ok(())
        });
        let run = rt.run(vec![a, b]).expect("ping-pong run");
        run.logs().to_vec()
    }

    #[test]
    fn persist_then_recover_round_trips_the_run() {
        let root = temp_root("roundtrip");
        let logs = ping_pong_logs(5);
        let store = persist_logs(&root, "pp", &logs).expect("persist");
        assert_eq!(store.generation(), 1);
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.process_count, 2);
        assert_eq!(rec.logs, logs);
        assert_eq!(rec.dropped_records, 0);
        assert_eq!(rec.torn_bytes, 0);
        let (_, direct) = reconstruct_from_logs(&logs).expect("direct");
        let (_, via_store) = materialize(&rec.logs).expect("via store");
        assert_eq!(direct.len(), via_store.len());
        for i in 0..direct.len() {
            use synctime_trace::MessageId;
            assert_eq!(direct.vector(MessageId(i)), via_store.vector(MessageId(i)));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn streaming_writer_matches_batch_persistence() {
        let root = temp_root("stream");
        let logs = ping_pong_logs(4);
        let (tx, writer) = spawn_writer(&root, "live", logs.len()).expect("spawn");
        // Deliver in deliberately ragged bursts (1, 2, 3, ... events) to
        // exercise the batched channel the runtime's sink buffer feeds.
        let mut burst = Vec::new();
        let mut burst_len = 1;
        for (process, log) in logs.iter().enumerate() {
            for (pseq, entry) in log.iter().enumerate() {
                burst.push(PersistEvent {
                    process,
                    pseq: pseq as u64,
                    entry: entry.clone(),
                });
                if burst.len() >= burst_len {
                    tx.send(std::mem::take(&mut burst)).expect("send");
                    burst_len += 1;
                }
            }
        }
        if !burst.is_empty() {
            tx.send(burst).expect("send tail");
        }
        drop(tx);
        let store = writer.finish().expect("finish");
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.logs, logs);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mid_run_truncation_recovers_a_consistent_prefix() {
        let root = temp_root("torn");
        let logs = ping_pong_logs(6);
        let store = persist_logs(&root, "torn", &logs).expect("persist");
        let snap = store.dir().join(crate::SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap).expect("read snapshot");
        // Cut the snapshot at every byte length; recovery must never
        // error and must always reconstruct successfully.
        for cut in (0..bytes.len()).step_by(7) {
            std::fs::write(&snap, &bytes[..cut]).expect("truncate");
            match read_trace_dir(store.dir()) {
                Ok(rec) => {
                    materialize(&rec.logs).expect("prefix reconstructs");
                }
                Err(StoreError::Corrupt(_)) => {
                    // Acceptable only while META itself is torn.
                }
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tail_reader_answers_identically_to_full_rereads() {
        use crate::{TraceStore, TraceTailReader};
        let root = temp_root("tailer");
        let logs = ping_pong_logs(8);
        // Write incrementally with a tiny compaction budget so the poll
        // sequence crosses several generation bumps, and check after every
        // flush that the tail reader's recovery equals a full re-read's.
        let mut store = TraceStore::create(&root, "live", logs.len())
            .expect("create")
            .with_snapshot_every(4);
        let mut reader = TraceTailReader::new(store.dir());
        let empty = reader.poll().expect("poll empty");
        assert_eq!(empty.records, 0);
        let mut flat: Vec<(u64, u64, LogEntry)> = Vec::new();
        for (process, log) in logs.iter().enumerate() {
            for (pseq, entry) in log.iter().enumerate() {
                flat.push((process as u64, pseq as u64, entry.clone()));
            }
        }
        for (i, (process, pseq, entry)) in flat.iter().enumerate() {
            store
                .append(record_from_log_entry(*process, *pseq, entry))
                .expect("append");
            if i % 3 == 0 {
                store.flush().expect("flush");
                let incremental = reader.poll().expect("incremental poll");
                let full = read_trace_dir(store.dir()).expect("full re-read");
                assert_eq!(incremental.logs, full.logs, "diverged after append {i}");
                assert_eq!(incremental.records, full.records);
                assert_eq!(incremental.generation, full.generation);
                assert_eq!(incremental.reconfigs, full.reconfigs);
            }
        }
        store.snapshot().expect("seal");
        let incremental = reader.poll().expect("final poll");
        let full = read_trace_dir(store.dir()).expect("final full read");
        assert_eq!(incremental.logs, full.logs);
        assert_eq!(incremental.logs, logs);
        assert!(store.generation() > 0, "compactions should have fired");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tail_reader_recovers_a_torn_tail_once_it_completes() {
        use crate::TraceTailReader;
        let root = temp_root("tailer-torn");
        let logs = ping_pong_logs(3);
        let store = persist_logs(&root, "torn", &logs).expect("persist");
        // Rewrite the log with a record torn in half; the reader must park
        // its offset before the torn record and pick it up whole later.
        let log_path = store.dir().join(crate::LOG_FILE);
        let full_bytes = {
            let mut out = std::fs::read(&log_path).expect("read log");
            let extra = record_from_log_entry(0, 99, &LogEntry::Internal);
            let mut framed = Vec::new();
            crate::record::encode_record(&mut framed, &extra);
            out.extend_from_slice(&framed);
            out
        };
        std::fs::write(&log_path, &full_bytes[..full_bytes.len() - 3]).expect("tear");
        let mut reader = TraceTailReader::new(store.dir());
        let torn = reader.poll().expect("poll torn");
        assert!(torn.torn_bytes > 0);
        std::fs::write(&log_path, &full_bytes).expect("complete");
        let healed = reader.poll().expect("poll healed");
        assert_eq!(healed.torn_bytes, 0);
        let full = read_trace_dir(store.dir()).expect("full read");
        assert_eq!(healed.logs, full.logs);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn multi_epoch_persist_materializes_the_latest_epoch() {
        use crate::ReconfigRecord;
        // Two epochs of the same 2-process workload: keys repeat across
        // epochs (each epoch's run restarts its counters), which is
        // exactly what the boundary cuts disambiguate.
        let root = temp_root("epochs");
        let epoch0 = ping_pong_logs(2);
        let epoch1 = ping_pong_logs(5);
        let cuts: Vec<u64> = epoch0.iter().map(|log| log.len() as u64).collect();
        let merged: Vec<Vec<LogEntry>> = epoch0
            .iter()
            .zip(&epoch1)
            .map(|(a, b)| a.iter().chain(b).cloned().collect())
            .collect();
        let boundary = ReconfigRecord {
            epoch: 1,
            cuts,
            ops: vec![(0, 0, 1)],
        };
        let store = persist_logs_with_reconfigs(&root, "churned", &merged, &[boundary.clone()])
            .expect("persist");
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.reconfigs, vec![boundary]);
        let (epoch, comp, stamps) = materialize_latest_epoch(&rec).expect("latest epoch");
        assert_eq!(epoch, 1);
        // The served segment is exactly epoch 1's run.
        let (ref_comp, ref_stamps) = reconstruct_from_logs(&epoch1).expect("reference");
        assert_eq!(comp.message_count(), ref_comp.message_count());
        for i in 0..ref_stamps.len() {
            use synctime_trace::MessageId;
            assert_eq!(stamps.vector(MessageId(i)), ref_stamps.vector(MessageId(i)));
        }
        // A trace with no boundary serves whole, as epoch 0.
        let plain = persist_logs(&root, "plain", &epoch0).expect("persist plain");
        let rec = read_trace_dir(plain.dir()).expect("recover plain");
        let (epoch, comp, _) = materialize_latest_epoch(&rec).expect("whole trace");
        assert_eq!(epoch, 0);
        assert_eq!(comp.message_count(), 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drained_channel_without_events_still_seals_the_store() {
        let root = temp_root("empty");
        let (tx, writer) = spawn_writer(&root, "empty", 3).expect("spawn");
        let (_unused_tx, _) = mpsc::channel::<Vec<PersistEvent>>();
        drop(tx);
        let store = writer.finish().expect("finish");
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.process_count, 3);
        assert_eq!(rec.records, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
