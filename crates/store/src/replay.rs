//! The bridges between the runtime's ingestion seam and the on-disk
//! store: converting [`LogEntry`]/[`PersistEvent`] values into records,
//! streaming a live run into a [`TraceStore`] on a background thread, and
//! materialising a recovered trace back into queryable timestamps.

use std::path::Path;
use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

use synctime_core::wire;
use synctime_core::MessageTimestamps;
use synctime_runtime::{reconstruct_from_logs, LogEntry, PersistEvent};
use synctime_trace::SyncComputation;

use crate::log::TraceStore;
use crate::record::StampRecord;
use crate::StoreError;

/// Encodes one runtime log entry as a store record at coordinate
/// `(process, pseq)`. The stamp is serialised with the same
/// `synctime_core::wire::encode_full` codec every clock backend already
/// speaks, so any `--clock` choice round-trips through the store.
pub fn record_from_log_entry(process: u64, pseq: u64, entry: &LogEntry) -> StampRecord {
    match entry {
        LogEntry::Sent { to, key, stamp } => StampRecord::Sent {
            process,
            pseq,
            peer: *to as u64,
            key: *key,
            stamp: wire::encode_full(stamp),
        },
        LogEntry::Received { from, key, stamp } => StampRecord::Received {
            process,
            pseq,
            peer: *from as u64,
            key: *key,
            stamp: wire::encode_full(stamp),
        },
        LogEntry::Internal => StampRecord::Internal { process, pseq },
    }
}

/// Encodes a live-ingestion event (as emitted through
/// `Runtime::with_log_sink`) as a store record.
pub fn record_from_event(event: &PersistEvent) -> StampRecord {
    record_from_log_entry(event.process as u64, event.pseq, &event.entry)
}

/// Persists already-collected per-process logs (e.g. a finished
/// [`RuntimeRun`](synctime_runtime::RuntimeRun)'s logs, or logs merged
/// from distributed node reports) into `<root>/<trace>`, sealing the
/// result with a snapshot so the log is compact and fsynced.
///
/// # Errors
///
/// [`StoreError::InvalidTraceName`] or [`StoreError::Io`] from the
/// underlying [`TraceStore`].
pub fn persist_logs(
    root: &Path,
    trace: &str,
    logs: &[Vec<LogEntry>],
) -> Result<TraceStore, StoreError> {
    let mut store = TraceStore::create(root, trace, logs.len())?.with_snapshot_every(0);
    for (process, log) in logs.iter().enumerate() {
        for (pseq, entry) in log.iter().enumerate() {
            store.append(record_from_log_entry(process as u64, pseq as u64, entry))?;
        }
    }
    store.snapshot()?;
    Ok(store)
}

/// Rebuilds the queryable trace from a recovered prefix family via the
/// same [`reconstruct_from_logs`] seam an in-memory run uses, so stored
/// and never-stored runs answer queries identically.
///
/// # Errors
///
/// [`StoreError::Replay`] when the recovered logs do not reassemble into
/// a synchronous computation (recovery's trimming rules make this
/// unreachable for stores written by this crate, but adversarial bytes
/// surface here as a typed error rather than a panic).
pub fn materialize(
    logs: &[Vec<LogEntry>],
) -> Result<(SyncComputation, MessageTimestamps), StoreError> {
    reconstruct_from_logs(logs).map_err(|e| StoreError::Replay(e.to_string()))
}

/// The handle to a background ingestion writer spawned by
/// [`spawn_writer`]. Dropping the event sender (and every clone the
/// runtime holds) ends the stream; [`StoreWriter::finish`] then joins the
/// thread and returns the sealed store.
#[derive(Debug)]
pub struct StoreWriter {
    handle: JoinHandle<Result<TraceStore, StoreError>>,
}

impl StoreWriter {
    /// Waits for the ingestion thread to drain the channel, seal the
    /// store with a final snapshot + fsync, and hand the store back.
    /// Callers must drop every [`Sender`] clone first (the runtime's
    /// `with_log_sink` clone included) or this blocks forever.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] the writer thread hit while appending or
    /// sealing.
    pub fn finish(self) -> Result<TraceStore, StoreError> {
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(StoreError::Io("store writer thread panicked".to_string())),
        }
    }
}

/// Records appended between writer-thread flushes before a flush is
/// forced even with the channel still busy. Bounds how far a polling
/// reader can lag a fast producer without costing one `write(2)` per
/// record when the writer outpaces the run (the common case).
const FLUSH_EVERY_RECORDS: usize = 1024;

/// How long the writer waits for the next event before flushing whatever
/// is buffered — the staleness bound a concurrently polling reader sees
/// during a quiet stretch.
const FLUSH_IDLE: std::time::Duration = std::time::Duration::from_millis(25);

/// Spawns the ingestion thread: event bursts sent on the returned
/// channel's [`Sender`] (wire it via `Runtime::with_log_sink`, which
/// ships one `Vec` per per-process burst) are appended to
/// `<root>/<trace>` as they arrive. Flushes are batched — every
/// [`FLUSH_EVERY_RECORDS`] appends under load, or after [`FLUSH_IDLE`]
/// without a new burst — so a concurrently polling reader observes
/// growth promptly while a fast run never pays one syscall per record.
/// The store snapshots/compacts automatically (geometric trigger seeded
/// at [`DEFAULT_SNAPSHOT_EVERY`](crate::DEFAULT_SNAPSHOT_EVERY)).
///
/// # Errors
///
/// [`StoreError::InvalidTraceName`] or [`StoreError::Io`] when the store
/// cannot be created (before any thread is spawned).
pub fn spawn_writer(
    root: &Path,
    trace: &str,
    process_count: usize,
) -> Result<(Sender<Vec<PersistEvent>>, StoreWriter), StoreError> {
    use std::sync::mpsc::RecvTimeoutError;
    let mut store = TraceStore::create(root, trace, process_count)?;
    let (tx, rx): (Sender<Vec<PersistEvent>>, Receiver<Vec<PersistEvent>>) =
        std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || -> Result<TraceStore, StoreError> {
        let mut unflushed = 0usize;
        loop {
            match rx.recv_timeout(FLUSH_IDLE) {
                Ok(burst) => {
                    for event in &burst {
                        store.append(record_from_event(event))?;
                        unflushed += 1;
                    }
                    // Drain whatever else is queued before considering a
                    // flush; under load this amortises the syscall over
                    // every pending burst.
                    while let Ok(burst) = rx.try_recv() {
                        for event in &burst {
                            store.append(record_from_event(event))?;
                            unflushed += 1;
                        }
                    }
                    if unflushed >= FLUSH_EVERY_RECORDS {
                        store.flush()?;
                        unflushed = 0;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if unflushed > 0 {
                        store.flush()?;
                        unflushed = 0;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        store.snapshot()?;
        store.sync()?;
        Ok(store)
    });
    Ok((tx, StoreWriter { handle }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_trace_dir;
    use std::sync::mpsc;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synctime-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp root");
        dir
    }

    fn ping_pong_logs(rounds: u64) -> Vec<Vec<LogEntry>> {
        use synctime_graph::{decompose, topology};
        use synctime_runtime::{Behavior, Runtime};
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let a: Behavior = Box::new(move |ctx| {
            for i in 0..rounds {
                ctx.send(1, i)?;
                ctx.receive_from(1)?;
            }
            Ok(())
        });
        let b: Behavior = Box::new(move |ctx| {
            for _ in 0..rounds {
                let (x, _) = ctx.receive_from(0)?;
                ctx.internal();
                ctx.send(0, x)?;
            }
            Ok(())
        });
        let run = rt.run(vec![a, b]).expect("ping-pong run");
        run.logs().to_vec()
    }

    #[test]
    fn persist_then_recover_round_trips_the_run() {
        let root = temp_root("roundtrip");
        let logs = ping_pong_logs(5);
        let store = persist_logs(&root, "pp", &logs).expect("persist");
        assert_eq!(store.generation(), 1);
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.process_count, 2);
        assert_eq!(rec.logs, logs);
        assert_eq!(rec.dropped_records, 0);
        assert_eq!(rec.torn_bytes, 0);
        let (_, direct) = reconstruct_from_logs(&logs).expect("direct");
        let (_, via_store) = materialize(&rec.logs).expect("via store");
        assert_eq!(direct.len(), via_store.len());
        for i in 0..direct.len() {
            use synctime_trace::MessageId;
            assert_eq!(direct.vector(MessageId(i)), via_store.vector(MessageId(i)));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn streaming_writer_matches_batch_persistence() {
        let root = temp_root("stream");
        let logs = ping_pong_logs(4);
        let (tx, writer) = spawn_writer(&root, "live", logs.len()).expect("spawn");
        // Deliver in deliberately ragged bursts (1, 2, 3, ... events) to
        // exercise the batched channel the runtime's sink buffer feeds.
        let mut burst = Vec::new();
        let mut burst_len = 1;
        for (process, log) in logs.iter().enumerate() {
            for (pseq, entry) in log.iter().enumerate() {
                burst.push(PersistEvent {
                    process,
                    pseq: pseq as u64,
                    entry: entry.clone(),
                });
                if burst.len() >= burst_len {
                    tx.send(std::mem::take(&mut burst)).expect("send");
                    burst_len += 1;
                }
            }
        }
        if !burst.is_empty() {
            tx.send(burst).expect("send tail");
        }
        drop(tx);
        let store = writer.finish().expect("finish");
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.logs, logs);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mid_run_truncation_recovers_a_consistent_prefix() {
        let root = temp_root("torn");
        let logs = ping_pong_logs(6);
        let store = persist_logs(&root, "torn", &logs).expect("persist");
        let snap = store.dir().join(crate::SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap).expect("read snapshot");
        // Cut the snapshot at every byte length; recovery must never
        // error and must always reconstruct successfully.
        for cut in (0..bytes.len()).step_by(7) {
            std::fs::write(&snap, &bytes[..cut]).expect("truncate");
            match read_trace_dir(store.dir()) {
                Ok(rec) => {
                    materialize(&rec.logs).expect("prefix reconstructs");
                }
                Err(StoreError::Corrupt(_)) => {
                    // Acceptable only while META itself is torn.
                }
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drained_channel_without_events_still_seals_the_store() {
        let root = temp_root("empty");
        let (tx, writer) = spawn_writer(&root, "empty", 3).expect("spawn");
        let (_unused_tx, _) = mpsc::channel::<Vec<PersistEvent>>();
        drop(tx);
        let store = writer.finish().expect("finish");
        let rec = read_trace_dir(store.dir()).expect("recover");
        assert_eq!(rec.process_count, 3);
        assert_eq!(rec.records, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
