//! Durable ingestion for stamped traces: an append-only, length-prefixed,
//! CRC-checked log of execution-log records, with periodic snapshots that
//! compact the log and crash recovery by replaying snapshot + tail.
//!
//! The paper's point is that timestamps are *small*; this crate's point is
//! that small timestamps are *cheap to keep*. What is persisted is not the
//! reconstructed trace (whose canonical message numbering is only stable
//! once the run has quiesced) but the raw material the runtime logs anyway:
//! one record per [`LogEntry`], keyed by `(process, pseq)` — which process
//! logged it and at which position of that process's log. Those
//! coordinates make replay **order-independent** (records may arrive
//! interleaved, duplicated across a snapshot/log overlap, or truncated by
//! a crash) and **idempotent** (replay deduplicates by coordinate), and
//! the replayed logs feed the exact same
//! [`reconstruct_from_logs`](synctime_runtime::reconstruct_from_logs)
//! seam an in-memory run uses — so a recovered trace answers precedence
//! queries byte-identically to one that never touched disk.
//!
//! Layout on disk, per trace, under a store root directory:
//!
//! ```text
//! <root>/<trace>/snapshot.st   all records up to the last compaction
//! <root>/<trace>/log.st        records appended since
//! ```
//!
//! Both files are a META record followed by entry records (see
//! [`record`] for the byte format, priced byte-for-byte by
//! `synctime_core::wire`'s `store_*_record_bytes` helpers). A snapshot is
//! written to a temp file, fsynced, and atomically renamed before the log
//! is truncated; recovery tolerates every crash point in that sequence
//! plus a torn final record in either file, always materialising the
//! largest causally consistent prefix of the run (see [`read_trace_dir`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod log;
pub mod record;
mod replay;

use std::fmt;

pub use crc::crc32;
pub use log::{
    read_trace_dir, trace_dirs, validate_trace_name, RecoveredTrace, TraceStore, TraceTailReader,
    DEFAULT_SNAPSHOT_EVERY, LOG_FILE, SNAPSHOT_FILE,
};
pub use record::{FileScan, Meta, ReconfigRecord, StampRecord, TailScan, FORMAT_VERSION};
pub use replay::{
    materialize, materialize_latest_epoch, persist_logs, persist_logs_with_reconfigs,
    record_from_event, record_from_log_entry, spawn_writer, StoreWriter,
};

// Re-exported so store consumers can name the ingestion seam without
// depending on `synctime-runtime` directly.
pub use synctime_runtime::{LogEntry, PersistEvent};

/// Why a `synctime-store` operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An OS-level filesystem failure (create, write, rename, fsync).
    Io(String),
    /// The store's bytes violate the record format beyond what torn-tail
    /// recovery tolerates: no readable META record, a format version this
    /// build does not speak, or files that disagree about the run's shape.
    Corrupt(String),
    /// The trace name cannot be a store directory (empty, path
    /// separators, leading dot, or over the length bound).
    InvalidTraceName(String),
    /// The recovered records do not reassemble into a synchronous
    /// computation (carries the reconstruction diagnostic).
    Replay(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(detail) => write!(f, "store i/o failure: {detail}"),
            StoreError::Corrupt(detail) => write!(f, "store corrupt: {detail}"),
            StoreError::InvalidTraceName(detail) => {
                write!(f, "invalid trace name: {detail}")
            }
            StoreError::Replay(detail) => write!(f, "store replay failed: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
