//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven and std-only.
//!
//! Every store record's payload is checksummed so recovery can tell a
//! torn or bit-rotted record from a valid one without trusting the length
//! prefix alone.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

static TABLE: [u32; 256] = table();

/// CRC-32 (IEEE) of `bytes` — the checksum carried in every store
/// record's header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"synchronous computation");
        let mut bytes = b"synchronous computation".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 1;
            assert_ne!(crc32(&bytes), base, "flip at byte {i} undetected");
            bytes[i] ^= 1;
        }
    }
}
