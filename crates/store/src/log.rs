//! The trace store writer ([`TraceStore`]) and directory-level recovery
//! ([`read_trace_dir`]).
//!
//! ## Snapshot / compaction lifecycle
//!
//! A [`TraceStore`] appends records to `log.st`. Once the log tail has
//! both reached `snapshot_every` appends *and* grown to rival the
//! snapshotted prefix (a geometric trigger, so total compaction I/O
//! stays a constant factor of the bytes ingested — a fixed cadence
//! would rewrite the whole trace `O(n / cadence)` times), and on
//! demand, it compacts:
//!
//! 1. write *all* records to `snapshot.tmp` under the next generation,
//!    flush, fsync;
//! 2. atomically rename `snapshot.tmp` → `snapshot.st` and fsync the
//!    directory;
//! 3. recreate `log.st` empty (a lone META record of the new generation).
//!
//! A crash at any point leaves a recoverable store: before the rename the
//! old snapshot + old log are intact; between the rename and the log
//! truncation the new snapshot *contains* every record the stale log
//! repeats, and recovery's coordinate-level deduplication makes the
//! overlap harmless.
//!
//! ## Recovery invariants
//!
//! [`read_trace_dir`] concatenates both files' valid record prefixes
//! (torn tails dropped by the scan layer), then:
//!
//! 1. **dedup** — one record per `(process, pseq)` coordinate, first
//!    occurrence wins;
//! 2. **dense prefix** — each process keeps its longest gap-free `pseq`
//!    prefix (a gap means later records of that process are unanchored);
//! 3. **matched keys** — iteratively truncate each process's log at the
//!    first entry whose rendezvous partner record is missing, until
//!    stable.
//!
//! The result is the largest causally consistent prefix family of the
//! original run: local orders are prefixes, every kept send has its kept
//! receive, and [`reconstruct_from_logs`] rebuilds exactly the trace an
//! uninterrupted in-memory run would have produced from the same prefix.
//! A quiesced, fully flushed store recovers the *whole* run.
//!
//! [`reconstruct_from_logs`]: synctime_runtime::reconstruct_from_logs

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use synctime_core::wire;
use synctime_runtime::LogEntry;
use synctime_trace::ProcessId;

use crate::record::{
    encode_meta, encode_reconfig, encode_record, scan_file, scan_meta, scan_tail, Meta,
    ReconfigRecord, StampRecord, FORMAT_VERSION,
};
use crate::StoreError;

/// File holding all records up to the last compaction.
pub const SNAPSHOT_FILE: &str = "snapshot.st";

/// File holding records appended since the last compaction.
pub const LOG_FILE: &str = "log.st";

/// The staging name a snapshot is written under before its atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Default appends between automatic compactions.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 4096;

/// Bound on a trace name in bytes (it becomes a directory name).
const MAX_TRACE_NAME: usize = 255;

/// Checks that `name` is safe to use as a store subdirectory: non-empty,
/// at most 255 bytes, no path separators or NUL, and no leading dot.
///
/// # Errors
///
/// [`StoreError::InvalidTraceName`] describing the violation.
pub fn validate_trace_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty() {
        return Err(StoreError::InvalidTraceName(
            "trace name is empty".to_string(),
        ));
    }
    if name.len() > MAX_TRACE_NAME {
        return Err(StoreError::InvalidTraceName(format!(
            "trace name of {} bytes exceeds the {MAX_TRACE_NAME}-byte bound",
            name.len()
        )));
    }
    if name.starts_with('.') {
        return Err(StoreError::InvalidTraceName(format!(
            "trace name {name:?} starts with a dot"
        )));
    }
    if name.chars().any(|c| c == '/' || c == '\\' || c == '\0') {
        return Err(StoreError::InvalidTraceName(format!(
            "trace name {name:?} contains a path separator"
        )));
    }
    Ok(())
}

/// Lists the trace subdirectories of a store root as `(name, path)`
/// pairs, sorted by name. Entries that are not directories or whose names
/// would not validate are skipped, not errors — a store root may hold
/// unrelated files.
///
/// # Errors
///
/// [`StoreError::Io`] when the root itself cannot be read.
pub fn trace_dirs(root: &Path) -> Result<Vec<(String, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if validate_trace_name(name).is_ok() {
            out.push((name.to_string(), path));
        }
    }
    out.sort();
    Ok(out)
}

/// Flushes directory metadata (the rename durability point on POSIX).
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// The append side of one trace's durable log. See the module docs for
/// the snapshot/compaction lifecycle.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    log: BufWriter<File>,
    process_count: usize,
    generation: u64,
    /// Every record appended so far, already framed and checksummed —
    /// exactly the bytes a snapshot writes, so compaction is a single
    /// sequential write instead of a re-encode of the whole history.
    encoded: Vec<u8>,
    /// Records appended so far (the geometric trigger's unit).
    records: usize,
    since_snapshot: usize,
    snapshot_every: usize,
    scratch: Vec<u8>,
}

impl TraceStore {
    /// Creates (or resets) the store for `trace` under `root`, writing a
    /// fresh generation-0 log. Any previous contents of the trace
    /// directory are superseded.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTraceName`] for an unusable name,
    /// [`StoreError::Io`] on filesystem failures.
    pub fn create(root: &Path, trace: &str, process_count: usize) -> Result<Self, StoreError> {
        validate_trace_name(trace)?;
        let dir = root.join(trace);
        fs::create_dir_all(&dir)?;
        for stale in [SNAPSHOT_FILE, SNAPSHOT_TMP] {
            let path = dir.join(stale);
            if path.exists() {
                fs::remove_file(&path)?;
            }
        }
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: process_count as u64,
            generation: 0,
        };
        let mut scratch = Vec::new();
        encode_meta(&mut scratch, &meta);
        let mut log = BufWriter::new(File::create(dir.join(LOG_FILE))?);
        log.write_all(&scratch)?;
        log.flush()?;
        log.get_ref().sync_all()?;
        Ok(TraceStore {
            dir,
            log,
            process_count,
            generation: 0,
            encoded: Vec::new(),
            records: 0,
            since_snapshot: 0,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            scratch,
        })
    }

    /// Sets how many appends trigger an automatic compaction (0 disables
    /// automatic snapshots; [`TraceStore::snapshot`] still works).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Appends one record to the log (buffered — call
    /// [`TraceStore::flush`] to make it visible to readers, or
    /// [`TraceStore::sync`] to make it durable). Triggers a compaction
    /// when the configured append budget is reached.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write or compaction failures.
    pub fn append(&mut self, rec: StampRecord) -> Result<(), StoreError> {
        self.scratch.clear();
        encode_record(&mut self.scratch, &rec);
        self.append_scratch()
    }

    /// Writes the framed record staged in `scratch` and runs the
    /// compaction trigger — the tail shared by every append flavor.
    fn append_scratch(&mut self) -> Result<(), StoreError> {
        self.log.write_all(&self.scratch)?;
        self.encoded.extend_from_slice(&self.scratch);
        self.records += 1;
        self.since_snapshot += 1;
        // Geometric trigger: compact only once the un-snapshotted tail is
        // at least `snapshot_every` records AND at least as large as the
        // snapshotted prefix, so a long run rewrites each record O(1)
        // times in total rather than once per cadence window.
        let snapshotted = self.records - self.since_snapshot;
        if self.snapshot_every != 0
            && self.since_snapshot >= self.snapshot_every
            && self.since_snapshot >= snapshotted
        {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Appends one RECONFIG epoch-boundary record. Counts toward the
    /// compaction trigger like any other record and rides the same
    /// snapshot byte stream, so a boundary survives compaction alongside
    /// the entries it segments.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write or compaction failures.
    pub fn append_reconfig(&mut self, rec: &ReconfigRecord) -> Result<(), StoreError> {
        self.scratch.clear();
        encode_reconfig(&mut self.scratch, rec);
        self.append_scratch()
    }

    /// Pushes buffered appends to the OS (readers polling the file see
    /// them after this; durability additionally needs
    /// [`TraceStore::sync`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failures.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.log.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs the log: everything appended so far survives a
    /// crash (modulo the final record tearing, which recovery tolerates).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on flush or fsync failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.log.flush()?;
        self.log.get_ref().sync_all()?;
        Ok(())
    }

    /// Compacts now: writes every record to a fresh snapshot (staged and
    /// atomically renamed), then truncates the log under the next
    /// generation. See the module docs for the crash-safety argument.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure; the store is still
    /// recoverable afterwards (the sequence is crash-safe at every step).
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        let generation = self.generation + 1;
        let meta = Meta {
            version: FORMAT_VERSION,
            process_count: self.process_count as u64,
            generation,
        };
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            // Record bytes were framed and checksummed at append time;
            // the snapshot is META followed by that byte stream verbatim.
            let mut snap = BufWriter::new(File::create(&tmp)?);
            self.scratch.clear();
            encode_meta(&mut self.scratch, &meta);
            snap.write_all(&self.scratch)?;
            snap.write_all(&self.encoded)?;
            snap.flush()?;
            snap.get_ref().sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        sync_dir(&self.dir)?;
        // Drain the old writer's buffer before truncating, so its drop
        // cannot flush stale records into the fresh log.
        self.log.flush()?;
        let mut log = BufWriter::new(File::create(self.dir.join(LOG_FILE))?);
        self.scratch.clear();
        encode_meta(&mut self.scratch, &meta);
        log.write_all(&self.scratch)?;
        log.flush()?;
        log.get_ref().sync_all()?;
        self.log = log;
        self.generation = generation;
        self.since_snapshot = 0;
        Ok(())
    }

    /// How many records have been appended to this store.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The current snapshot generation (0 until the first compaction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The run's process count, as written into every META record.
    pub fn process_count(&self) -> usize {
        self.process_count
    }

    /// The trace's directory (`<root>/<trace>`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// What recovery reassembled from one trace directory.
#[derive(Debug, Clone)]
pub struct RecoveredTrace {
    /// The run's process count (from the META records).
    pub process_count: usize,
    /// The highest snapshot generation seen.
    pub generation: u64,
    /// The recovered per-process logs: the largest causally consistent
    /// prefix family of the persisted run, ready for
    /// [`reconstruct_from_logs`](synctime_runtime::reconstruct_from_logs).
    pub logs: Vec<Vec<LogEntry>>,
    /// Entry records surviving into `logs`.
    pub records: usize,
    /// Bytes refused by the torn-tail scan, across both files.
    pub torn_bytes: usize,
    /// Records parsed but trimmed by dedup, gap, or matching rules.
    pub dropped_records: usize,
    /// Epoch boundaries whose cuts are fully covered by the recovered
    /// logs, sorted by epoch (first record of a duplicated epoch wins). A
    /// boundary that names more processes than the run has, or whose cut
    /// lies beyond a recovered log's end (the boundary outran the torn
    /// tail), is dropped — replay can only segment what it holds.
    pub reconfigs: Vec<ReconfigRecord>,
}

/// Converts a surviving record into the [`LogEntry`] replay feeds to
/// reconstruction. Stamp bytes were validated at scan time, so a decode
/// failure here means the scan let something through — surfaced as a
/// typed corruption error, never a panic.
fn entry_of(rec: &StampRecord) -> Result<LogEntry, StoreError> {
    let stamp_of = |bytes: &[u8]| {
        wire::decode_full(bytes).ok_or_else(|| {
            StoreError::Corrupt("stamp bytes failed to decode after a valid scan".to_string())
        })
    };
    Ok(match rec {
        StampRecord::Sent {
            peer, key, stamp, ..
        } => LogEntry::Sent {
            to: *peer as ProcessId,
            key: *key,
            stamp: stamp_of(stamp)?,
        },
        StampRecord::Received {
            peer, key, stamp, ..
        } => LogEntry::Received {
            from: *peer as ProcessId,
            key: *key,
            stamp: stamp_of(stamp)?,
        },
        StampRecord::Internal { .. } => LogEntry::Internal,
    })
}

/// Recovers one trace directory into per-process logs. See the module
/// docs for the recovery invariants; this function is the crash-recovery
/// entry point (`serve-query --store-dir` calls it per trace, and again
/// on every poll while a trace grows).
///
/// # Errors
///
/// [`StoreError::Io`] when the directory cannot be read,
/// [`StoreError::Corrupt`] when no readable META record exists, the
/// format version is unknown, or the files disagree on the process count.
/// Torn tails and partial records are *not* errors — they shorten the
/// recovered prefix instead.
pub fn read_trace_dir(dir: &Path) -> Result<RecoveredTrace, StoreError> {
    let read_scan = |name: &str| -> Result<Option<crate::record::FileScan>, StoreError> {
        let path = dir.join(name);
        if !path.exists() {
            return Ok(None);
        }
        Ok(Some(scan_file(&fs::read(&path)?)))
    };
    let snap = read_scan(SNAPSHOT_FILE)?;
    let log = read_scan(LOG_FILE)?;
    let mut torn_bytes = 0usize;
    let mut metas: Vec<Meta> = Vec::new();
    let mut all: Vec<StampRecord> = Vec::new();
    let mut reconfigs: Vec<ReconfigRecord> = Vec::new();
    for scan in [snap, log].into_iter().flatten() {
        torn_bytes += scan.torn_bytes;
        if let Some(meta) = scan.meta {
            metas.push(meta);
            all.extend(scan.records);
            reconfigs.extend(scan.reconfigs);
        }
    }
    assemble(dir, &metas, all, reconfigs, torn_bytes)
}

/// The pure half of recovery: applies the dedup / dense-prefix /
/// matched-keys invariants (module docs) to scanned records, however they
/// were gathered — a full directory read ([`read_trace_dir`]) or a
/// tailing reader's accumulated head + tails ([`TraceTailReader`]). Both
/// paths feeding identical record sequences through this function is what
/// makes incremental tailing answer-equivalent to full re-reads.
fn assemble(
    dir: &Path,
    metas: &[Meta],
    all: Vec<StampRecord>,
    reconfigs: Vec<ReconfigRecord>,
    torn_bytes: usize,
) -> Result<RecoveredTrace, StoreError> {
    let Some(first) = metas.first().copied() else {
        return Err(StoreError::Corrupt(format!(
            "no readable store metadata in {}",
            dir.display()
        )));
    };
    if first.version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "store format version {} (this build reads {FORMAT_VERSION})",
            first.version
        )));
    }
    if metas.iter().any(|m| m.process_count != first.process_count) {
        return Err(StoreError::Corrupt(
            "snapshot and log disagree on the process count".to_string(),
        ));
    }
    let process_count = first.process_count as usize;
    let generation = metas.iter().map(|m| m.generation).max().unwrap_or(0);

    // Dedup by (process, pseq), first occurrence wins (snapshot records
    // precede log records, so a stale-log overlap resolves to the
    // snapshot's copy — which is byte-identical anyway).
    let parsed = all.len();
    let mut per: Vec<BTreeMap<u64, StampRecord>> =
        (0..process_count).map(|_| BTreeMap::new()).collect();
    for rec in all {
        let Some(map) = per.get_mut(rec.process() as usize) else {
            continue; // record names a process beyond the META's count
        };
        map.entry(rec.pseq()).or_insert(rec);
    }

    // Longest dense pseq prefix per process.
    let mut logs: Vec<Vec<LogEntry>> = Vec::with_capacity(process_count);
    for map in &per {
        let mut log = Vec::with_capacity(map.len());
        for (i, (&pseq, rec)) in map.iter().enumerate() {
            if pseq != i as u64 {
                break;
            }
            log.push(entry_of(rec)?);
        }
        logs.push(log);
    }

    match_keys_fixpoint(&mut logs);

    // Epoch boundaries: sort by epoch (stable, so the first-written record
    // of a duplicated epoch wins after dedup), then keep only boundaries
    // the recovered logs fully cover.
    let mut boundaries = reconfigs;
    boundaries.sort_by_key(|r| r.epoch);
    boundaries.dedup_by_key(|r| r.epoch);
    boundaries.retain(|r| {
        r.cuts.len() == process_count
            && r.cuts
                .iter()
                .zip(&logs)
                .all(|(&cut, log)| cut as usize <= log.len())
    });

    let records = logs.iter().map(Vec::len).sum();
    Ok(RecoveredTrace {
        process_count,
        generation,
        logs,
        records,
        torn_bytes,
        dropped_records: parsed - records,
        reconfigs: boundaries,
    })
}

/// Fixpoint: truncate each log at its first entry whose rendezvous
/// partner is missing, until no truncation happens. Terminates because
/// every round that changes anything strictly shrinks the total. Shared
/// by whole-trace recovery and per-epoch segment materialisation
/// ([`materialize_latest_epoch`](crate::materialize_latest_epoch)), which
/// must re-run it because message keys are only unique within an epoch.
pub(crate) fn match_keys_fixpoint(logs: &mut [Vec<LogEntry>]) {
    loop {
        let mut sent: BTreeMap<u64, usize> = BTreeMap::new();
        let mut received: BTreeMap<u64, usize> = BTreeMap::new();
        for log in logs.iter() {
            for entry in log {
                match entry {
                    LogEntry::Sent { key, .. } => *sent.entry(*key).or_default() += 1,
                    LogEntry::Received { key, .. } => *received.entry(*key).or_default() += 1,
                    LogEntry::Internal => {}
                }
            }
        }
        let mut changed = false;
        for log in logs.iter_mut() {
            let cut = log.iter().position(|entry| match entry {
                LogEntry::Sent { key, .. } => received.get(key).copied().unwrap_or(0) == 0,
                LogEntry::Received { key, .. } => sent.get(key).copied().unwrap_or(0) == 0,
                LogEntry::Internal => false,
            });
            if let Some(cut) = cut {
                log.truncate(cut);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Upper bound on a META record's framed size: 8-byte frame, 1-byte tag,
/// three varints of at most 10 bytes each. Reading this much from a
/// file's head always captures the whole META.
const META_HEAD_BYTES: usize = 8 + 1 + 3 * 10;

/// An incremental reader for a growing trace directory.
///
/// [`read_trace_dir`] re-reads and re-scans both files on every call —
/// fine for one-shot recovery, quadratic for a tailer polling a live
/// trace. This reader remembers the log's scanned byte offset and, while
/// the generation is unchanged, recovers only the appended tail
/// ([`scan_tail`]); a generation bump (compaction) or a shrunk log falls
/// back to one full re-read. Either way the accumulated record sequence
/// fed to [`assemble`] is byte-for-byte the sequence a fresh
/// [`read_trace_dir`] would scan, so every poll's answer is identical to
/// a full re-read's (asserted by this crate's tests).
#[derive(Debug)]
pub struct TraceTailReader {
    dir: PathBuf,
    /// The log generation the accumulated state belongs to; `None` until
    /// the first successful read.
    generation: Option<u64>,
    /// Bytes of `log.st` scanned into the accumulated records (META
    /// included). A torn final record stays beyond this offset and is
    /// re-tried on the next poll, once its bytes complete.
    log_offset: usize,
    metas: Vec<Meta>,
    records: Vec<StampRecord>,
    reconfigs: Vec<ReconfigRecord>,
    /// Torn bytes of the snapshot file (the log's torn tail is recomputed
    /// per poll — it may still complete).
    snap_torn: usize,
}

impl TraceTailReader {
    /// A reader for `dir`, holding nothing yet; the first [`poll`]
    /// performs a full read.
    ///
    /// [`poll`]: TraceTailReader::poll
    pub fn new(dir: &Path) -> Self {
        TraceTailReader {
            dir: dir.to_path_buf(),
            generation: None,
            log_offset: 0,
            metas: Vec::new(),
            records: Vec::new(),
            reconfigs: Vec::new(),
            snap_torn: 0,
        }
    }

    /// Drops all accumulated state so the next poll re-reads everything.
    fn reset(&mut self) {
        self.generation = None;
        self.log_offset = 0;
        self.metas.clear();
        self.records.clear();
        self.reconfigs.clear();
        self.snap_torn = 0;
    }

    /// Re-reads snapshot and log in full, replacing the accumulated
    /// state — the cold path (first poll, compaction, or shrunk log).
    /// Returns the log's torn-tail byte count as of this read (transient:
    /// those bytes may complete by the next poll, so they are not cached).
    fn full_read(&mut self) -> Result<usize, StoreError> {
        self.reset();
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let scan = scan_file(&fs::read(&snap_path)?);
            self.snap_torn = scan.torn_bytes;
            if let Some(meta) = scan.meta {
                self.metas.push(meta);
                self.records.extend(scan.records);
                self.reconfigs.extend(scan.reconfigs);
            }
        }
        let mut log_torn = 0usize;
        let log_path = self.dir.join(LOG_FILE);
        if log_path.exists() {
            let bytes = fs::read(&log_path)?;
            let scan = scan_file(&bytes);
            if let Some(meta) = scan.meta {
                self.generation = Some(meta.generation);
                self.log_offset = bytes.len() - scan.torn_bytes;
                log_torn = scan.torn_bytes;
                self.metas.push(meta);
                self.records.extend(scan.records);
                self.reconfigs.extend(scan.reconfigs);
            }
        }
        Ok(log_torn)
    }

    /// Recovers the trace as of now: a full read on the first call or
    /// after a compaction, an append-tail read otherwise. The result is
    /// always identical to what [`read_trace_dir`] would return at this
    /// instant.
    ///
    /// # Errors
    ///
    /// Exactly [`read_trace_dir`]'s errors: [`StoreError::Io`] when a
    /// file cannot be read, [`StoreError::Corrupt`] when no META is
    /// readable or the files disagree. The accumulated state survives an
    /// error and the next poll retries.
    pub fn poll(&mut self) -> Result<RecoveredTrace, StoreError> {
        let log_path = self.dir.join(LOG_FILE);
        let head = if log_path.exists() {
            let mut head = vec![0u8; META_HEAD_BYTES];
            let n = read_head(&log_path, &mut head)?;
            head.truncate(n);
            scan_meta(&head)
        } else {
            None
        };
        match (head, self.generation) {
            // Warm path: same generation — only the appended tail is new.
            (Some((meta, _)), Some(generation)) if meta.generation == generation => {
                let bytes = fs::read(&log_path)?;
                let log_torn = if bytes.len() < self.log_offset {
                    // Shrunk without a generation bump: not a compaction
                    // the protocol produces, but never serve stale state.
                    self.full_read()?
                } else {
                    let tail = scan_tail(&bytes[self.log_offset..]);
                    self.records.extend(tail.records);
                    self.reconfigs.extend(tail.reconfigs);
                    self.log_offset += tail.consumed;
                    bytes.len() - self.log_offset
                };
                self.assemble_current(log_torn)
            }
            // Cold path: first poll, a compaction's generation bump, or a
            // log whose META is unreadable (mid-recreate) — re-read all.
            _ => {
                let log_torn = self.full_read()?;
                self.assemble_current(log_torn)
            }
        }
    }

    /// Runs the shared recovery invariants over the accumulated records.
    fn assemble_current(&self, log_torn: usize) -> Result<RecoveredTrace, StoreError> {
        assemble(
            &self.dir,
            &self.metas,
            self.records.clone(),
            self.reconfigs.clone(),
            self.snap_torn + log_torn,
        )
    }
}

/// Reads up to `buf.len()` bytes from the start of `path`, returning how
/// many were read (short for a file smaller than the buffer).
fn read_head(path: &Path, buf: &mut [u8]) -> Result<usize, StoreError> {
    use std::io::Read;
    let mut file = File::open(path)?;
    let mut filled = 0usize;
    loop {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 || filled + n == buf.len() {
            return Ok(filled + n);
        }
        filled += n;
    }
}
