//! The structured application classes the paper's introduction motivates:
//! synchronous-RPC client–server systems, tree-structured computations, and
//! other classic synchronous patterns. Each scenario returns its topology
//! together with the computation, so callers can decompose the former and
//! stamp the latter.

use rand::Rng;
use synctime_graph::{topology, Graph, NodeId};
use synctime_trace::{Builder, SyncComputation};

/// A workload plus the communication topology it runs over.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The communication topology.
    pub topology: Graph,
    /// The computation.
    pub computation: SyncComputation,
    /// A short human-readable label.
    pub name: String,
}

/// Client–server synchronous RPC: `rounds` random calls, each a request
/// message from a client to a server followed by the reply message back.
/// Clients only ever talk to servers (Section 3.3's motivating example:
/// the decomposition is one star per server, so timestamps have `servers`
/// components however many clients join).
///
/// # Panics
///
/// Panics if `servers == 0` or `clients == 0`.
pub fn client_server_rpc<R: Rng + ?Sized>(
    servers: usize,
    clients: usize,
    rounds: usize,
    rng: &mut R,
) -> Scenario {
    let topo = topology::client_server(servers, clients);
    let mut b = Builder::with_topology(&topo);
    for _ in 0..rounds {
        let client = servers + rng.gen_range(0..clients);
        let server = rng.gen_range(0..servers);
        b.message(client, server)
            .expect("client-server channel exists");
        b.internal(server).expect("server computes the response");
        b.message(server, client).expect("reply channel exists");
    }
    Scenario {
        topology: topo,
        computation: b.build(),
        name: format!("client_server_rpc(s={servers}, c={clients}, rounds={rounds})"),
    }
}

/// Broadcast down a tree from `root` (parents message children in BFS
/// order), then convergecast back up (children reply in reverse order).
/// This is the Figure 4 shape: tree topologies decompose into a handful of
/// stars however many processes they have.
///
/// # Panics
///
/// Panics if `tree` is not a connected acyclic graph or `root` is out of
/// range.
pub fn tree_broadcast_convergecast(tree: &Graph, root: NodeId) -> Scenario {
    assert!(
        tree.is_acyclic() && tree.is_connected(),
        "need a connected tree"
    );
    assert!(root < tree.node_count(), "root out of range");
    let mut b = Builder::with_topology(tree);
    // BFS to discover parent-child edges.
    let mut parent = vec![usize::MAX; tree.node_count()];
    let mut bfs_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut queue = std::collections::VecDeque::from([root]);
    let mut seen = vec![false; tree.node_count()];
    seen[root] = true;
    while let Some(v) = queue.pop_front() {
        for u in tree.neighbors(v) {
            if !seen[u] {
                seen[u] = true;
                parent[u] = v;
                bfs_edges.push((v, u));
                queue.push_back(u);
            }
        }
    }
    for &(p, c) in &bfs_edges {
        b.message(p, c).expect("tree edge is a channel");
    }
    // Convergecast: every non-root replies to its parent, leaves first.
    for &(p, c) in bfs_edges.iter().rev() {
        b.internal(c).expect("child computes before replying");
        b.message(c, p).expect("tree edge is a channel");
    }
    Scenario {
        topology: tree.clone(),
        computation: b.build(),
        name: format!("tree_broadcast_convergecast(n={})", tree.node_count()),
    }
}

/// A token circling a ring `laps` times: process `i` hands to
/// `(i + 1) mod n`.
///
/// # Panics
///
/// Panics if `n < 3` or `laps == 0`.
pub fn ring_token(n: usize, laps: usize) -> Scenario {
    assert!(laps > 0, "need at least one lap");
    let topo = topology::cycle(n);
    let mut b = Builder::with_topology(&topo);
    for _ in 0..laps {
        for i in 0..n {
            b.message(i, (i + 1) % n).expect("ring edge is a channel");
        }
    }
    Scenario {
        topology: topo,
        computation: b.build(),
        name: format!("ring_token(n={n}, laps={laps})"),
    }
}

/// Coordinator-based barrier phases over a star: in each phase every worker
/// reports to the coordinator (node 0), which then releases every worker.
/// Between phases each worker performs one internal step. All messages are
/// totally ordered (Lemma 1), so one vector component suffices.
///
/// # Panics
///
/// Panics if `workers == 0` or `phases == 0`.
pub fn barrier_phases(workers: usize, phases: usize) -> Scenario {
    assert!(workers > 0 && phases > 0, "need workers and phases");
    let topo = topology::star(workers);
    let mut b = Builder::with_topology(&topo);
    for _ in 0..phases {
        for w in 1..=workers {
            b.message(w, 0).expect("star edge");
        }
        for w in 1..=workers {
            b.message(0, w).expect("star edge");
            b.internal(w).expect("worker does its phase work");
        }
    }
    Scenario {
        topology: topo,
        computation: b.build(),
        name: format!("barrier_phases(workers={workers}, phases={phases})"),
    }
}

/// A software pipeline over a path: `rounds` items enter at stage 0 and
/// are handed stage to stage, each stage doing one internal processing
/// step per item. Stages overlap across items (stage 0 accepts item `k+1`
/// while stage 2 still works on item `k`), so distinct items' messages at
/// distant stages are concurrent.
///
/// # Panics
///
/// Panics if `stages < 2` or `rounds == 0`.
pub fn pipeline(stages: usize, rounds: usize) -> Scenario {
    assert!(stages >= 2 && rounds > 0, "need >= 2 stages and >= 1 round");
    let topo = topology::path(stages);
    let mut b = Builder::with_topology(&topo);
    // Rendezvous order of a maximally overlapped pipeline: anti-diagonals
    // of the (item, stage) grid, downstream hops first within a wave so
    // that hops of distinct items stay concurrent.
    for wave in 0..(rounds + stages - 2) {
        for stage in (0..(stages - 1)).rev() {
            let item = wave as isize - stage as isize;
            if item >= 0 && (item as usize) < rounds {
                b.message(stage, stage + 1).expect("pipeline edge");
                b.internal(stage + 1).expect("stage processes the item");
            }
        }
    }
    Scenario {
        topology: topo,
        computation: b.build(),
        name: format!("pipeline(stages={stages}, rounds={rounds})"),
    }
}

/// Random pairwise gossip over a complete topology: in each round, a
/// random perfect-ish matching of processes exchanges a pair of messages
/// (one each way). Gossip saturates causality quickly — a classic stress
/// for timestamp size.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
pub fn gossip<R: Rng + ?Sized>(n: usize, rounds: usize, rng: &mut R) -> Scenario {
    assert!(n >= 2 && rounds > 0, "need >= 2 processes and >= 1 round");
    let topo = topology::complete(n);
    let mut b = Builder::with_topology(&topo);
    let mut ids: Vec<usize> = (0..n).collect();
    for _ in 0..rounds {
        use rand::seq::SliceRandom;
        ids.shuffle(rng);
        for pair in ids.chunks(2) {
            if let [a, z] = *pair {
                b.message(a, z).expect("complete topology");
                b.message(z, a).expect("complete topology");
            }
        }
    }
    Scenario {
        topology: topo,
        computation: b.build(),
        name: format!("gossip(n={n}, rounds={rounds})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synctime_trace::Oracle;

    #[test]
    fn rpc_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let sc = client_server_rpc(2, 6, 10, &mut rng);
        assert_eq!(sc.computation.message_count(), 20);
        // Calls alternate request/reply on the same pair.
        let ms = sc.computation.messages();
        for pair in ms.chunks(2) {
            assert_eq!(pair[0].sender, pair[1].receiver);
            assert_eq!(pair[0].receiver, pair[1].sender);
            assert!(pair[0].receiver < 2, "first of a pair targets a server");
        }
    }

    #[test]
    fn tree_broadcast_orders_root_before_leaves() {
        let tree = topology::figure4_tree();
        let sc = tree_broadcast_convergecast(&tree, 0);
        assert_eq!(sc.computation.message_count(), 2 * 19);
        let oracle = Oracle::new(&sc.computation);
        // First message (root to a hub) precedes every other message.
        let first = sc.computation.messages()[0].id;
        let last = sc.computation.messages()[2 * 19 - 1].id;
        assert!(oracle.synchronously_precedes(first, last));
    }

    #[test]
    fn ring_token_total_order() {
        let sc = ring_token(5, 2);
        let oracle = Oracle::new(&sc.computation);
        // A single circulating token yields a totally ordered message set.
        let ids: Vec<_> = sc.computation.messages().iter().map(|m| m.id).collect();
        for w in ids.windows(2) {
            assert!(oracle.synchronously_precedes(w[0], w[1]));
        }
    }

    #[test]
    fn barrier_star_totally_ordered() {
        let sc = barrier_phases(4, 3);
        let oracle = Oracle::new(&sc.computation);
        // Lemma 1: star topology => all messages comparable.
        let n = sc.computation.message_count();
        for i in 0..n {
            for j in (i + 1)..n {
                use synctime_trace::MessageId;
                assert!(!oracle.concurrent(MessageId(i), MessageId(j)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected tree")]
    fn broadcast_rejects_cyclic_topology() {
        tree_broadcast_convergecast(&topology::cycle(4), 0);
    }

    #[test]
    fn pipeline_overlaps_items() {
        let sc = pipeline(4, 3);
        assert_eq!(sc.computation.message_count(), 3 * 3);
        let oracle = Oracle::new(&sc.computation);
        // Item 0's last hop and item 2's first hop are concurrent? Not
        // necessarily; but an early-stage and a late-stage hop of distinct
        // items must be concurrent somewhere. Find one concurrent pair.
        let ms = sc.computation.messages();
        let any_concurrent = (0..ms.len())
            .any(|i| ((i + 1)..ms.len()).any(|j| oracle.concurrent(ms[i].id, ms[j].id)));
        assert!(any_concurrent, "a pipeline with 3 items must overlap");
        // Per item, hops form a chain: first hop precedes the last hop of
        // the same item... verified via the stage-0 sends being ordered.
        let first_sends: Vec<_> = ms.iter().filter(|m| m.sender == 0).collect();
        for w in first_sends.windows(2) {
            assert!(oracle.synchronously_precedes(w[0].id, w[1].id));
        }
    }

    #[test]
    fn gossip_is_valid_and_dense() {
        let mut rng = StdRng::seed_from_u64(8);
        let sc = gossip(6, 5, &mut rng);
        assert_eq!(sc.computation.message_count(), 5 * 3 * 2);
        // After enough rounds, early messages precede late ones.
        let oracle = Oracle::new(&sc.computation);
        let first = sc.computation.messages()[0].id;
        let last = sc.computation.messages()[sc.computation.message_count() - 1].id;
        assert!(oracle.synchronously_precedes(first, last));
    }

    #[test]
    fn gossip_odd_process_count_leaves_one_out_per_round() {
        let mut rng = StdRng::seed_from_u64(9);
        let sc = gossip(5, 2, &mut rng);
        assert_eq!(sc.computation.message_count(), 2 * 2 * 2);
    }
}
