//! Seeded random synchronous computations over arbitrary topologies.

use rand::seq::SliceRandom;
use rand::Rng;
use synctime_graph::{Edge, Graph};
use synctime_trace::{Builder, SyncComputation};

/// Parameters for a random workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomWorkload {
    /// Number of messages to generate.
    pub messages: usize,
    /// Number of internal events to sprinkle uniformly across processes.
    pub internal_events: usize,
}

impl RandomWorkload {
    /// A workload of `messages` messages and no internal events.
    pub fn messages(messages: usize) -> Self {
        RandomWorkload {
            messages,
            internal_events: 0,
        }
    }

    /// Sets the number of internal events.
    pub fn with_internal_events(mut self, internal_events: usize) -> Self {
        self.internal_events = internal_events;
        self
    }

    /// Generates a computation over `topology`: each message picks a
    /// uniformly random channel and direction; internal events pick a
    /// uniformly random process. Events are interleaved uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `topology` has no edges but `messages > 0`, or no nodes
    /// but `internal_events > 0`.
    pub fn generate<R: Rng + ?Sized>(&self, topology: &Graph, rng: &mut R) -> SyncComputation {
        let edges: Vec<Edge> = topology.edges().collect();
        assert!(
            self.messages == 0 || !edges.is_empty(),
            "cannot generate messages on an edgeless topology"
        );
        assert!(
            self.internal_events == 0 || topology.node_count() > 0,
            "cannot generate internal events without processes"
        );
        // Shuffle a tape of actions, then run it through the builder.
        let mut actions: Vec<bool> = std::iter::repeat_n(true, self.messages)
            .chain(std::iter::repeat_n(false, self.internal_events))
            .collect();
        actions.shuffle(rng);
        let mut b = Builder::with_topology(topology);
        for is_message in actions {
            if is_message {
                let e = edges[rng.gen_range(0..edges.len())];
                let (mut s, mut r) = e.endpoints();
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut s, &mut r);
                }
                b.message(s, r).expect("edge endpoints are valid channels");
            } else {
                let p = rng.gen_range(0..topology.node_count());
                b.internal(p).expect("process id in range");
            }
        }
        b.build()
    }
}

/// Convenience: a random computation of `messages` messages over
/// `topology`.
pub fn random_computation<R: Rng + ?Sized>(
    topology: &Graph,
    messages: usize,
    rng: &mut R,
) -> SyncComputation {
    RandomWorkload::messages(messages).generate(topology, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synctime_graph::topology;

    #[test]
    fn respects_topology_and_counts() {
        let topo = topology::cycle(6);
        let mut rng = StdRng::seed_from_u64(1);
        let c = RandomWorkload::messages(40)
            .with_internal_events(10)
            .generate(&topo, &mut rng);
        assert_eq!(c.message_count(), 40);
        assert_eq!(c.events().count(), 40 * 2 + 10);
        for m in c.messages() {
            assert!(topo.has_edge(m.sender, m.receiver));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = topology::complete(5);
        let w = RandomWorkload::messages(25).with_internal_events(5);
        let a = w.generate(&topo, &mut StdRng::seed_from_u64(7));
        let b = w.generate(&topo, &mut StdRng::seed_from_u64(7));
        let c = w.generate(&topo, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_workload() {
        let topo = topology::path(3);
        let mut rng = StdRng::seed_from_u64(2);
        let c = RandomWorkload::messages(0).generate(&topo, &mut rng);
        assert_eq!(c.message_count(), 0);
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn rejects_edgeless_topology() {
        let mut rng = StdRng::seed_from_u64(3);
        random_computation(&Graph::new(4), 5, &mut rng);
    }
}
