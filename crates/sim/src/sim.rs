//! A deterministic discrete-event scheduler for CSP-style synchronous
//! programs.
//!
//! Each process runs a *script* of operations ([`Op`]): blocking sends,
//! blocking receives (from a specific peer or from anyone), and internal
//! steps. The [`Simulator`] repeatedly matches a ready sender with a ready
//! receiver — a rendezvous — until every script finishes, producing the
//! resulting [`SyncComputation`]; if unfinished scripts can no longer
//! rendezvous it reports the deadlock, naming the blocked processes.
//!
//! Scheduling is seeded: among the enabled rendezvous the simulator picks
//! one with a deterministic RNG, so a `(programs, seed)` pair always yields
//! the same computation, while different seeds explore different
//! interleavings of the same program — handy for property-testing that
//! timestamp algorithms are correct on *every* schedule.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synctime_graph::Graph;
use synctime_trace::{Builder, ProcessId, SyncComputation, TraceError};

/// One operation of a process script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Blocking send to a specific peer.
    SendTo(ProcessId),
    /// Blocking receive from a specific peer.
    ReceiveFrom(ProcessId),
    /// Blocking receive from whichever peer sends first.
    ReceiveAny,
    /// A local step (never blocks).
    Internal,
}

/// A process's script, built fluently:
///
/// ```
/// use synctime_sim::Program;
///
/// let p = Program::new().send_to(1).internal().receive_from(2);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// An empty script.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a blocking send to `peer`.
    #[must_use]
    pub fn send_to(mut self, peer: ProcessId) -> Self {
        self.ops.push(Op::SendTo(peer));
        self
    }

    /// Appends a blocking receive from `peer`.
    #[must_use]
    pub fn receive_from(mut self, peer: ProcessId) -> Self {
        self.ops.push(Op::ReceiveFrom(peer));
        self
    }

    /// Appends a blocking receive from any peer.
    #[must_use]
    pub fn receive_any(mut self) -> Self {
        self.ops.push(Op::ReceiveAny);
        self
    }

    /// Appends an internal step.
    #[must_use]
    pub fn internal(mut self) -> Self {
        self.ops.push(Op::Internal);
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }
}

/// Errors from simulating a set of scripts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No rendezvous is enabled but some scripts have not finished. The
    /// classic example: two processes that both send before receiving —
    /// legal with asynchronous buffering, a deadlock under rendezvous.
    Deadlock {
        /// Processes stuck mid-script.
        blocked: Vec<ProcessId>,
    },
    /// A script refers to a peer outside `0..N` or to itself, or uses a
    /// channel missing from the topology.
    InvalidOp {
        /// The process whose script is invalid.
        process: ProcessId,
        /// The index of the offending operation.
        op_index: usize,
        /// The underlying trace error.
        source: TraceError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "rendezvous deadlock; blocked processes: {blocked:?}")
            }
            SimError::InvalidOp {
                process,
                op_index,
                source,
            } => {
                write!(f, "invalid op {op_index} of process {process}: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidOp { source, .. } => Some(source),
            SimError::Deadlock { .. } => None,
        }
    }
}

/// The rendezvous scheduler. See the module docs.
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: Option<Graph>,
    seed: u64,
}

impl Simulator {
    /// A simulator with no topology restriction and seed 0.
    pub fn new() -> Self {
        Simulator {
            topology: None,
            seed: 0,
        }
    }

    /// Restricts messages to the channels of `topology`.
    #[must_use]
    pub fn with_topology(mut self, topology: &Graph) -> Self {
        self.topology = Some(topology.clone());
        self
    }

    /// Sets the scheduling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the scripts to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if unfinished scripts cannot rendezvous;
    /// [`SimError::InvalidOp`] for out-of-range peers, self-messages, or
    /// (when a topology is set) absent channels.
    pub fn run(&self, programs: &[Program]) -> Result<SyncComputation, SimError> {
        let n = programs.len();
        let mut builder = match &self.topology {
            Some(t) => {
                // The topology may declare more processes than scripts; pad.
                assert!(
                    t.node_count() >= n,
                    "topology has fewer nodes than programs"
                );
                Builder::with_topology(t)
            }
            None => Builder::new(n),
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pc = vec![0usize; n];
        let done = |pc: &[usize], p: usize| pc[p] >= programs[p].ops.len();

        loop {
            // Internal steps never block: flush them in process order.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for p in 0..n {
                    while !done(&pc, p) && programs[p].ops[pc[p]] == Op::Internal {
                        builder.internal(p).map_err(|source| SimError::InvalidOp {
                            process: p,
                            op_index: pc[p],
                            source,
                        })?;
                        pc[p] += 1;
                        progressed = true;
                    }
                }
            }
            // Collect enabled rendezvous pairs (sender, receiver).
            let mut enabled: Vec<(ProcessId, ProcessId)> = Vec::new();
            for s in 0..n {
                if done(&pc, s) {
                    continue;
                }
                if let Op::SendTo(r) = programs[s].ops[pc[s]] {
                    if r < n && !done(&pc, r) {
                        let ready = match programs[r].ops[pc[r]] {
                            Op::ReceiveFrom(from) => from == s,
                            Op::ReceiveAny => true,
                            _ => false,
                        };
                        if ready {
                            enabled.push((s, r));
                        }
                    } else if r >= n {
                        // Out-of-range peer: surface as an invalid op now.
                        return Err(SimError::InvalidOp {
                            process: s,
                            op_index: pc[s],
                            source: TraceError::ProcessOutOfRange {
                                process: r,
                                process_count: n,
                            },
                        });
                    }
                }
            }
            if enabled.is_empty() {
                let blocked: Vec<ProcessId> = (0..n).filter(|&p| !done(&pc, p)).collect();
                if blocked.is_empty() {
                    return Ok(builder.build());
                }
                return Err(SimError::Deadlock { blocked });
            }
            let (s, r) = enabled[rng.gen_range(0..enabled.len())];
            builder
                .message(s, r)
                .map_err(|source| SimError::InvalidOp {
                    process: s,
                    op_index: pc[s],
                    source,
                })?;
            pc[s] += 1;
            pc[r] += 1;
        }
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new()
    }
}

/// Exhaustively enumerates the computations reachable under **every**
/// rendezvous schedule of the given scripts — model checking in miniature.
/// Internal events are flushed eagerly (they commute with everything), so
/// branching happens only on which enabled rendezvous commits next.
///
/// Returns the distinct computations found, or an error if the number of
/// complete schedules would exceed `limit` (the schedule space is
/// factorial in the worst case) or if some schedule deadlocks/fails.
///
/// Directed scripts (no [`Op::ReceiveAny`]) are confluent, so they yield
/// exactly one computation per run — a property
/// [`crate::programs::roundtrips`] tests; scripts with `ReceiveAny` can
/// genuinely branch.
///
/// # Errors
///
/// [`SimError::Deadlock`] if any schedule gets stuck; [`SimError`] as in
/// [`Simulator::run`] for invalid operations.
///
/// # Panics
///
/// Panics if more than `limit` complete schedules are generated.
pub fn enumerate_schedules(
    topology: Option<&Graph>,
    programs: &[Program],
    limit: usize,
) -> Result<Vec<SyncComputation>, SimError> {
    let n = programs.len();

    fn explore(
        programs: &[Program],
        pc: &mut Vec<usize>,
        trace: &mut Vec<(ProcessId, ProcessId)>,
        out: &mut Vec<Vec<(ProcessId, ProcessId)>>,
        limit: usize,
    ) -> Result<(), SimError> {
        let n = programs.len();
        // Collect enabled rendezvous (internal ops commute; treat them as
        // implicit and skip over them when computing "current" ops).
        let current = |pc: &[usize], p: usize| -> Option<Op> {
            let mut i = pc[p];
            // Internal ops are recorded positionally later; skip for
            // enabling purposes.
            while i < programs[p].ops.len() && programs[p].ops[i] == Op::Internal {
                i += 1;
            }
            (i < programs[p].ops.len()).then(|| programs[p].ops[i])
        };
        let mut enabled: Vec<(ProcessId, ProcessId)> = Vec::new();
        for s in 0..n {
            if let Some(Op::SendTo(r)) = current(pc, s) {
                if r < n {
                    let ready = match current(pc, r) {
                        Some(Op::ReceiveFrom(from)) => from == s,
                        Some(Op::ReceiveAny) => true,
                        _ => false,
                    };
                    if ready {
                        enabled.push((s, r));
                    }
                } else {
                    return Err(SimError::InvalidOp {
                        process: s,
                        op_index: pc[s],
                        source: TraceError::ProcessOutOfRange {
                            process: r,
                            process_count: n,
                        },
                    });
                }
            }
        }
        if enabled.is_empty() {
            let blocked: Vec<ProcessId> = (0..n).filter(|&p| current(pc, p).is_some()).collect();
            if !blocked.is_empty() {
                return Err(SimError::Deadlock { blocked });
            }
            assert!(out.len() < limit, "schedule space exceeds limit {limit}");
            out.push(trace.clone());
            return Ok(());
        }
        for &(s, r) in &enabled {
            // Advance both processes past their (possibly implicit
            // internal-prefixed) rendezvous ops.
            let saved = pc.clone();
            for &p in &[s, r] {
                while programs[p].ops[pc[p]] == Op::Internal {
                    pc[p] += 1;
                }
                pc[p] += 1;
            }
            trace.push((s, r));
            explore(programs, pc, trace, out, limit)?;
            trace.pop();
            *pc = saved;
        }
        Ok(())
    }

    let mut pc = vec![0usize; n];
    let mut trace = Vec::new();
    let mut rendezvous_traces = Vec::new();
    explore(programs, &mut pc, &mut trace, &mut rendezvous_traces, limit)?;

    // Rebuild full computations (with internal events re-inserted in
    // script order) for each distinct rendezvous trace.
    rendezvous_traces.sort();
    rendezvous_traces.dedup();
    let mut computations = Vec::with_capacity(rendezvous_traces.len());
    for rt in rendezvous_traces {
        let mut builder = match topology {
            Some(t) => Builder::with_topology(t),
            None => Builder::new(n),
        };
        let mut pc = vec![0usize; n];
        let flush = |p: usize, pc: &mut Vec<usize>, b: &mut Builder| {
            while pc[p] < programs[p].ops.len() && programs[p].ops[pc[p]] == Op::Internal {
                b.internal(p).expect("valid process");
                pc[p] += 1;
            }
        };
        for (s, r) in rt {
            flush(s, &mut pc, &mut builder);
            flush(r, &mut pc, &mut builder);
            builder
                .message(s, r)
                .map_err(|source| SimError::InvalidOp {
                    process: s,
                    op_index: pc[s],
                    source,
                })?;
            pc[s] += 1;
            pc[r] += 1;
        }
        for p in 0..n {
            flush(p, &mut pc, &mut builder);
        }
        computations.push(builder.build());
    }
    computations.dedup();
    Ok(computations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_graph::topology;

    #[test]
    fn simple_rendezvous() {
        let programs = vec![
            Program::new().send_to(1).receive_from(1),
            Program::new().receive_from(0).send_to(0),
        ];
        let c = Simulator::new().run(&programs).unwrap();
        assert_eq!(c.message_count(), 2);
        assert_eq!(c.messages()[0].sender, 0);
        assert_eq!(c.messages()[1].sender, 1);
    }

    #[test]
    fn receive_any_matches() {
        let programs = vec![
            Program::new().receive_any().receive_any(),
            Program::new().send_to(0),
            Program::new().send_to(0),
        ];
        let c = Simulator::new().run(&programs).unwrap();
        assert_eq!(c.message_count(), 2);
        assert!(c.messages().iter().all(|m| m.receiver == 0));
    }

    #[test]
    fn crossing_sends_deadlock() {
        // Both send first: classic rendezvous deadlock.
        let programs = vec![
            Program::new().send_to(1).receive_from(1),
            Program::new().send_to(0).receive_from(0),
        ];
        let err = Simulator::new().run(&programs).unwrap_err();
        assert_eq!(
            err,
            SimError::Deadlock {
                blocked: vec![0, 1]
            }
        );
    }

    #[test]
    fn internal_ops_never_block() {
        let programs = vec![
            Program::new().internal().internal().send_to(1),
            Program::new().internal().receive_from(0).internal(),
        ];
        let c = Simulator::new().run(&programs).unwrap();
        assert_eq!(c.message_count(), 1);
        assert_eq!(c.events().count(), 2 + 4);
    }

    #[test]
    fn seeds_change_interleavings_deterministically() {
        // Two producers race to a consumer accepting any order.
        let programs = vec![
            Program::new()
                .receive_any()
                .receive_any()
                .receive_any()
                .receive_any(),
            Program::new().send_to(0).send_to(0),
            Program::new().send_to(0).send_to(0),
        ];
        let runs: Vec<_> = (0..8)
            .map(|seed| Simulator::new().with_seed(seed).run(&programs).unwrap())
            .collect();
        // Same seed twice is identical.
        let again = Simulator::new().with_seed(3).run(&programs).unwrap();
        assert_eq!(runs[3], again);
        // Some pair of seeds differs (the schedule space has 6 orders).
        assert!(runs.iter().any(|r| r != &runs[0]));
    }

    #[test]
    fn topology_violation_reported() {
        let topo = topology::path(3); // no 0-2 channel
        let programs = vec![
            Program::new().send_to(2),
            Program::new(),
            Program::new().receive_from(0),
        ];
        let err = Simulator::new()
            .with_topology(&topo)
            .run(&programs)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidOp {
                process: 0,
                source: TraceError::NotAChannel { .. },
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_peer_reported() {
        let programs = vec![Program::new().send_to(9)];
        let err = Simulator::new().run(&programs).unwrap_err();
        assert!(matches!(err, SimError::InvalidOp { process: 0, .. }));
    }

    #[test]
    fn self_send_never_enabled() {
        // A script sending to itself can never rendezvous: deadlock.
        let programs = vec![Program::new().send_to(0)];
        let err = Simulator::new().run(&programs).unwrap_err();
        assert_eq!(err, SimError::Deadlock { blocked: vec![0] });
    }

    #[test]
    fn empty_programs_finish_immediately() {
        let c = Simulator::new()
            .run(&[Program::new(), Program::new()])
            .unwrap();
        assert_eq!(c.message_count(), 0);
    }

    #[test]
    fn enumerate_directed_scripts_yield_one_computation_shape() {
        // Directed scripts are confluent: every schedule produces the same
        // per-process histories. Two independent producer-consumer pairs
        // have 6 interleavings of 4 rendezvous but one computation shape.
        let programs = vec![
            Program::new().send_to(1).send_to(1),
            Program::new().receive_from(0).receive_from(0),
            Program::new().send_to(3).send_to(3),
            Program::new().receive_from(2).receive_from(2),
        ];
        let all = enumerate_schedules(None, &programs, 100).unwrap();
        // Distinct rendezvous orders exist...
        assert!(all.len() > 1);
        // ...but all replays have identical per-process shapes.
        for c in &all {
            assert!(crate::programs::roundtrips(&all[0], c));
        }
    }

    #[test]
    fn enumerate_receive_any_branches() {
        // A ReceiveAny sink genuinely branches: two senders, 2 orders.
        let programs = vec![
            Program::new().receive_any().receive_any(),
            Program::new().send_to(0),
            Program::new().send_to(0),
        ];
        let all = enumerate_schedules(None, &programs, 100).unwrap();
        assert_eq!(all.len(), 2);
        assert!(!crate::programs::roundtrips(&all[0], &all[1]));
    }

    #[test]
    fn enumerate_detects_deadlocks_on_some_branch() {
        // One branch completes, the other deadlocks: the explorer reports
        // the deadlock (it verifies ALL schedules).
        let programs = vec![
            Program::new().receive_any().receive_from(1),
            Program::new().send_to(0).send_to(0),
            Program::new().send_to(0).receive_from(1),
        ];
        // Branch A: P0 takes P1 first, then must receive P1 again but P1's
        // second send goes to P0 — ok... Branch B: P0 takes P2 first, then
        // needs P1, P1 sends, then P1's second send and P2's receive
        // deadlock.
        let result = enumerate_schedules(None, &programs, 100);
        assert!(matches!(result, Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn enumerate_flushes_internal_events() {
        let programs = vec![
            Program::new().internal().send_to(1).internal(),
            Program::new().receive_from(0),
        ];
        let all = enumerate_schedules(None, &programs, 10).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].events().count(), 4);
        assert_eq!(all[0].message_count(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn enumerate_limit_enforced() {
        // 3 independent pairs: 6 rendezvous, 90 interleavings > limit 10.
        let programs = vec![
            Program::new().send_to(1).send_to(1),
            Program::new().receive_from(0).receive_from(0),
            Program::new().send_to(3).send_to(3),
            Program::new().receive_from(2).receive_from(2),
            Program::new().send_to(5).send_to(5),
            Program::new().receive_from(4).receive_from(4),
        ];
        let _ = enumerate_schedules(None, &programs, 10);
    }
}
