//! Deterministic workload generators and a rendezvous simulator for
//! synchronous computations.
//!
//! The paper's evaluation domain is "distributed programs that communicate
//! by synchronous messages" (CSP, Ada rendezvous, synchronous RPC). This
//! crate supplies that substrate in two flavours:
//!
//! * [`workload`] — seeded random computations over an arbitrary topology,
//!   used by property tests and benchmark sweeps;
//! * [`scenarios`] — the structured application classes the paper's
//!   introduction motivates: client–server RPC, tree
//!   broadcast/convergecast, ring token passing, and barrier phases;
//! * [`programs`] — extraction of per-process scripts from computations
//!   (directed rendezvous programs are confluent, enabling replay
//!   round-trips) and generation of guaranteed-deadlock-free program sets;
//! * [`sim`] — a deterministic discrete-event scheduler for CSP-style
//!   *programs* (per-process scripts of send/receive/internal operations)
//!   that resolves rendezvous pairs and emits the resulting
//!   [`SyncComputation`](synctime_trace::SyncComputation), detecting
//!   deadlock when the scripts cannot rendezvous;
//! * [`fault`] — seeded, JSON-serialisable fault schedules (crashes,
//!   delays, forced delta-stream desyncs) that plug into the runtime's
//!   fault-injection hook for crash-robustness experiments;
//! * [`churn`] — seeded, JSON-serialisable reconfiguration scripts
//!   (join/leave/swap at Poisson arrival times over a fixed process
//!   universe) plus a multi-epoch engine that drives the runtime's
//!   epoch seam, producing boundary-cut logs for persistence and
//!   per-epoch dimension/latency reports.
//!
//! Everything is seeded and deterministic: the same seed yields the same
//! computation, so experiments are reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod fault;
pub mod programs;
pub mod scenarios;
pub mod sim;
pub mod workload;

pub use churn::{
    ring_behavior, run_churn, ChurnConfig, ChurnError, ChurnEvent, ChurnKind, ChurnPlan, ChurnRun,
    EpochBoundary, EpochReport,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use scenarios::Scenario;
pub use sim::{enumerate_schedules, Op, Program, SimError, Simulator};
