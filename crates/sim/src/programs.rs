//! Deriving process scripts from computations and generating random
//! *confluent* program sets.
//!
//! Directed rendezvous programs (no `ReceiveAny`) are **confluent**: each
//! process's communication sequence is fixed, so every schedule realizes
//! the same computation — and a schedule exists exactly when the scripts
//! came from a real computation. That yields both a powerful round-trip
//! test (computation → scripts → simulate → same computation) and a
//! generator of guaranteed-deadlock-free workloads for the threaded
//! runtime.

use rand::Rng;
use synctime_graph::Graph;
use synctime_trace::{EventKind, SyncComputation};

use crate::sim::Program;
use crate::workload::RandomWorkload;

/// Extracts one directed script per process from a computation: sends
/// become `send_to`, receives `receive_from`, internal events `internal`.
///
/// Simulating the result (any seed) reproduces a computation with the same
/// per-process histories — see [`roundtrips`].
pub fn from_computation(computation: &SyncComputation) -> Vec<Program> {
    (0..computation.process_count())
        .map(|p| {
            let mut prog = Program::new();
            for ev in computation.history(p) {
                prog = match ev {
                    EventKind::Internal => prog.internal(),
                    EventKind::Send(m) => prog.send_to(computation.message(*m).receiver),
                    EventKind::Receive(m) => prog.receive_from(computation.message(*m).sender),
                };
            }
            prog
        })
        .collect()
}

/// Whether `computation` and `other` have identical per-process histories
/// up to message renumbering (the confluence invariant: any schedule of
/// the same directed scripts).
pub fn roundtrips(computation: &SyncComputation, other: &SyncComputation) -> bool {
    if computation.process_count() != other.process_count() {
        return false;
    }
    (0..computation.process_count()).all(|p| {
        let shape = |c: &SyncComputation| -> Vec<(u8, usize)> {
            c.history(p)
                .iter()
                .map(|ev| match ev {
                    EventKind::Internal => (0u8, 0),
                    EventKind::Send(m) => (1, c.message(*m).receiver),
                    EventKind::Receive(m) => (2, c.message(*m).sender),
                })
                .collect()
        };
        shape(computation) == shape(other)
    })
}

/// Generates a random set of directed, deadlock-free programs over
/// `topology` by first generating a random computation and extracting its
/// scripts — by construction a rendezvous schedule exists.
pub fn random_confluent<R: Rng + ?Sized>(
    topology: &Graph,
    messages: usize,
    internal_events: usize,
    rng: &mut R,
) -> Vec<Program> {
    let comp = RandomWorkload::messages(messages)
        .with_internal_events(internal_events)
        .generate(topology, rng);
    from_computation(&comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synctime_graph::topology;
    use synctime_trace::Builder;

    #[test]
    fn roundtrip_small() {
        let mut b = Builder::new(3);
        b.message(0, 1).unwrap();
        b.internal(1).unwrap();
        b.message(1, 2).unwrap();
        b.message(2, 0).unwrap();
        let comp = b.build();
        let programs = from_computation(&comp);
        let replay = Simulator::new().run(&programs).unwrap();
        assert!(roundtrips(&comp, &replay));
        // In this fully sequential case the computations are identical.
        assert_eq!(comp, replay);
    }

    #[test]
    fn roundtrip_random_many_schedules() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let topo = topology::random_connected(6, 3, &mut rng);
            let comp = RandomWorkload::messages(30)
                .with_internal_events(10)
                .generate(&topo, &mut rng);
            let programs = from_computation(&comp);
            for seed in 0..5 {
                let replay = Simulator::new()
                    .with_topology(&topo)
                    .with_seed(seed)
                    .run(&programs)
                    .unwrap_or_else(|e| panic!("trial {trial} seed {seed}: {e}"));
                assert!(roundtrips(&comp, &replay), "trial {trial} seed {seed}");
            }
        }
    }

    #[test]
    fn random_confluent_never_deadlocks() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let topo = topology::complete(5);
            let programs = random_confluent(&topo, 25, 5, &mut rng);
            for seed in [0, 1, 2] {
                assert!(Simulator::new()
                    .with_topology(&topo)
                    .with_seed(seed)
                    .run(&programs)
                    .is_ok());
            }
        }
    }

    #[test]
    fn roundtrips_detects_differences() {
        let mut b = Builder::new(2);
        b.message(0, 1).unwrap();
        let a = b.build();
        let mut b = Builder::new(2);
        b.message(1, 0).unwrap();
        let c = b.build();
        assert!(!roundtrips(&a, &c));
        let d = Builder::new(3).build();
        assert!(!roundtrips(&a, &d));
    }
}
