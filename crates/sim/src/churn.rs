//! Churn workloads: seeded scripts of join/leave/swap reconfigurations
//! driven through the runtime's epoch seam.
//!
//! A [`ChurnPlan`] is the control-plane analogue of a
//! [`FaultPlan`](crate::fault::FaultPlan): a deterministic, serialisable
//! script of topology changes over a **fixed process universe**. Processes
//! never appear or disappear as graph nodes (the decomposition's node count
//! is immutable); instead, joins and leaves edit the *edge set* — an
//! inactive process simply has degree zero and an idle behavior. Each
//! epoch's topology is a ring over the active processes, the workload is
//! deterministic token passing, and the boundary between epochs is the
//! two-phase reconfiguration of `synctime-runtime`:
//! quiesce → [`IncrementalDecomposition::apply_ops`] →
//! rebase the max-merged final clocks through the
//! [`GroupRemap`] → [`Runtime::apply_reconfigure`] → resume.
//!
//! Inter-event gaps (`after_rounds`) are drawn from an exponential
//! distribution by [`ChurnPlan::random`], so churn events arrive as a
//! Poisson process in round-time. Plans round-trip through JSON
//! (`synctime launch --churn-plan plan.json`):
//!
//! ```json
//! {
//!   "universe": 6,
//!   "initial": [0, 1, 2, 3],
//!   "events": [
//!     {"after_rounds": 3, "kind": {"join": {"process": 4}}},
//!     {"after_rounds": 2, "kind": {"leave": {"process": 1}}},
//!     {"after_rounds": 4, "kind": {"swap": {"leaving": 2, "joining": 5}}}
//!   ],
//!   "tail_rounds": 3
//! }
//! ```
//!
//! Composing a `FaultPlan` with churn: fault `at_op` indices are
//! interpreted *within each epoch* (every epoch is its own run, so the
//! per-process op counter restarts). A crash permanently removes the
//! process from the workload — it idles in every later epoch, and its ring
//! neighbours observe `PeerTerminated`, truncating that epoch to the
//! survivor prefix.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use synctime_core::clock::ClockBackend;
use synctime_core::VectorTime;
use synctime_graph::{EdgeOp, Graph, GraphError, GroupRemap, IncrementalDecomposition};
use synctime_runtime::{AppliedReconfigure, Behavior, LogEntry, RunStats, Runtime, RuntimeError};

use crate::fault::FaultPlan;

/// One topology edit applied at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// An inactive process joins the active ring.
    #[serde(rename = "join")]
    Join {
        /// The process that becomes active.
        process: usize,
    },
    /// An active process (never the coordinator, process 0) leaves.
    #[serde(rename = "leave")]
    Leave {
        /// The process that becomes inactive.
        process: usize,
    },
    /// One process leaves and another joins in the same reconfiguration.
    #[serde(rename = "swap")]
    Swap {
        /// The active process that leaves.
        leaving: usize,
        /// The inactive process that takes its place in the ring.
        joining: usize,
    },
}

/// One scheduled reconfiguration: run `after_rounds` token laps in the
/// current epoch, then apply `kind` at the epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Token laps the preceding epoch runs before this event fires
    /// (at least 1).
    pub after_rounds: u64,
    /// The topology edit.
    pub kind: ChurnKind,
}

/// A deterministic script of reconfigurations over a fixed process
/// universe. `events[e]` ends epoch `e`; the final epoch runs
/// `tail_rounds` laps. Process 0 (the control-plane coordinator) must be
/// active in every epoch, and every epoch needs at least two active
/// processes to form a ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Fixed number of processes; graph nodes never grow or shrink.
    pub universe: usize,
    /// Initially active processes (sorted, distinct, containing 0).
    pub initial: Vec<usize>,
    /// The scheduled reconfigurations, in order.
    pub events: Vec<ChurnEvent>,
    /// Token laps the final epoch runs (at least 1).
    pub tail_rounds: u64,
}

/// Why a churn plan cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChurnError {
    /// The plan violates a structural rule (carries a diagnostic).
    InvalidPlan(String),
    /// A topology edit was rejected by the graph layer.
    Graph(GraphError),
    /// The runtime refused a configuration or reconfiguration.
    Runtime(RuntimeError),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::InvalidPlan(detail) => write!(f, "invalid churn plan: {detail}"),
            ChurnError::Graph(e) => write!(f, "churn topology edit failed: {e}"),
            ChurnError::Runtime(e) => write!(f, "churn runtime failed: {e}"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<GraphError> for ChurnError {
    fn from(e: GraphError) -> Self {
        ChurnError::Graph(e)
    }
}

impl From<RuntimeError> for ChurnError {
    fn from(e: RuntimeError) -> Self {
        ChurnError::Runtime(e)
    }
}

impl ChurnPlan {
    /// Number of epochs the plan executes (`events.len() + 1`).
    pub fn epochs(&self) -> usize {
        self.events.len() + 1
    }

    /// The active process set of every epoch, validating the plan along
    /// the way: members in range and distinct, process 0 always active,
    /// joins target inactive processes, leaves target active non-zero
    /// processes, and every epoch keeps at least two active processes.
    pub fn active_sets(&self) -> Result<Vec<Vec<usize>>, ChurnError> {
        if self.universe < 2 {
            return Err(ChurnError::InvalidPlan(format!(
                "universe must be at least 2, got {}",
                self.universe
            )));
        }
        if self.tail_rounds == 0 {
            return Err(ChurnError::InvalidPlan("tail_rounds must be >= 1".into()));
        }
        let mut active: BTreeSet<usize> = BTreeSet::new();
        for &p in &self.initial {
            if p >= self.universe {
                return Err(ChurnError::InvalidPlan(format!(
                    "initial process {p} outside universe {}",
                    self.universe
                )));
            }
            if !active.insert(p) {
                return Err(ChurnError::InvalidPlan(format!(
                    "initial process {p} listed twice"
                )));
            }
        }
        let check = |active: &BTreeSet<usize>, when: &str| -> Result<(), ChurnError> {
            if !active.contains(&0) {
                return Err(ChurnError::InvalidPlan(format!(
                    "coordinator (process 0) inactive {when}"
                )));
            }
            if active.len() < 2 {
                return Err(ChurnError::InvalidPlan(format!(
                    "fewer than 2 active processes {when}"
                )));
            }
            Ok(())
        };
        check(&active, "initially")?;
        let mut sets = vec![active.iter().copied().collect::<Vec<_>>()];
        for (i, ev) in self.events.iter().enumerate() {
            if ev.after_rounds == 0 {
                return Err(ChurnError::InvalidPlan(format!(
                    "event {i}: after_rounds must be >= 1"
                )));
            }
            apply_kind(&mut active, ev.kind, i, self.universe)?;
            check(&active, &format!("after event {i}"))?;
            sets.push(active.iter().copied().collect());
        }
        Ok(sets)
    }

    /// Validates the plan without materialising the active sets.
    pub fn validate(&self) -> Result<(), ChurnError> {
        self.active_sets().map(|_| ())
    }

    /// The union of every epoch's ring edges over the fixed universe —
    /// the topology a distributed launcher must pre-establish connections
    /// for, so epoch transitions never need new sockets.
    pub fn union_topology(&self) -> Result<Graph, ChurnError> {
        let sets = self.active_sets()?;
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for set in &sets {
            edges.extend(ring_edges(set));
        }
        Graph::from_edges(self.universe, edges.iter().copied()).map_err(ChurnError::from)
    }

    /// Generates a random plan with `boundaries` reconfigurations over a
    /// `universe`-process pool. Gaps between events are exponential with
    /// mean `mean_rounds` laps (a Poisson arrival process in round-time);
    /// each event kind is drawn uniformly from the kinds feasible in the
    /// current active set. Deterministic in the seeded `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `universe < 3` (joins and leaves both need headroom) or
    /// `mean_rounds == 0`.
    pub fn random<R: Rng + ?Sized>(
        universe: usize,
        boundaries: usize,
        mean_rounds: u64,
        rng: &mut R,
    ) -> Self {
        assert!(universe >= 3, "need a universe of at least 3");
        assert!(mean_rounds > 0, "need a positive mean gap");
        // Initial active set: process 0 plus a random subset of the rest.
        let mut others: Vec<usize> = (1..universe).collect();
        others.shuffle(rng);
        let extra = rng.gen_range(1..universe);
        let mut active: BTreeSet<usize> = others.iter().take(extra).copied().collect();
        active.insert(0);
        let initial: Vec<usize> = active.iter().copied().collect();

        let mut events = Vec::with_capacity(boundaries);
        for _ in 0..boundaries {
            let inactive: Vec<usize> = (0..universe).filter(|p| !active.contains(p)).collect();
            let leavable: Vec<usize> = active.iter().copied().filter(|&p| p != 0).collect();
            // 0 = join, 1 = leave, 2 = swap — kept only when feasible.
            let mut feasible = Vec::new();
            if !inactive.is_empty() {
                feasible.push(0);
            }
            if active.len() > 2 {
                feasible.push(1);
            }
            if !inactive.is_empty() && !leavable.is_empty() {
                feasible.push(2);
            }
            let Some(&choice) = feasible.get(rng.gen_range(0..feasible.len().max(1))) else {
                break; // fully active two-process universe: nothing to do
            };
            let kind = match choice {
                0 => ChurnKind::Join {
                    process: inactive[rng.gen_range(0..inactive.len())],
                },
                1 => ChurnKind::Leave {
                    process: leavable[rng.gen_range(0..leavable.len())],
                },
                _ => ChurnKind::Swap {
                    leaving: leavable[rng.gen_range(0..leavable.len())],
                    joining: inactive[rng.gen_range(0..inactive.len())],
                },
            };
            apply_kind(&mut active, kind, events.len(), universe)
                .expect("feasible kinds keep the plan valid");
            events.push(ChurnEvent {
                after_rounds: exponential_rounds(mean_rounds, rng),
                kind,
            });
        }
        ChurnPlan {
            universe,
            initial,
            events,
            tail_rounds: exponential_rounds(mean_rounds, rng),
        }
    }

    /// Pretty-printed JSON rendering of the plan.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ChurnPlan serialises infallibly")
    }

    /// Parses a plan previously produced by [`ChurnPlan::to_json`] (or
    /// written by hand in the same shape).
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Applies one churn kind to an active set, validating feasibility.
fn apply_kind(
    active: &mut BTreeSet<usize>,
    kind: ChurnKind,
    index: usize,
    universe: usize,
) -> Result<(), ChurnError> {
    let join = |active: &mut BTreeSet<usize>, p: usize| -> Result<(), ChurnError> {
        if p >= universe {
            return Err(ChurnError::InvalidPlan(format!(
                "event {index}: join of process {p} outside universe {universe}"
            )));
        }
        if !active.insert(p) {
            return Err(ChurnError::InvalidPlan(format!(
                "event {index}: join of already-active process {p}"
            )));
        }
        Ok(())
    };
    let leave = |active: &mut BTreeSet<usize>, p: usize| -> Result<(), ChurnError> {
        if p == 0 {
            return Err(ChurnError::InvalidPlan(format!(
                "event {index}: the coordinator (process 0) cannot leave"
            )));
        }
        if !active.remove(&p) {
            return Err(ChurnError::InvalidPlan(format!(
                "event {index}: leave of inactive process {p}"
            )));
        }
        Ok(())
    };
    match kind {
        ChurnKind::Join { process } => join(active, process),
        ChurnKind::Leave { process } => leave(active, process),
        ChurnKind::Swap { leaving, joining } => {
            leave(active, leaving)?;
            join(active, joining)
        }
    }
}

/// An exponential draw with the given mean, in whole laps (at least 1,
/// capped at 8x the mean so plans stay bounded). Uses only integer
/// entropy, so any `Rng` the workspace shim provides suffices.
fn exponential_rounds<R: Rng + ?Sized>(mean: u64, rng: &mut R) -> u64 {
    let u = (rng.gen_range(0..1_000_000u64) + 1) as f64 / 1_000_000.0;
    let draw = (-u.ln() * mean as f64).ceil() as u64;
    draw.clamp(1, mean.saturating_mul(8))
}

/// The ring edges of an active set, normalised as `(lo, hi)` pairs. Two
/// active processes yield a single edge; three or more, a cycle.
pub fn ring_edges(active: &[usize]) -> Vec<(usize, usize)> {
    let k = active.len();
    if k < 2 {
        return Vec::new();
    }
    if k == 2 {
        return vec![(active[0], active[1])];
    }
    (0..k)
        .map(|i| {
            let (a, b) = (active[i], active[(i + 1) % k]);
            (a.min(b), a.max(b))
        })
        .collect()
}

/// The topology of one epoch: the active ring embedded in the fixed
/// universe (inactive processes are degree-0 nodes).
pub fn epoch_topology(universe: usize, active: &[usize]) -> Result<Graph, ChurnError> {
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    edges.extend(ring_edges(active));
    Graph::from_edges(universe, edges.iter().copied()).map_err(ChurnError::from)
}

/// The edge edits transforming `old`'s ring into `new`'s: removals first
/// (so no node's degree transiently grows), then insertions.
pub fn edge_ops(old: &[usize], new: &[usize]) -> Vec<EdgeOp> {
    let before: BTreeSet<(usize, usize)> = ring_edges(old).into_iter().collect();
    let after: BTreeSet<(usize, usize)> = ring_edges(new).into_iter().collect();
    let mut ops: Vec<EdgeOp> = before
        .difference(&after)
        .map(|&(u, v)| EdgeOp::Remove(u, v))
        .collect();
    ops.extend(
        after
            .difference(&before)
            .map(|&(u, v)| EdgeOp::Insert(u, v)),
    );
    ops
}

/// Rebases a clock vector through a remap: surviving components keep
/// their values in their new slots, dissolved components are dropped,
/// fresh components start at zero.
fn rebase(v: &VectorTime, remap: &GroupRemap) -> VectorTime {
    let mut out = vec![0u64; remap.new_len];
    for (old, slot) in remap.old_to_new.iter().enumerate() {
        if let Some(new) = slot {
            out[*new] = v.component(old);
        }
    }
    VectorTime::from(out)
}

/// How the multi-epoch engine runs each epoch.
#[derive(Debug, Clone, Default)]
pub struct ChurnConfig {
    /// Clock backend every epoch's runtime uses.
    pub backend: ClockBackend,
    /// Faults composed with the churn script (`at_op` indices restart
    /// each epoch; crashes remove the process permanently).
    pub fault: FaultPlan,
}

/// One epoch boundary, in the shape `synctime-store` persists: the epoch
/// it establishes, the per-process log lengths at the cut, and the edge
/// ops as `(kind, u, v)` triples (0 = insert, 1 = remove).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochBoundary {
    /// The epoch this boundary establishes.
    pub epoch: u64,
    /// Per-process cumulative log lengths before the new epoch's entries.
    pub cuts: Vec<u64>,
    /// The edge edits, encoded as `(kind, u, v)`.
    pub ops: Vec<(u8, u64, u64)>,
}

/// What one epoch looked like when it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// The active process set.
    pub active: Vec<usize>,
    /// Stamp dimension (decomposition groups) of this epoch.
    pub dim: usize,
    /// Microseconds the reconfiguration *into* this epoch took
    /// (edge ops + remap + baseline rebase + runtime swap); 0 for epoch 0.
    pub reconfigure_micros: u64,
    /// Processes whose behavior completed without error.
    pub survivors: usize,
}

/// The result of a multi-epoch churn run: per-process logs concatenated
/// across epochs, the boundaries that cut them, and per-epoch reports.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// The fixed process universe.
    pub universe: usize,
    /// Per-process logs, all epochs concatenated in order.
    pub logs: Vec<Vec<LogEntry>>,
    /// The epoch boundaries (one per reconfiguration, in epoch order).
    pub boundaries: Vec<EpochBoundary>,
    /// One report per epoch, in order.
    pub epochs: Vec<EpochReport>,
    /// Run statistics merged across every epoch.
    pub stats: RunStats,
    /// First terminal outcome per process (`"epoch N: <error>"`), `None`
    /// for processes that completed every epoch cleanly.
    pub outcomes: Vec<Option<String>>,
}

impl ChurnRun {
    /// The last epoch executed.
    pub fn final_epoch(&self) -> u64 {
        self.boundaries.len() as u64
    }

    /// The per-process logs of the final epoch alone (each process's
    /// suffix past the last boundary's cut) — complete and key-unique, so
    /// they reconstruct directly.
    pub fn final_epoch_logs(&self) -> Vec<Vec<LogEntry>> {
        let Some(last) = self.boundaries.last() else {
            return self.logs.clone();
        };
        self.logs
            .iter()
            .zip(&last.cuts)
            .map(|(log, &cut)| log.get(cut as usize..).unwrap_or(&[]).to_vec())
            .collect()
    }
}

/// Runs a churn plan end to end in one OS process: every epoch is a
/// [`Runtime::run_tolerant`] over the epoch's ring, and every boundary is
/// the full quiesce → apply-ops → rebase → [`Runtime::apply_reconfigure`]
/// sequence the distributed control plane performs over sockets.
///
/// # Errors
///
/// [`ChurnError::InvalidPlan`] for a malformed plan,
/// [`ChurnError::Graph`] when an edge edit is rejected, and
/// [`ChurnError::Runtime`] when the backend cannot hold an epoch's
/// dimension or a reconfiguration is refused.
pub fn run_churn(plan: &ChurnPlan, cfg: &ChurnConfig) -> Result<ChurnRun, ChurnError> {
    let actives = plan.active_sets()?;
    let topo0 = epoch_topology(plan.universe, &actives[0])?;
    let mut inc = IncrementalDecomposition::new(&topo0);
    let mut runtime = Runtime::new(&topo0, inc.decomposition()).with_clock(cfg.backend)?;
    if !cfg.fault.is_empty() {
        runtime = runtime.with_fault_injector(Arc::new(cfg.fault.clone()));
    }

    let mut logs: Vec<Vec<LogEntry>> = vec![Vec::new(); plan.universe];
    let mut alive = vec![true; plan.universe];
    let mut boundaries = Vec::new();
    let mut reports = Vec::new();
    let mut epoch_stats = Vec::new();
    let mut outcomes: Vec<Option<String>> = vec![None; plan.universe];
    let mut enter_micros = 0u64;

    for (e, active) in actives.iter().enumerate() {
        let rounds = match plan.events.get(e) {
            Some(ev) => ev.after_rounds,
            None => plan.tail_rounds,
        };
        let behaviors = ring_behaviors(plan.universe, active, &alive, rounds);
        let run = runtime.run_tolerant(behaviors);
        for (p, outcome) in run.outcomes().iter().enumerate() {
            if matches!(outcome, Some(RuntimeError::FaultInjected { .. })) {
                alive[p] = false;
            }
            if let Some(err) = outcome {
                if outcomes[p].is_none() {
                    outcomes[p] = Some(format!("epoch {e}: {err}"));
                }
            }
        }
        epoch_stats.push(run.stats().clone());
        for (p, log) in run.logs().iter().enumerate() {
            logs[p].extend_from_slice(log);
        }
        reports.push(EpochReport {
            epoch: e as u64,
            active: active.clone(),
            dim: inc.decomposition().len(),
            reconfigure_micros: enter_micros,
            survivors: run.survivors(),
        });

        if e + 1 < actives.len() {
            let started = Instant::now();
            let ops = edge_ops(active, &actives[e + 1]);
            let remap = inc.apply_ops(&ops)?;
            let mut old_baseline = VectorTime::zero(remap.old_to_new.len());
            for clock in run.final_clocks() {
                old_baseline
                    .merge_max(clock)
                    .map_err(|err| ChurnError::InvalidPlan(format!("clock merge: {err}")))?;
            }
            let applied = AppliedReconfigure {
                epoch: (e + 1) as u64,
                topology: inc.graph().clone(),
                decomposition: inc.decomposition().clone(),
                baseline: rebase(&old_baseline, &remap),
                remap,
            };
            runtime.apply_reconfigure(&applied)?;
            enter_micros = started.elapsed().as_micros() as u64;
            boundaries.push(EpochBoundary {
                epoch: (e + 1) as u64,
                cuts: logs.iter().map(|l| l.len() as u64).collect(),
                ops: ops
                    .iter()
                    .map(|op| match *op {
                        EdgeOp::Insert(u, v) => (0u8, u as u64, v as u64),
                        EdgeOp::Remove(u, v) => (1u8, u as u64, v as u64),
                    })
                    .collect(),
            });
        }
    }

    Ok(ChurnRun {
        universe: plan.universe,
        logs,
        boundaries,
        epochs: reports,
        stats: RunStats::merged(&epoch_stats),
        outcomes,
    })
}

/// The token-ring behavior of one process for one epoch: the lowest
/// active process starts each lap (send then receive), everyone else
/// relays (receive then send). Processes outside the active set idle —
/// the same behavior a distributed `serve-node` runs for its slice of a
/// churn epoch, so local and distributed churn runs are comparable
/// rendezvous-for-rendezvous.
pub fn ring_behavior(active: &[usize], process: usize, rounds: u64) -> Behavior {
    let k = active.len();
    match active.iter().position(|&a| a == process) {
        Some(i) if k >= 2 => {
            let prev = active[(i + k - 1) % k];
            let next = active[(i + 1) % k];
            let head = i == 0;
            Box::new(move |ctx| {
                for lap in 0..rounds {
                    if head {
                        ctx.send(next, lap)?;
                        ctx.receive_from(prev)?;
                    } else {
                        let (token, _) = ctx.receive_from(prev)?;
                        ctx.send(next, token)?;
                    }
                }
                Ok(())
            })
        }
        _ => Box::new(|_| Ok(())),
    }
}

/// Token-ring behaviors for one epoch across the whole universe: active
/// live processes run [`ring_behavior`]; inactive or dead processes idle
/// (their mailboxes close immediately, so ring neighbours of a dead
/// member observe `PeerTerminated` rather than hanging).
fn ring_behaviors(universe: usize, active: &[usize], alive: &[bool], rounds: u64) -> Vec<Behavior> {
    (0..universe)
        .map(|p| {
            if alive[p] {
                ring_behavior(active, p, rounds)
            } else {
                Box::new(|_: &mut synctime_runtime::ProcessCtx| Ok(())) as Behavior
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synctime_runtime::reconstruct_from_logs;
    use synctime_trace::Oracle;

    fn sample_plan() -> ChurnPlan {
        ChurnPlan {
            universe: 6,
            initial: vec![0, 1, 2, 3],
            events: vec![
                ChurnEvent {
                    after_rounds: 2,
                    kind: ChurnKind::Join { process: 4 },
                },
                ChurnEvent {
                    after_rounds: 2,
                    kind: ChurnKind::Leave { process: 1 },
                },
                ChurnEvent {
                    after_rounds: 2,
                    kind: ChurnKind::Swap {
                        leaving: 2,
                        joining: 5,
                    },
                },
            ],
            tail_rounds: 2,
        }
    }

    #[test]
    fn json_roundtrip_including_swap() {
        let plan = sample_plan();
        let json = plan.to_json();
        assert!(json.contains("\"join\""), "got: {json}");
        assert!(json.contains("\"swap\""), "got: {json}");
        let back = ChurnPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn active_sets_follow_the_script() {
        let sets = sample_plan().active_sets().unwrap();
        assert_eq!(
            sets,
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2, 3, 4],
                vec![0, 2, 3, 4],
                vec![0, 3, 4, 5],
            ]
        );
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut bad = sample_plan();
        bad.events.push(ChurnEvent {
            after_rounds: 1,
            kind: ChurnKind::Leave { process: 0 },
        });
        assert!(matches!(bad.validate(), Err(ChurnError::InvalidPlan(_))));

        let mut bad = sample_plan();
        bad.events[0] = ChurnEvent {
            after_rounds: 1,
            kind: ChurnKind::Join { process: 1 },
        };
        assert!(matches!(bad.validate(), Err(ChurnError::InvalidPlan(_))));

        let mut bad = sample_plan();
        bad.initial = vec![1, 2];
        assert!(matches!(bad.validate(), Err(ChurnError::InvalidPlan(_))));
    }

    #[test]
    fn union_topology_covers_every_epoch_ring() {
        let plan = sample_plan();
        let union = plan.union_topology().unwrap();
        for set in plan.active_sets().unwrap() {
            for (u, v) in ring_edges(&set) {
                assert!(
                    union.edges().any(|e| e.lo() == u && e.hi() == v),
                    "union topology missing ring edge ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn random_plans_are_seeded_and_valid() {
        let a = ChurnPlan::random(7, 5, 3, &mut StdRng::seed_from_u64(11));
        let b = ChurnPlan::random(7, 5, 3, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b, "same seed must yield the same plan");
        let c = ChurnPlan::random(7, 5, 3, &mut StdRng::seed_from_u64(12));
        assert_ne!(a, c, "different seeds should differ");
        a.validate().unwrap();
        assert_eq!(a.events.len(), 5);
        assert!(a.events.iter().all(|e| e.after_rounds >= 1));
    }

    #[test]
    fn run_churn_executes_every_epoch_and_cuts_consistently() {
        let plan = sample_plan();
        let run = run_churn(&plan, &ChurnConfig::default()).unwrap();
        assert_eq!(run.epochs.len(), 4);
        assert_eq!(run.boundaries.len(), 3);
        assert_eq!(run.logs.len(), 6);
        // Cuts are non-decreasing per process and bounded by log lengths.
        for p in 0..run.universe {
            let mut prev = 0u64;
            for b in &run.boundaries {
                assert!(b.cuts[p] >= prev);
                assert!(b.cuts[p] as usize <= run.logs[p].len());
                prev = b.cuts[p];
            }
        }
        // Every reconfiguration carried at least one edge op.
        assert!(run.boundaries.iter().all(|b| !b.ops.is_empty()));
        // Reconfigurations into epochs 1.. were timed.
        assert!(run.epochs[0].reconfigure_micros == 0);
        // The final epoch's logs reconstruct on their own and their stamps
        // encode the synchronous order of the reconstructed computation.
        let segment = run.final_epoch_logs();
        let (comp, stamps) = reconstruct_from_logs(&segment).unwrap();
        assert_eq!(comp.message_count(), 2 * 4, "2 laps around a 4-ring");
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn crash_faults_compose_and_remove_the_victim_for_good() {
        let plan = sample_plan();
        let cfg = ChurnConfig {
            backend: ClockBackend::default(),
            fault: FaultPlan {
                faults: vec![FaultEvent {
                    process: 3,
                    at_op: 1,
                    kind: FaultKind::Crash,
                }],
            },
        };
        let run = run_churn(&plan, &cfg).unwrap();
        assert_eq!(run.epochs.len(), 4);
        // Epoch 0 lost at least the victim.
        assert!(run.epochs[0].survivors < 4);
        // Process 3 logged nothing after the first boundary: it is dead.
        let first_cut = run.boundaries[0].cuts[3];
        assert_eq!(run.logs[3].len() as u64, first_cut);
        // The coordinator kept making progress in later epochs.
        let last_cut = run.boundaries[2].cuts[0];
        assert!(run.logs[0].len() as u64 > last_cut || run.logs[0].len() as u64 >= first_cut);
    }
}
