//! Deterministic fault schedules for the rendezvous runtime.
//!
//! A [`FaultPlan`] is a seeded, serialisable script of faults — crashes,
//! rendezvous delays, and forced delta-stream desyncs — keyed by
//! `(process, op_index)`. It implements the runtime's
//! [`FaultInjector`] hook, so the same plan drives the same failures on
//! every run: fault experiments are as reproducible as the fault-free
//! workloads in [`workload`](crate::workload).
//!
//! Plans round-trip through JSON (`synctime run --fault-plan plan.json`):
//!
//! ```json
//! {"faults": [
//!   {"process": 2, "at_op": 7, "kind": "crash"},
//!   {"process": 1, "at_op": 3, "kind": {"delay": {"ms": 5}}},
//!   {"process": 0, "at_op": 2, "kind": "desync"}
//! ]}
//! ```

use std::time::Duration;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use synctime_runtime::{FaultAction, FaultInjector};
use synctime_trace::ProcessId;

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Terminate the process at the operation boundary (typed
    /// `FaultInjected` error; peers observe `PeerTerminated`).
    #[serde(rename = "crash")]
    Crash,
    /// Stall the process this many milliseconds before the operation.
    #[serde(rename = "delay")]
    Delay {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Desynchronise the process's outgoing data delta stream at its next
    /// send, forcing the receiver through the full-vector resync path.
    #[serde(rename = "desync")]
    Desync,
}

/// One scheduled fault: `kind` fires when `process` reaches its
/// `at_op`-th rendezvous operation (sends and receives counted together,
/// from zero, in program order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The process the fault targets.
    pub process: usize,
    /// The operation index at which it fires.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, usable directly as the runtime's
/// [`FaultInjector`].
///
/// When several events share a `(process, at_op)` key, the first one in
/// `faults` wins — plans behave like ordered scripts, not sets.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in priority order.
    pub faults: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults — the runtime behaves exactly as if no
    /// injector were configured.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates a random plan: `crashes` *distinct* processes crash (so at
    /// most `process_count` processes can be named, and `k < N` crash plans
    /// always leave survivors), and `desyncs` desync events land on
    /// arbitrary processes. Every `at_op` is drawn uniformly from
    /// `0..max_op.max(1)`.
    ///
    /// Deterministic in the generator: the same seeded `rng` yields the
    /// same plan.
    pub fn random<R: Rng + ?Sized>(
        process_count: usize,
        max_op: u64,
        crashes: usize,
        desyncs: usize,
        rng: &mut R,
    ) -> Self {
        let op_bound = max_op.max(1);
        let mut victims: Vec<usize> = (0..process_count).collect();
        victims.shuffle(rng);
        victims.truncate(crashes.min(process_count));
        let mut faults: Vec<FaultEvent> = victims
            .into_iter()
            .map(|process| FaultEvent {
                process,
                at_op: rng.gen_range(0..op_bound),
                kind: FaultKind::Crash,
            })
            .collect();
        for _ in 0..desyncs {
            if process_count == 0 {
                break;
            }
            faults.push(FaultEvent {
                process: rng.gen_range(0..process_count),
                at_op: rng.gen_range(0..op_bound),
                kind: FaultKind::Desync,
            });
        }
        FaultPlan { faults }
    }

    /// Pretty-printed JSON rendering of the plan.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FaultPlan serialises infallibly")
    }

    /// Parses a plan previously produced by [`FaultPlan::to_json`] (or
    /// written by hand in the same shape).
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl FaultInjector for FaultPlan {
    fn action(&self, process: ProcessId, op_index: u64) -> FaultAction {
        self.faults
            .iter()
            .find(|e| e.process == process && e.at_op == op_index)
            .map(|e| match e.kind {
                FaultKind::Crash => FaultAction::Crash,
                FaultKind::Delay { ms } => FaultAction::Delay(Duration::from_millis(ms)),
                FaultKind::Desync => FaultAction::DesyncNext,
            })
            .unwrap_or(FaultAction::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> FaultPlan {
        FaultPlan {
            faults: vec![
                FaultEvent {
                    process: 2,
                    at_op: 7,
                    kind: FaultKind::Crash,
                },
                FaultEvent {
                    process: 1,
                    at_op: 3,
                    kind: FaultKind::Delay { ms: 5 },
                },
                FaultEvent {
                    process: 0,
                    at_op: 2,
                    kind: FaultKind::Desync,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let plan = sample();
        let json = plan.to_json();
        assert!(json.contains("\"crash\""), "got: {json}");
        assert!(json.contains("\"delay\""), "got: {json}");
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parses_handwritten_plan() {
        let plan = FaultPlan::from_json(
            r#"{"faults": [
                {"process": 2, "at_op": 7, "kind": "crash"},
                {"process": 1, "at_op": 3, "kind": {"delay": {"ms": 5}}},
                {"process": 0, "at_op": 2, "kind": "desync"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(plan, sample());
    }

    #[test]
    fn injector_maps_events_to_actions() {
        let plan = sample();
        assert_eq!(plan.action(2, 7), FaultAction::Crash);
        assert_eq!(
            plan.action(1, 3),
            FaultAction::Delay(Duration::from_millis(5))
        );
        assert_eq!(plan.action(0, 2), FaultAction::DesyncNext);
        assert_eq!(plan.action(0, 3), FaultAction::None);
        assert_eq!(plan.action(3, 7), FaultAction::None);
    }

    #[test]
    fn first_matching_event_wins() {
        let plan = FaultPlan {
            faults: vec![
                FaultEvent {
                    process: 0,
                    at_op: 0,
                    kind: FaultKind::Desync,
                },
                FaultEvent {
                    process: 0,
                    at_op: 0,
                    kind: FaultKind::Crash,
                },
            ],
        };
        assert_eq!(plan.action(0, 0), FaultAction::DesyncNext);
    }

    #[test]
    fn random_plans_are_seeded_and_crash_distinct_processes() {
        let a = FaultPlan::random(6, 10, 3, 2, &mut StdRng::seed_from_u64(42));
        let b = FaultPlan::random(6, 10, 3, 2, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b, "same seed must yield the same plan");
        let c = FaultPlan::random(6, 10, 3, 2, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c, "different seeds should differ");

        let crashed: Vec<usize> = a
            .faults
            .iter()
            .filter(|e| e.kind == FaultKind::Crash)
            .map(|e| e.process)
            .collect();
        assert_eq!(crashed.len(), 3);
        let mut dedup = crashed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), crashed.len(), "crash victims must be distinct");
        assert!(a.faults.iter().all(|e| e.process < 6 && e.at_op < 10));
        assert_eq!(
            a.faults
                .iter()
                .filter(|e| e.kind == FaultKind::Desync)
                .count(),
            2
        );
    }

    #[test]
    fn crash_requests_cap_at_process_count() {
        let plan = FaultPlan::random(3, 5, 10, 0, &mut StdRng::seed_from_u64(1));
        assert_eq!(plan.faults.len(), 3);
        assert!(FaultPlan::random(0, 5, 2, 2, &mut StdRng::seed_from_u64(1)).is_empty());
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        for p in 0..4 {
            for op in 0..4 {
                assert_eq!(plan.action(p, op), FaultAction::None);
            }
        }
    }
}
