//! Integration and property tests for the protocol v3 pipelined query
//! path: out-of-order ANSWER3 frames with shuffled correlation ids
//! reassemble into exactly what sequential v2 batches return, an unknown
//! correlation id is a typed, recoverable error that leaves the
//! connection alive, and batch chunking at exact `MAX_BATCH` multiples
//! sends no phantom trailing frame.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use proptest::prelude::*;
use synctime_core::{MessageTimestamps, VectorTime};
use synctime_net::query::{QUERY_CHAIN_OF, QUERY_CONCURRENT, QUERY_PRECEDES};
use synctime_net::{
    answer_query, serve_fabric, BatchEntry, BatchQuery, Frame, FrameReader, NetError, QueryClient,
    QueryFabric, MAX_BATCH, PROTOCOL_VERSION,
};

/// m0 < m1, m0 < m2, m1 ∥ m2, m1 < m3, m2 < m3.
fn diamond() -> MessageTimestamps {
    MessageTimestamps::new(vec![
        VectorTime::from(vec![1, 0]),
        VectorTime::from(vec![2, 0]),
        VectorTime::from(vec![1, 1]),
        VectorTime::from(vec![2, 2]),
    ])
}

/// An 8-message chain: m_i < m_j iff i < j.
fn chain() -> MessageTimestamps {
    MessageTimestamps::new((1..=8).map(|i| VectorTime::from(vec![i])).collect())
}

fn fabric_server(fabric: QueryFabric, workers: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let fabric = Arc::new(fabric);
    std::thread::spawn(move || {
        let _ = serve_fabric(listener, fabric, workers);
    });
    addr
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher-Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Answers one HELLO and returns the reader (which may have buffered past
/// the handshake).
fn mock_handshake(stream: &mut TcpStream) -> FrameReader {
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16384];
    loop {
        match reader.next_frame().expect("handshake frame") {
            Some(Frame::Hello { .. }) => break,
            Some(other) => panic!("expected HELLO, got {other:?}"),
            None => {
                let n = stream.read(&mut buf).expect("handshake read");
                assert!(n > 0, "client closed during handshake");
                reader.feed(&buf[..n]);
            }
        }
    }
    stream
        .write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                topology_hash: 0,
                process: u32::MAX,
            }
            .encode()
            .expect("HELLO encodes"),
        )
        .expect("handshake reply");
    reader
}

/// A mock v3 server that answers deliberately out of order. Each entry of
/// `rounds` is a count of QUERY3 frames to collect before answering them
/// all, in the order `permutation(count, seed)`. Before the *first*
/// round's answers, it injects one stray ANSWER3 per entry of
/// `stray_corrs` — correlation ids matching no request.
fn shuffled_answer_server(
    stamps: MessageTimestamps,
    rounds: Vec<usize>,
    seed: u64,
    stray_corrs: Vec<u32>,
) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = mock_handshake(&mut stream);
        let mut buf = [0u8; 16384];
        let mut strays = Some(stray_corrs);
        for expect in rounds {
            let mut batches: Vec<(u32, Vec<BatchEntry>)> = Vec::new();
            while batches.len() < expect {
                match reader.next_frame().expect("query frame") {
                    Some(Frame::QueryPipelined {
                        corr,
                        trace: _,
                        queries,
                    }) => {
                        let entries = queries
                            .iter()
                            .map(|q| match answer_query(&stamps, q.kind, q.m1, q.m2) {
                                Ok(body) => BatchEntry::Answer(body),
                                Err(NetError::Query(detail)) => BatchEntry::Error(detail),
                                Err(e) => BatchEntry::Error(e.to_string()),
                            })
                            .collect();
                        batches.push((corr, entries));
                    }
                    Some(other) => panic!("expected QUERY3, got {other:?}"),
                    None => {
                        let n = stream.read(&mut buf).expect("read");
                        if n == 0 {
                            return;
                        }
                        reader.feed(&buf[..n]);
                    }
                }
            }
            for corr in strays.take().into_iter().flatten() {
                stream
                    .write_all(
                        &Frame::AnswerPipelined {
                            corr,
                            entries: vec![BatchEntry::Answer(vec![1])],
                        }
                        .encode()
                        .expect("stray encodes"),
                    )
                    .expect("stray answer");
            }
            for &slot in &permutation(batches.len(), seed) {
                let (corr, entries) = batches[slot].clone();
                stream
                    .write_all(
                        &Frame::AnswerPipelined { corr, entries }
                            .encode()
                            .expect("answer encodes"),
                    )
                    .expect("answer");
            }
        }
        // Keep the socket open until the client hangs up, so nothing the
        // client still wants to read is lost to a RST.
        let _ = stream.read(&mut buf);
    });
    addr
}

/// Pipelined answers against the *real* fabric server match the v2
/// lock-step path, at every window width.
#[test]
fn pipelined_bools_match_v2_on_a_live_fabric() {
    let stamps = chain();
    let fabric = QueryFabric::new(4);
    fabric.publish("t", stamps.clone());
    let addr = fabric_server(fabric, 1);

    let mut pairs = Vec::new();
    for m1 in 0..stamps.len() as u32 {
        for m2 in 0..stamps.len() as u32 {
            pairs.push((m1, m2));
        }
    }
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    let expected = client.precedes_many("t", &pairs).expect("v2 answers");
    for window in [1, 4, 16] {
        let got = client
            .precedes_many_pipelined("t", &pairs, 5, window)
            .expect("pipelined answers");
        assert_eq!(got, expected, "window {window}");
    }
}

/// An unknown correlation id surfaces as the typed
/// [`NetError::Correlation`] and the connection stays alive: draining
/// again completes the real batches, and a *second* pipeline on the same
/// connection works.
#[test]
fn unknown_correlation_id_is_typed_and_recoverable() {
    let stamps = diamond();
    // Two submits per pipeline session, strays injected before the first
    // session's answers.
    let addr = shuffled_answer_server(stamps, vec![2, 2], 7, vec![999, 2]);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    let queries = [
        BatchQuery {
            kind: QUERY_PRECEDES,
            m1: 0,
            m2: 3,
        },
        BatchQuery {
            kind: QUERY_PRECEDES,
            m1: 3,
            m2: 0,
        },
    ];

    let mut pipeline = client.pipeline(8);
    assert_eq!(pipeline.submit("t", &queries[..1]).expect("submit"), 0);
    assert_eq!(pipeline.submit("t", &queries[1..]).expect("submit"), 1);
    // Stray corr 999: never issued. Stray corr 2: not in flight (only
    // slots 0 and 1 exist). Both are typed and each consumes one frame.
    assert!(matches!(pipeline.drain(), Err(NetError::Correlation(999))));
    assert!(matches!(pipeline.drain(), Err(NetError::Correlation(2))));
    let results = pipeline.finish().expect("recovered finish");
    assert_eq!(results[0], vec![BatchEntry::Answer(vec![1])]);
    assert_eq!(results[1], vec![BatchEntry::Answer(vec![0])]);

    // Same connection, fresh pipeline: still serviceable.
    let mut again = client.pipeline(2);
    again.submit("t", &queries[..1]).expect("submit again");
    again.submit("t", &queries[1..]).expect("submit again");
    let results = again.finish().expect("second session");
    assert_eq!(results[0], vec![BatchEntry::Answer(vec![1])]);
    assert_eq!(results[1], vec![BatchEntry::Answer(vec![0])]);
}

/// Chunking regression: batches of exactly `MAX_BATCH` and exactly
/// `2 * MAX_BATCH` queries round-trip with one entry per query (the seed
/// bug sent a phantom trailing frame at exact multiples, desynchronising
/// the stream). An empty batch still validates its trace id.
#[test]
fn batch_chunking_at_exact_max_batch_multiples() {
    let stamps = diamond();
    let fabric = QueryFabric::new(2);
    fabric.publish("t", stamps.clone());
    let addr = fabric_server(fabric, 1);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");

    for total in [MAX_BATCH, 2 * MAX_BATCH] {
        let queries: Vec<BatchQuery> = (0..total)
            .map(|i| BatchQuery {
                kind: QUERY_PRECEDES,
                m1: (i % 4) as u32,
                m2: ((i / 4) % 4) as u32,
            })
            .collect();
        let entries = client.batch("t", &queries).expect("exact-multiple batch");
        assert_eq!(entries.len(), total);
        for (q, entry) in queries.iter().zip(&entries) {
            let expected = answer_query(&stamps, q.kind, q.m1, q.m2).expect("in range");
            assert_eq!(entry, &BatchEntry::Answer(expected));
        }
        // The connection is still framed correctly after the exact
        // multiple: a follow-up single query answers.
        assert!(client.precedes_on("t", 0, 3).expect("still in sync"));
    }

    // Empty batch: no entries, but the trace id is still validated
    // server-side (one frame goes out even with nothing to ask).
    assert_eq!(client.batch("t", &[]).expect("empty batch"), vec![]);
    let err = client.batch("missing", &[]).unwrap_err();
    assert!(
        matches!(&err, NetError::Query(m) if m.contains("unknown trace")),
        "{err}"
    );
}

prop_compose! {
    /// A query over the 4-message diamond, with ids ranging past the
    /// trace (0..6) so some entries fail and carry error bodies.
    fn arb_query()(k in 0u8..4, m1 in 0u32..6, m2 in 0u32..6) -> BatchQuery {
        BatchQuery {
            kind: match k {
                0 => QUERY_PRECEDES,
                1 => QUERY_CONCURRENT,
                _ => QUERY_CHAIN_OF,
            },
            m1,
            m2,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Out-of-order ANSWER3 reassembly: batches answered in a shuffled
    /// order by a mock server produce exactly the entries sequential v2
    /// batches produce against the real fabric — including error entries
    /// for out-of-range ids.
    #[test]
    fn shuffled_answers_reassemble_like_sequential_v2(
        shuffle_seed in any::<u64>(),
        window in 1usize..10,
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_query(), 1..5),
            1..7,
        ),
    ) {
        let stamps = diamond();

        // Ground truth: sequential v2 batches against the real fabric.
        let fabric = QueryFabric::new(2);
        fabric.publish("t", stamps.clone());
        let v2_addr = fabric_server(fabric, 1);
        let mut v2 = QueryClient::connect(&v2_addr.to_string()).expect("connect v2");
        let expected: Vec<Vec<BatchEntry>> = batches
            .iter()
            .map(|b| v2.batch("t", b).expect("v2 batch"))
            .collect();

        // Pipelined against the shuffling mock. The window must admit
        // every batch before any answer is read, because the mock only
        // answers once it holds all of them.
        let window = window.max(batches.len());
        let addr = shuffled_answer_server(stamps, vec![batches.len()], shuffle_seed, vec![]);
        let mut client = QueryClient::connect(&addr.to_string()).expect("connect v3");
        let mut pipeline = client.pipeline(window);
        for (i, batch) in batches.iter().enumerate() {
            prop_assert_eq!(pipeline.submit("t", batch).expect("submit"), i);
        }
        let got = pipeline.finish().expect("finish");
        prop_assert_eq!(got, expected);
    }
}
