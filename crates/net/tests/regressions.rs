//! Regression tests for three serving-path bugs:
//!
//! 1. pipelined correlation ids were the slot index cast to `u32`, so a
//!    session past 2^32 submissions wrapped onto a still-meaningful id —
//!    ids are now a wrapping counter that skips in-flight ids;
//! 2. `Pipeline::finish` papered over an unanswered slot with an empty
//!    entry list — it now returns a typed `NetError::Incomplete`;
//! 3. a QUERY2/QUERY3 trace id longer than 65535 bytes was silently
//!    truncated by the `u16` length cast — now a typed error on the
//!    encode path, mirrored by a decode-side cap.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

use synctime_core::{MessageTimestamps, VectorTime};
use synctime_net::query::QUERY_PRECEDES;
use synctime_net::{
    encode_query_batch_into, serve_fabric, BatchEntry, BatchQuery, Frame, FrameReader, NetError,
    QueryBatchView, QueryClient, QueryFabric, MAX_TRACE_NAME, PROTOCOL_VERSION,
};

/// m0 < m1, m0 < m2, m1 ∥ m2, m1 < m3, m2 < m3.
fn diamond() -> MessageTimestamps {
    MessageTimestamps::new(vec![
        VectorTime::from(vec![1, 0]),
        VectorTime::from(vec![2, 0]),
        VectorTime::from(vec![1, 1]),
        VectorTime::from(vec![2, 2]),
    ])
}

fn fabric_server(fabric: QueryFabric, workers: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let fabric = Arc::new(fabric);
    std::thread::spawn(move || {
        let _ = serve_fabric(listener, fabric, workers);
    });
    addr
}

/// Correlation ids survive crossing `u32::MAX`: a pipeline started three
/// ids shy of the wrap point submits well past it against a live server,
/// and every slot still reassembles to the right answer. Under the old
/// slot-index scheme the ids after the wrap would collide with slots 0..3
/// and the session would desynchronise.
#[test]
fn correlation_ids_survive_u32_wraparound() {
    let fabric = QueryFabric::new(2);
    fabric.publish("d", diamond());
    let addr = fabric_server(fabric, 2);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    let mut pipeline = client.pipeline_at(3, u32::MAX - 2);
    // Truth for (i, i+1 mod 4) precedes queries on the diamond.
    let pairs: [(u32, u32, bool); 4] = [(0, 1, true), (1, 2, false), (2, 3, true), (3, 0, false)];
    let mut slots = Vec::new();
    for _round in 0..2 {
        for &(m1, m2, _) in &pairs {
            let slot = pipeline
                .submit(
                    "d",
                    &[BatchQuery {
                        kind: QUERY_PRECEDES,
                        m1,
                        m2,
                    }],
                )
                .expect("submit across the wrap");
            // Slots keep counting past the id wrap.
            assert_eq!(slot, slots.len());
            slots.push(slot);
        }
    }
    let results = pipeline.finish().expect("finish");
    assert_eq!(results.len(), 8);
    for (i, slot) in slots.iter().enumerate() {
        let expect = pairs[i % 4].2;
        assert_eq!(
            results[*slot],
            vec![BatchEntry::Answer(vec![u8::from(expect)])],
            "slot {slot} answered wrong across the wrap"
        );
    }
}

/// A mock v3 server that answers every QUERY3 *except* the one whose
/// correlation id equals `withhold`, then closes the connection.
fn withholding_server(stamps: MessageTimestamps, withhold: u32, expect: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 16384];
        // Handshake: wait for the client HELLO, answer with ours.
        loop {
            match reader.next_frame().expect("handshake frame") {
                Some(Frame::Hello { .. }) => break,
                Some(other) => panic!("expected HELLO, got {other:?}"),
                None => {
                    let n = stream.read(&mut buf).expect("read");
                    assert!(n > 0, "client closed during handshake");
                    reader.feed(&buf[..n]);
                }
            }
        }
        stream
            .write_all(
                &Frame::Hello {
                    version: PROTOCOL_VERSION,
                    topology_hash: 0,
                    process: u32::MAX,
                }
                .encode()
                .expect("HELLO encodes"),
            )
            .expect("handshake reply");
        let mut seen = 0usize;
        while seen < expect {
            match reader.next_frame().expect("query frame") {
                Some(Frame::QueryPipelined {
                    corr,
                    trace: _,
                    queries,
                }) => {
                    seen += 1;
                    if corr == withhold {
                        continue; // swallow this batch: no ANSWER3 ever
                    }
                    let entries = queries
                        .iter()
                        .map(|q| {
                            synctime_net::answer_query(&stamps, q.kind, q.m1, q.m2)
                                .map(BatchEntry::Answer)
                                .unwrap_or_else(|e| BatchEntry::Error(e.to_string()))
                        })
                        .collect();
                    stream
                        .write_all(
                            &Frame::AnswerPipelined { corr, entries }
                                .encode()
                                .expect("answer encodes"),
                        )
                        .expect("answer");
                }
                Some(other) => panic!("expected QUERY3, got {other:?}"),
                None => {
                    let n = stream.read(&mut buf).expect("read");
                    if n == 0 {
                        return;
                    }
                    reader.feed(&buf[..n]);
                }
            }
        }
        // Close without answering the withheld batch.
    });
    addr
}

/// A server that never answers one in-flight batch produces a typed
/// error from `finish`, never a fabricated empty entry list. (The old
/// code's `unwrap_or_default` would have returned `vec![]` for the hole
/// and misaligned every later slot against its queries.)
#[test]
fn withheld_answer_is_a_typed_error_not_an_empty_result() {
    let addr = withholding_server(diamond(), 1, 3);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    let mut pipeline = client.pipeline(8);
    let q = |m1, m2| BatchQuery {
        kind: QUERY_PRECEDES,
        m1,
        m2,
    };
    pipeline.submit("", &[q(0, 1)]).expect("submit 0");
    pipeline
        .submit("", &[q(1, 2)])
        .expect("submit 1 (withheld)");
    pipeline.submit("", &[q(2, 3)]).expect("submit 2");
    match pipeline.finish() {
        Ok(results) => panic!("finish fabricated {results:?} despite a withheld answer"),
        // The server hangs up after the answered batches, so the drain
        // hits the close while slot 1 is still unanswered.
        Err(NetError::Closed) | Err(NetError::Incomplete { slot: 1 }) => {}
        Err(other) => panic!("expected Closed or Incomplete {{ slot: 1 }}, got {other}"),
    }
}

/// Oversized trace ids are refused with a typed error everywhere they
/// could enter the wire — batch and pipelined clients, the owned frame
/// encoder, and the decode path — instead of being truncated by the
/// `u16` length cast (the original bug: a 65537-byte name encoded a
/// 1-byte length and desynchronised the frame).
#[test]
fn oversized_trace_ids_are_typed_errors_on_every_path() {
    let long = "t".repeat(MAX_TRACE_NAME + 1);

    // Encode helper: typed error, nothing appended.
    let mut out = Vec::new();
    match encode_query_batch_into(&mut out, None, &long, &[]) {
        Err(NetError::Query(detail)) => assert!(detail.contains("bound"), "{detail}"),
        other => panic!("expected a typed Query error, got {other:?}"),
    }
    assert!(out.is_empty(), "error path appended bytes");

    // Owned frame encoder (both batch shapes).
    assert!(matches!(
        Frame::QueryBatch {
            trace: long.clone(),
            queries: vec![],
        }
        .encode(),
        Err(NetError::Query(_))
    ));
    assert!(matches!(
        Frame::QueryPipelined {
            corr: 7,
            trace: long.clone(),
            queries: vec![],
        }
        .encode(),
        Err(NetError::Query(_))
    ));

    // Client entry points.
    let fabric = QueryFabric::new(1);
    fabric.publish("d", diamond());
    let addr = fabric_server(fabric, 1);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    assert!(matches!(client.batch(&long, &[]), Err(NetError::Query(_))));
    assert!(matches!(
        client.precedes_many_pipelined(&long, &[(0, 1)], 16, 4),
        Err(NetError::Query(_))
    ));
    let mut pipeline = client.pipeline(2);
    assert!(matches!(
        pipeline.submit(&long, &[]),
        Err(NetError::Query(_))
    ));
    drop(pipeline);

    // The connection survived every refusal: an in-bounds batch works.
    let entries = client
        .batch(
            "d",
            &[BatchQuery {
                kind: QUERY_PRECEDES,
                m1: 0,
                m2: 1,
            }],
        )
        .expect("in-bounds batch after refusals");
    assert_eq!(entries, vec![BatchEntry::Answer(vec![1])]);

    // Decode-side mirror: a hand-built body declaring an oversized trace
    // length is a protocol violation, not an allocation.
    let mut body = Vec::new();
    body.extend_from_slice(&(MAX_TRACE_NAME as u16 + 1).to_le_bytes());
    body.resize(2 + MAX_TRACE_NAME + 1 + 4, b't');
    assert!(matches!(
        QueryBatchView::parse(&body),
        Err(NetError::Protocol(_))
    ));
}

/// A long-but-in-bounds trace id round-trips unharmed — the cap is
/// exactly [`MAX_TRACE_NAME`], not an accidental tighter bound.
#[test]
fn max_length_trace_id_round_trips() {
    let name = "n".repeat(MAX_TRACE_NAME);
    let fabric = QueryFabric::new(1);
    fabric.publish(&name, diamond());
    let addr = fabric_server(fabric, 1);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    let entries = client
        .batch(
            &name,
            &[BatchQuery {
                kind: QUERY_PRECEDES,
                m1: 0,
                m2: 3,
            }],
        )
        .expect("max-length trace id");
    assert_eq!(entries, vec![BatchEntry::Answer(vec![1])]);
}
