//! Proof of the "allocation-free serving hot path" claim: a counting
//! global allocator wraps the system allocator, and after one warm-up
//! pump the steady-state QUERY3 answer loop — feed bytes, decode the
//! borrowed view, resolve the trace, answer into the scratch arena,
//! frame the ANSWER3 reply — performs **zero** heap allocations per
//! query.
//!
//! The test drives [`pump_frames`] directly rather than through a socket
//! so the count covers exactly the serving path (kernel socket buffers
//! are not heap allocations, but reading through a stream would blur
//! what is being asserted).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use synctime_core::{MessageTimestamps, VectorTime};
use synctime_net::query::{QUERY_CHAIN_OF, QUERY_CONCURRENT, QUERY_PRECEDES};
use synctime_net::{
    encode_query_batch_into, pump_frames, BatchQuery, FrameReader, FrameScratch, QueryFabric,
};

/// Counts every allocation (alloc, alloc_zeroed, realloc) made on the
/// recording thread while its flag is set — thread-local so the test
/// harness's own threads (progress printing, panic plumbing) cannot
/// pollute the count. Deallocations are free: returning warm capacity
/// is the whole point of the scratch design.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init: reading the flag from inside the allocator must not
    // itself allocate (lazy TLS init would recurse).
    static RECORDING: Cell<bool> = const { Cell::new(false) };
}

fn recording() -> bool {
    // try_with: TLS may already be torn down when late deallocations on
    // exiting threads reach the allocator.
    RECORDING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if recording() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if recording() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if recording() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A 16-message two-process trace with mixed precedence.
fn stamps() -> MessageTimestamps {
    MessageTimestamps::new(
        (0..16u64)
            .map(|i| VectorTime::from(vec![i / 2 + 1, i - i / 2]))
            .collect(),
    )
}

#[test]
fn steady_state_pump_allocates_nothing() {
    let fabric = QueryFabric::new(2);
    fabric.publish("t", stamps());

    // The client side of the exchange, encoded once up front: a full
    // QUERY3 batch mixing all three query kinds (chain-of answers are
    // the largest bodies, so the arena warms to its worst case).
    let queries: Vec<BatchQuery> = (0..256u32)
        .map(|i| BatchQuery {
            kind: match i % 3 {
                0 => QUERY_PRECEDES,
                1 => QUERY_CONCURRENT,
                _ => QUERY_CHAIN_OF,
            },
            m1: i % 16,
            m2: (i / 3) % 16,
        })
        .collect();
    let mut wire = Vec::new();
    encode_query_batch_into(&mut wire, Some(42), "t", &queries).expect("in-bounds batch");

    let mut reader = FrameReader::new();
    let mut scratch = FrameScratch::new();

    // Warm-up: one pump grows every buffer to its steady-state capacity.
    reader.feed(&wire);
    scratch.out.clear();
    assert!(pump_frames(&mut reader, &fabric, &mut scratch).expect("warm-up pump"));
    assert!(!scratch.out.is_empty(), "warm-up produced no answer");
    let expected = scratch.out.clone();

    // Steady state: many more pumps of the same batch, counted.
    ALLOCS.store(0, Ordering::SeqCst);
    RECORDING.with(|flag| flag.set(true));
    for _ in 0..64 {
        reader.feed(&wire);
        scratch.out.clear();
        assert!(pump_frames(&mut reader, &fabric, &mut scratch).expect("steady-state pump"));
    }
    RECORDING.with(|flag| flag.set(false));
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "steady-state serving path allocated {allocs} times over 64 pumps \
         (16384 queries) — the hot path must be allocation-free"
    );
    // And the warm path still answers correctly: byte-identical to the
    // warm-up answer.
    assert_eq!(scratch.out, expected);
}
