//! Property tests for the frame protocol: whatever TCP does to packet
//! boundaries, an encoded frame sequence decodes back exactly; whatever a
//! desynchronised stream looks like, the decoder errors instead of
//! misparsing or panicking.

use proptest::prelude::*;
use synctime_net::{
    BatchEntry, BatchQuery, Frame, FrameReader, NetError, MAX_BATCH, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

prop_compose! {
    fn arb_batch_query()(kind in any::<u8>(), m1 in any::<u32>(), m2 in any::<u32>())
        -> BatchQuery {
        BatchQuery { kind, m1, m2 }
    }
}

prop_compose! {
    fn arb_batch_entry()(
        is_error in any::<bool>(),
        bytes in collection::vec(any::<u8>(), 0..24),
    ) -> BatchEntry {
        if is_error {
            // Printable ASCII keeps the message valid UTF-8.
            BatchEntry::Error(bytes.iter().map(|b| char::from(b % 94 + 32)).collect())
        } else {
            BatchEntry::Answer(bytes)
        }
    }
}

prop_compose! {
    fn arb_frame()(
        tag in 0u8..9,
        key in any::<u64>(),
        payload in any::<u64>(),
        bytes in collection::vec(any::<u8>(), 0..80),
        version in any::<u16>(),
        hash in any::<u64>(),
        process in any::<u32>(),
        kind in any::<u8>(),
        m1 in any::<u32>(),
        m2 in any::<u32>(),
        queries in collection::vec(arb_batch_query(), 0..16),
        entries in collection::vec(arb_batch_entry(), 0..16),
    ) -> Frame {
        match tag {
            0 => Frame::Hello { version, topology_hash: hash, process },
            1 => Frame::Offer { key, payload, vector: bytes },
            2 => Frame::Ack { key, ack: bytes },
            3 => Frame::Resync { key },
            4 => Frame::Query { kind, m1, m2 },
            5 => Frame::Answer { body: bytes },
            6 => Frame::QueryBatch {
                // Printable ASCII keeps the trace id valid UTF-8.
                trace: bytes.iter().take(24).map(|b| char::from(b % 94 + 32)).collect(),
                queries,
            },
            7 => Frame::AnswerBatch { entries },
            // Printable ASCII keeps the message valid UTF-8.
            _ => Frame::Error {
                message: bytes.iter().map(|b| char::from(b % 94 + 32)).collect(),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode a frame sequence, re-chunk the byte stream at arbitrary
    /// boundaries (as TCP may), and decode: the exact sequence comes back.
    #[test]
    fn chunked_streams_decode_exactly(
        frames in collection::vec(arb_frame(), 1..12),
        cuts in collection::vec(1usize..64, 0..40),
    ) {
        let stream: Vec<u8> = frames
            .iter()
            .flat_map(|f| f.encode().expect("arbitrary frame encodes"))
            .collect();
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut rest = stream.as_slice();
        // Feed in the arbitrary chunk sizes, draining after every feed to
        // exercise every partial-frame state.
        for cut in cuts {
            if rest.is_empty() {
                break;
            }
            let take = cut.min(rest.len());
            reader.feed(&rest[..take]);
            rest = &rest[take..];
            while let Some(f) = reader.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        reader.feed(rest);
        while let Some(f) = reader.next_frame().unwrap() {
            decoded.push(f);
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.pending_bytes(), 0);
    }

    /// A frame re-decodes from its own encoding in one shot.
    #[test]
    fn single_frame_roundtrip(frame in arb_frame()) {
        let mut reader = FrameReader::new();
        reader.feed(&frame.encode().expect("arbitrary frame encodes"));
        prop_assert_eq!(reader.next_frame().unwrap(), Some(frame));
        prop_assert_eq!(reader.next_frame().unwrap(), None);
    }

    /// Arbitrary garbage either waits for more bytes or errors with a
    /// protocol diagnostic — it never panics and never yields errors of
    /// the wrong kind.
    #[test]
    fn garbage_never_panics(bytes in collection::vec(any::<u8>(), 0..200)) {
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        // Drain until quiescent; every outcome is acceptable except panic.
        for _ in 0..10 {
            match reader.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(NetError::Protocol(_)) => break,
                Err(other) => prop_assert!(false, "unexpected error variant: {other}"),
            }
        }
    }

    /// Truncated bodies for the fixed-size frame types are rejected, not
    /// zero-filled (HELLO needs 14 bytes, OFFER 16, ACK 8, RESYNC 8,
    /// QUERY 9 — all more than 7).
    #[test]
    fn truncated_fixed_bodies_error(ty in 0u8..5, body_len in 0usize..7) {
        let mut raw = Vec::new();
        raw.extend_from_slice(&(1 + body_len as u32).to_le_bytes());
        raw.push(ty);
        raw.extend_from_slice(&vec![0u8; body_len]);
        let mut reader = FrameReader::new();
        reader.feed(&raw);
        prop_assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
    }

    /// Length prefixes beyond the bound are rejected before any body bytes
    /// arrive.
    #[test]
    fn oversized_prefix_rejected(extra in 1u32..1000) {
        let mut reader = FrameReader::new();
        reader.feed(&(MAX_FRAME_LEN + extra).to_le_bytes());
        prop_assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
    }

    /// Truncating a batch frame's body (with the length prefix rewritten to
    /// match, as a buggy or malicious peer would send it) is always a
    /// protocol error: the declared trace length and query/entry counts no
    /// longer fit the bytes present.
    #[test]
    fn truncated_batch_bodies_error(
        queries in collection::vec(arb_batch_query(), 1..8),
        entries in collection::vec(arb_batch_entry(), 1..8),
        cut in 1usize..200,
        which in any::<bool>(),
    ) {
        let full = if which {
            Frame::QueryBatch { trace: "trace-a".to_string(), queries }.encode().unwrap()
        } else {
            Frame::AnswerBatch { entries }.encode().unwrap()
        };
        let body = &full[5..];
        let cut = cut.min(body.len() - 1).max(1);
        let kept = &body[..body.len() - cut];
        let mut raw = Vec::new();
        raw.extend_from_slice(&((kept.len() + 1) as u32).to_le_bytes());
        raw.push(full[4]);
        raw.extend_from_slice(kept);
        let mut reader = FrameReader::new();
        reader.feed(&raw);
        prop_assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
    }

    /// Any declared batch count beyond [`MAX_BATCH`] is rejected from the
    /// count field alone, before the decoder allocates for the entries.
    #[test]
    fn oversized_batch_counts_rejected(extra in 1u32..100_000, which in any::<bool>()) {
        let count = MAX_BATCH as u32 + extra;
        let mut body = Vec::new();
        let ty = if which {
            body.extend_from_slice(&0u16.to_le_bytes()); // empty trace id
            body.extend_from_slice(&count.to_le_bytes());
            7 // QUERY2
        } else {
            body.extend_from_slice(&count.to_le_bytes());
            8 // ANSWER2
        };
        let mut raw = Vec::new();
        raw.extend_from_slice(&((body.len() + 1) as u32).to_le_bytes());
        raw.push(ty);
        raw.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.feed(&raw);
        prop_assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
    }
}

prop_compose! {
    fn arb_raw_query()(kind in 0u8..4, m1 in any::<u32>(), m2 in any::<u32>())
        -> (u8, u32, u32) {
        (kind, m1, m2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The wire answers are invariant under the clock backend that stamped
    /// the underlying trace: for any query batch (valid ids, out-of-range
    /// ids, and unknown kinds alike), the v1 ANSWER frames and the v2
    /// ANSWER2 entries built from `TreeClock`- or `FixedArray`-stamped
    /// vectors are byte-identical to the dense ones.
    #[test]
    fn answer_bodies_invariant_under_clock_backend(
        n in 4usize..8,
        extra in 0usize..4,
        msgs in 2usize..30,
        seed in 0u64..5000,
        raw in collection::vec(arb_raw_query(), 1..16),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use synctime_core::clock::{ClockBackend, FixedArray16, TreeClock};
        use synctime_core::online::{stamp_computation_as, OnlineStamper};
        use synctime_core::MessageTimestamps;
        use synctime_graph::{decompose, topology};
        use synctime_net::answer_query;
        use synctime_sim::workload::RandomWorkload;

        let mut rng = StdRng::seed_from_u64(seed);
        let topo = topology::random_connected(n, extra, &mut rng);
        let comp = RandomWorkload::messages(msgs).generate(&topo, &mut rng);
        let dec = decompose::best_known(&topo);

        // Mix of in-range and out-of-range ids: error entries must be
        // invariant too.
        let bound = comp.message_count() as u32 + 2;
        let queries: Vec<BatchQuery> = raw
            .iter()
            .map(|&(kind, m1, m2)| BatchQuery { kind, m1: m1 % bound, m2: m2 % bound })
            .collect();

        let wire_for = |stamps: &MessageTimestamps| -> (Vec<Vec<u8>>, Vec<u8>) {
            let entries: Vec<BatchEntry> = queries
                .iter()
                .map(|q| match answer_query(stamps, q.kind, q.m1, q.m2) {
                    Ok(body) => BatchEntry::Answer(body),
                    Err(e) => BatchEntry::Error(e.to_string()),
                })
                .collect();
            let answers: Vec<Vec<u8>> = entries
                .iter()
                .filter_map(|e| match e {
                    BatchEntry::Answer(body) => {
                        Some(Frame::Answer { body: body.clone() }.encode().unwrap())
                    }
                    BatchEntry::Error(_) => None,
                })
                .collect();
            (answers, Frame::AnswerBatch { entries }.encode().unwrap())
        };

        let dense = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let (dense_answers, dense_batch) = wire_for(&dense);

        let tree = stamp_computation_as::<TreeClock>(&dec, &comp).unwrap();
        let (tree_answers, tree_batch) = wire_for(&tree);
        prop_assert_eq!(&tree_answers, &dense_answers, "ANSWER bodies diverged under tree");
        prop_assert_eq!(&tree_batch, &dense_batch, "ANSWER2 frame diverged under tree");

        if dec.len() <= ClockBackend::FIXED_CAPACITY {
            let fixed = stamp_computation_as::<FixedArray16>(&dec, &comp).unwrap();
            let (fixed_answers, fixed_batch) = wire_for(&fixed);
            prop_assert_eq!(&fixed_answers, &dense_answers, "ANSWER bodies diverged under fixed");
            prop_assert_eq!(&fixed_batch, &dense_batch, "ANSWER2 frame diverged under fixed");
        }
    }
}

/// A HELLO from a future protocol version parses as a frame (the header
/// layout is version-independent) so the handshake can refuse it with a
/// diagnostic rather than a framing error.
#[test]
fn future_version_hello_is_parseable_but_refusable() {
    let hello = Frame::Hello {
        version: PROTOCOL_VERSION + 1,
        topology_hash: 42,
        process: 0,
    };
    let mut reader = FrameReader::new();
    reader.feed(&hello.encode().expect("HELLO encodes"));
    match reader.next_frame().unwrap() {
        Some(Frame::Hello { version, .. }) => assert_eq!(version, PROTOCOL_VERSION + 1),
        other => panic!("expected HELLO, got {other:?}"),
    }
}
