//! Integration tests for the sharded multi-trace query fabric: a batched
//! v2 client against a catalog server answers **identically** to N
//! sequential v1 queries against per-trace v1 servers, trace-id failures
//! are recoverable, copy-on-write republish is visible to live
//! connections, and a one-worker pool still serves every connection.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

use synctime_core::{MessageTimestamps, VectorTime};
use synctime_net::query::{serve, QUERY_CHAIN_OF, QUERY_CONCURRENT, QUERY_PRECEDES};
use synctime_net::{
    answer_query, serve_fabric, BatchEntry, BatchQuery, NetError, QueryClient, QueryFabric,
    QueryService,
};

/// m0 < m1, m0 < m2, m1 ∥ m2, m1 < m3, m2 < m3.
fn diamond() -> MessageTimestamps {
    MessageTimestamps::new(vec![
        VectorTime::from(vec![1, 0]),
        VectorTime::from(vec![2, 0]),
        VectorTime::from(vec![1, 1]),
        VectorTime::from(vec![2, 2]),
    ])
}

/// A 5-message chain: m0 < m1 < m2 < m3 < m4.
fn chain() -> MessageTimestamps {
    MessageTimestamps::new(vec![
        VectorTime::from(vec![1]),
        VectorTime::from(vec![2]),
        VectorTime::from(vec![3]),
        VectorTime::from(vec![4]),
        VectorTime::from(vec![5]),
    ])
}

/// Two antichains: m0 ∥ m1, m2 ∥ m3, first pair below second.
fn lattice() -> MessageTimestamps {
    MessageTimestamps::new(vec![
        VectorTime::from(vec![1, 0]),
        VectorTime::from(vec![0, 1]),
        VectorTime::from(vec![2, 1]),
        VectorTime::from(vec![1, 2]),
    ])
}

fn fabric_server(fabric: QueryFabric, workers: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let fabric = Arc::new(fabric);
    std::thread::spawn(move || {
        let _ = serve_fabric(listener, fabric, workers);
    });
    addr
}

fn v1_server(stamps: MessageTimestamps) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = serve(listener, QueryService::new(stamps));
    });
    addr
}

/// The headline acceptance test: every query of every trace, asked (a) as
/// one big v2 batch against the sharded fabric, (b) sequentially over v1
/// frames against a dedicated single-trace server, and (c) locally via
/// `answer_query`, produces byte-identical answer bodies.
#[test]
fn batched_answers_match_sequential_v1_across_shards() {
    let traces: Vec<(&str, MessageTimestamps)> = vec![
        ("diamond", diamond()),
        ("chain", chain()),
        ("lattice", lattice()),
    ];
    let fabric = QueryFabric::new(4);
    for (name, stamps) in &traces {
        fabric.publish(name, stamps.clone());
    }
    // The three traces land on more than one shard (determinism makes this
    // a fixed fact of the ring, asserted so the test title stays honest).
    let shards: std::collections::HashSet<usize> = traces
        .iter()
        .map(|(name, _)| fabric.shard_of(name))
        .collect();
    assert!(shards.len() > 1, "traces all hashed to one shard");
    let fabric_addr = fabric_server(fabric, 2);
    let mut batch_client = QueryClient::connect(&fabric_addr.to_string()).expect("connect");

    for (name, stamps) in &traces {
        // Every (kind, m1, m2) combination over the trace's messages.
        let mut queries = Vec::new();
        for kind in [QUERY_PRECEDES, QUERY_CONCURRENT, QUERY_CHAIN_OF] {
            for m1 in 0..stamps.len() as u32 {
                for m2 in 0..stamps.len() as u32 {
                    queries.push(BatchQuery { kind, m1, m2 });
                }
            }
        }
        let entries = batch_client.batch(name, &queries).expect("batch answers");
        assert_eq!(entries.len(), queries.len());

        // (c) local ground truth, byte for byte.
        for (q, entry) in queries.iter().zip(&entries) {
            let expected = answer_query(stamps, q.kind, q.m1, q.m2).expect("in-range query");
            assert_eq!(
                entry,
                &BatchEntry::Answer(expected),
                "query {q:?} on {name}"
            );
        }

        // (b) a v1 single-trace server answers the same queries one frame
        // at a time; its typed answers must agree with the batch bodies.
        let v1_addr = v1_server(stamps.clone());
        let mut v1 = QueryClient::connect(&v1_addr.to_string()).expect("connect v1");
        let mut it = entries.iter();
        for kind in [QUERY_PRECEDES, QUERY_CONCURRENT, QUERY_CHAIN_OF] {
            for m1 in 0..stamps.len() as u32 {
                for m2 in 0..stamps.len() as u32 {
                    let entry = it.next().expect("positional entry");
                    match kind {
                        QUERY_PRECEDES => {
                            let sequential = v1.precedes(m1, m2).expect("v1 precedes");
                            assert_eq!(entry, &BatchEntry::Answer(vec![u8::from(sequential)]));
                        }
                        QUERY_CONCURRENT => {
                            let sequential = v1.concurrent(m1, m2).expect("v1 concurrent");
                            assert_eq!(entry, &BatchEntry::Answer(vec![u8::from(sequential)]));
                        }
                        _ => {
                            let sequential = v1.chain_of(m1).expect("v1 chain");
                            let mut body = (sequential.len() as u32).to_le_bytes().to_vec();
                            for id in sequential {
                                body.extend_from_slice(&id.to_le_bytes());
                            }
                            assert_eq!(entry, &BatchEntry::Answer(body));
                        }
                    }
                }
            }
        }
    }
}

/// A bad trace id fails the batch with a typed error and leaves the
/// connection usable; a bad message id fails only its own entry.
#[test]
fn trace_and_entry_failures_are_recoverable() {
    let fabric = QueryFabric::new(4);
    fabric.publish("a", diamond());
    fabric.publish("b", chain());
    let addr = fabric_server(fabric, 2);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");

    let q = BatchQuery {
        kind: QUERY_PRECEDES,
        m1: 0,
        m2: 1,
    };
    let err = client.batch("missing", &[q]).unwrap_err();
    assert!(
        matches!(&err, NetError::Query(m) if m.contains("unknown trace")),
        "{err}"
    );
    // Same connection, valid trace: still answered.
    assert_eq!(
        client.batch("a", &[q]).unwrap(),
        vec![BatchEntry::Answer(vec![1])]
    );

    // Entry-level failure: out-of-range id poisons one entry, not the batch.
    let entries = client
        .batch(
            "b",
            &[
                q,
                BatchQuery {
                    kind: QUERY_PRECEDES,
                    m1: 0,
                    m2: 999,
                },
            ],
        )
        .unwrap();
    assert_eq!(entries[0], BatchEntry::Answer(vec![1]));
    assert!(matches!(&entries[1], BatchEntry::Error(m) if m.contains("out of range")));

    // The convenience wrappers route through the same trace ids.
    assert!(client.precedes_on("b", 0, 4).unwrap());
    assert!(client.concurrent_on("a", 1, 2).unwrap());
    assert_eq!(client.chain_of_on("a", 1).unwrap(), vec![0, 1, 3]);
    assert_eq!(
        client
            .precedes_many("b", &[(0, 1), (1, 0), (2, 4)])
            .unwrap(),
        vec![true, false, true]
    );
}

/// A v1 single query (empty trace id) is only answerable when the catalog
/// has exactly one trace; against a multi-trace catalog it is refused with
/// a diagnostic naming the trace count.
#[test]
fn v1_queries_need_an_unambiguous_default_trace() {
    let fabric = QueryFabric::new(4);
    fabric.publish("a", diamond());
    fabric.publish("b", chain());
    let addr = fabric_server(fabric, 2);
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    let err = client.precedes(0, 1).unwrap_err();
    assert!(
        matches!(&err, NetError::Query(m) if m.contains("2 traces")),
        "{err}"
    );
    // Naming the trace works on the same connection.
    assert!(client.precedes_on("a", 0, 1).expect("named trace"));
}

/// Republishing a trace while the server is live (copy-on-write) changes
/// the answers new queries see, without restarting anything.
#[test]
fn republish_is_visible_to_live_connections() {
    let fabric = Arc::new(QueryFabric::new(2));
    fabric.publish("t", chain());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let serving = Arc::clone(&fabric);
    std::thread::spawn(move || {
        let _ = serve_fabric(listener, serving, 2);
    });
    let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
    // chain(): m0 < m1.
    assert!(client.precedes_on("t", 0, 1).unwrap());
    // Republish with lattice(): m0 ∥ m1 now.
    fabric.publish("t", lattice());
    assert!(!client.precedes_on("t", 0, 1).unwrap());
    assert!(client.concurrent_on("t", 0, 1).unwrap());
}

/// Resharding a live catalog re-homes every trace to its new ring owner
/// (same `Arc`, no copies) while reusing all previously hashed vnodes.
#[test]
fn reshard_rehomes_traces_and_reuses_vnode_hashes() {
    let mut fabric = QueryFabric::new(2);
    let before_hashes = fabric.vnode_hashes_computed();
    let snap = fabric.publish("diamond", diamond());
    fabric.publish("chain", chain());
    fabric.reshard(3);
    assert_eq!(fabric.shard_count(), 3);
    // Only the new shard's vnodes were hashed (half of the 2-shard cost).
    assert_eq!(fabric.vnode_hashes_computed(), before_hashes * 3 / 2);
    // Both traces still resolve, to the same shared snapshot.
    let after = fabric.snapshot("diamond").expect("rehomed");
    assert!(Arc::ptr_eq(&snap, &after), "reshard must move, not copy");
    assert_eq!(fabric.trace_names(), vec!["chain", "diamond"]);
    // Placement agrees with a fresh 3-shard ring.
    let fresh = QueryFabric::new(3);
    assert_eq!(fabric.shard_of("diamond"), fresh.shard_of("diamond"));
    // Shrinking back hashes nothing new.
    let hashed = fabric.vnode_hashes_computed();
    fabric.reshard(1);
    assert_eq!(fabric.vnode_hashes_computed(), hashed);
    assert_eq!(fabric.trace_count(), 2);
}

/// A one-worker pool serves connections to completion, one after another —
/// nothing deadlocks and nothing is dropped.
#[test]
fn single_worker_pool_serves_sequential_connections() {
    let fabric = QueryFabric::new(1);
    fabric.publish("t", diamond());
    let addr = fabric_server(fabric, 1);
    for _ in 0..3 {
        let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
        assert!(client.precedes_on("t", 0, 3).unwrap());
        // Dropping the client closes the socket and frees the worker.
    }
}

// ------------------------------------------------------------ resharding

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// Consistent-hash stability: growing the ring from `S` to `S + 1`
    /// shards moves at most `1/(S+1) + ε` of the keys (ε absorbs the
    /// finite-vnode arc skew plus sampling noise), and every key that
    /// moves lands on the *new* shard — no key ever shuffles between two
    /// surviving shards.
    #[test]
    fn adding_a_shard_moves_at_most_its_fair_share_of_keys(
        shards in 1usize..9,
        seeds in proptest::collection::vec(proptest::prelude::any::<u64>(), 400..800),
    ) {
        use synctime_net::{ShardRing, VnodeTable};

        // Structured trace-style ids, deduplicated: the fraction is over
        // distinct keys.
        let keys: std::collections::HashSet<String> =
            seeds.iter().map(|s| format!("trace-{s:x}")).collect();
        // Both rings share one vnode table: the rebuild must *reuse* the
        // surviving shards' hashes, paying only for the newcomer's.
        let mut table = VnodeTable::new();
        let before = ShardRing::with_table(shards, &mut table);
        let hashed_before = table.computed_hashes();
        let after = ShardRing::with_table(shards + 1, &mut table);
        let hashed_after = table.computed_hashes();
        let per_shard = hashed_before / shards as u64;
        proptest::prop_assert_eq!(
            hashed_after - hashed_before,
            per_shard,
            "growing {} -> {} shards should hash exactly one shard's vnodes, not rehash all",
            shards,
            shards + 1
        );
        // The cache is an optimisation, not a behaviour change: cached
        // rings place keys exactly as freshly hashed rings do.
        let fresh_after = ShardRing::new(shards + 1);
        let mut moved = 0usize;
        for key in &keys {
            let old = before.shard_of(key);
            let new = after.shard_of(key);
            proptest::prop_assert_eq!(new, fresh_after.shard_of(key));
            if old != new {
                moved += 1;
                // A reshard only ever donates keys to the newcomer.
                proptest::prop_assert_eq!(
                    new,
                    shards,
                    "key `{}` moved from shard {} to surviving shard {}",
                    key,
                    old,
                    new
                );
            }
        }
        let fair = 1.0 / (shards as f64 + 1.0);
        let fraction = moved as f64 / keys.len() as f64;
        proptest::prop_assert!(
            fraction <= fair + 0.15,
            "{} of {} keys moved ({:.3}); fair share is {:.3}",
            moved,
            keys.len(),
            fraction,
            fair
        );
    }
}
