//! Distributed-equals-local: the same `Behavior` programs, run as N
//! in-process threads over the mutex matcher and as N node instances over
//! real loopback TCP sockets, produce **bit-identical** timestamps — and
//! the TCP stamps independently satisfy the paper's Theorem 4 against the
//! order oracle of the reconstructed computation.

use std::net::SocketAddr;
use std::time::Duration;

use synctime_graph::{decompose, topology, EdgeDecomposition, Graph};
use synctime_net::{topology_hash_of, NetError, TcpMeshBuilder};
use synctime_runtime::{
    reconstruct_from_logs, Behavior, LogEntry, ProcessRun, Runtime, RuntimeError,
};
use synctime_trace::Oracle;

const ESTABLISH_TIMEOUT: Duration = Duration::from_secs(20);

/// Binds every node, distributes the concrete addresses, then runs each
/// process of `topo` in its own thread over real TCP sockets.
fn run_over_tcp(
    topo: &Graph,
    dec: &EdgeDecomposition,
    behaviors: Vec<Behavior>,
) -> Vec<ProcessRun> {
    let n = topo.node_count();
    assert_eq!(behaviors.len(), n);
    let hash = topology_hash_of(n, dec);
    let builders: Vec<TcpMeshBuilder> = (0..n)
        .map(|_| TcpMeshBuilder::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> = builders.iter().map(TcpMeshBuilder::local_addr).collect();
    let handles: Vec<_> = builders
        .into_iter()
        .zip(behaviors)
        .enumerate()
        .map(|(id, (builder, behavior))| {
            let topo = topo.clone();
            let dec = dec.clone();
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let neighbors: Vec<usize> = topo.neighbors(id).collect();
                let mesh = builder
                    .establish(id, &addrs, &neighbors, hash, ESTABLISH_TIMEOUT)
                    .expect("mesh establishment");
                let (tx, rx) = mesh.channels();
                Runtime::new(&topo, &dec).run_process(id, behavior, tx, rx)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect()
}

/// Token-ring behaviors: `laps` full laps of a token around `0 → 1 → ... →
/// n-1 → 0`, the payload incremented at each hop. Fully sequential, so the
/// computation — and therefore every stamp — is deterministic.
fn ring_behaviors(n: usize, laps: u64) -> Vec<Behavior> {
    (0..n)
        .map(|i| -> Behavior {
            Box::new(move |ctx| {
                for lap in 0..laps {
                    if i == 0 {
                        ctx.send(1, lap * 1000)?;
                        ctx.receive_from(n - 1)?;
                    } else {
                        let (token, _) = ctx.receive_from(i - 1)?;
                        ctx.send((i + 1) % n, token + 1)?;
                    }
                }
                Ok(())
            })
        })
        .collect()
}

/// Deterministic all-pairs gossip on a complete graph: every unordered
/// pair `(a, b)` rendezvouses once per round, in lexicographic order.
/// Each process's local order agrees with the global order, so the
/// schedule is a valid synchronous computation and deterministic.
fn gossip_behaviors(n: usize, rounds: u64) -> Vec<Behavior> {
    (0..n)
        .map(|i| -> Behavior {
            Box::new(move |ctx| {
                for round in 0..rounds {
                    for a in 0..n {
                        for b in (a + 1)..n {
                            if i == a {
                                ctx.send(b, round)?;
                            } else if i == b {
                                ctx.receive_from(a)?;
                            }
                        }
                    }
                    ctx.internal();
                }
                Ok(())
            })
        })
        .collect()
}

/// Runs the same behaviors locally, reconstructs, and returns the stamps'
/// raw vectors for bit-level comparison.
fn local_stamp_vectors(
    topo: &Graph,
    dec: &EdgeDecomposition,
    behaviors: Vec<Behavior>,
) -> Vec<Vec<u64>> {
    let run = Runtime::new(topo, dec).run(behaviors).expect("local run");
    let (comp, stamps) = run.reconstruct().expect("local reconstruct");
    assert!(stamps.encodes(&Oracle::new(&comp)));
    stamps
        .vectors()
        .iter()
        .map(|v| v.as_slice().to_vec())
        .collect()
}

fn tcp_stamp_vectors(runs: Vec<ProcessRun>) -> Vec<Vec<u64>> {
    let mut logs: Vec<Vec<LogEntry>> = vec![Vec::new(); runs.len()];
    for run in runs {
        assert_eq!(run.outcome(), None, "process {} failed", run.process());
        let (process, log, _, _) = run.into_parts();
        logs[process] = log;
    }
    let (comp, stamps) = reconstruct_from_logs(&logs).expect("tcp reconstruct");
    // Theorem 4: the stamps encode synchronous order exactly.
    assert!(stamps.encodes(&Oracle::new(&comp)));
    stamps
        .vectors()
        .iter()
        .map(|v| v.as_slice().to_vec())
        .collect()
}

#[test]
fn ring_over_tcp_is_bit_identical_to_local() {
    let topo = topology::cycle(8);
    let dec = decompose::best_known(&topo);
    let local = local_stamp_vectors(&topo, &dec, ring_behaviors(8, 3));
    let tcp = tcp_stamp_vectors(run_over_tcp(&topo, &dec, ring_behaviors(8, 3)));
    assert_eq!(local.len(), 8 * 3);
    assert_eq!(local, tcp);
}

#[test]
fn gossip_over_tcp_is_bit_identical_to_local() {
    let topo = topology::complete(4);
    let dec = decompose::best_known(&topo);
    let local = local_stamp_vectors(&topo, &dec, gossip_behaviors(4, 2));
    let tcp = tcp_stamp_vectors(run_over_tcp(&topo, &dec, gossip_behaviors(4, 2)));
    assert_eq!(local.len(), 6 * 2);
    assert_eq!(local, tcp);
}

#[test]
fn tcp_run_survives_an_injected_crash() {
    // Ring of 4; one full lap completes, then process 2 crashes instead of
    // participating in lap two. Every survivor must terminate (no hang),
    // the crash must surface as PeerTerminated on 2's neighbors, and the
    // logs up to the crash must still reconstruct with valid stamps.
    let n = 4;
    let topo = topology::cycle(n);
    let dec = decompose::best_known(&topo);
    let behaviors: Vec<Behavior> = (0..n)
        .map(|i| -> Behavior {
            Box::new(move |ctx| {
                // Lap one: a full clean lap.
                if i == 0 {
                    ctx.send(1, 0)?;
                    ctx.receive_from(n - 1)?;
                } else {
                    let (token, _) = ctx.receive_from(i - 1)?;
                    ctx.send((i + 1) % n, token + 1)?;
                }
                // Lap two: process 2 dies before its receive.
                if i == 2 {
                    return Err(RuntimeError::FaultInjected {
                        process: 2,
                        at_op: 2,
                    });
                }
                if i == 0 {
                    ctx.send(1, 1000)?;
                    ctx.receive_from(n - 1)?;
                } else {
                    let (token, _) = ctx.receive_from(i - 1)?;
                    ctx.send((i + 1) % n, token + 1)?;
                }
                Ok(())
            })
        })
        .collect();
    let runs = run_over_tcp(&topo, &dec, behaviors);
    let mut logs: Vec<Vec<LogEntry>> = vec![Vec::new(); n];
    for run in runs {
        let process = run.process();
        match process {
            // The crasher reports its own injected fault.
            2 => assert!(
                matches!(run.outcome(), Some(RuntimeError::FaultInjected { .. })),
                "process 2: {:?}",
                run.outcome()
            ),
            // Processes blocked on the crashed peer (1 sends to 2, 3
            // receives from 2) observe its socket close as termination;
            // process 0 then loses its peers transitively. Nothing hangs.
            _ => assert!(
                matches!(
                    run.outcome(),
                    Some(RuntimeError::PeerTerminated { .. }) | None
                ),
                "process {process}: {:?}",
                run.outcome()
            ),
        }
        let (p, log, _, _) = run.into_parts();
        logs[p] = log;
    }
    // Completed rendezvous are logged at both endpoints, so the partial
    // run reconstructs: lap one's 4 messages plus lap two's 0→1 hop.
    let (comp, stamps) = reconstruct_from_logs(&logs).expect("partial logs reconstruct");
    assert_eq!(comp.message_count(), n + 1);
    assert!(stamps.encodes(&Oracle::new(&comp)));
}

#[test]
fn establish_refuses_topology_hash_mismatch() {
    // Node 0 (acceptor) and node 1 (dialer) disagree on the topology hash:
    // the acceptor must refuse the handshake; the dialer cannot complete.
    let b0 = TcpMeshBuilder::bind("127.0.0.1:0").unwrap();
    let b1 = TcpMeshBuilder::bind("127.0.0.1:0").unwrap();
    let addrs = vec![b0.local_addr(), b1.local_addr()];
    let addrs1 = addrs.clone();
    let t0 =
        std::thread::spawn(move || b0.establish(0, &addrs, &[1], 0xAAAA, Duration::from_secs(5)));
    let t1 =
        std::thread::spawn(move || b1.establish(1, &addrs1, &[0], 0xBBBB, Duration::from_secs(5)));
    let r0 = t0.join().unwrap();
    let r1 = t1.join().unwrap();
    assert!(
        matches!(r0, Err(NetError::Handshake(_))),
        "acceptor: {r0:?}"
    );
    assert!(r1.is_err(), "dialer must not complete: {r1:?}");
}

#[test]
fn establish_refuses_protocol_version_mismatch() {
    use std::io::Write;
    use synctime_net::{Frame, PROTOCOL_VERSION};

    // A raw client speaking a future protocol version dials an accepting
    // node; the handshake must be refused with a version diagnostic.
    let builder = TcpMeshBuilder::bind("127.0.0.1:0").unwrap();
    let addr = builder.local_addr();
    let t =
        std::thread::spawn(move || builder.establish(0, &[addr], &[1], 7, Duration::from_secs(5)));
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION + 1,
                topology_hash: 7,
                process: 1,
            }
            .encode()
            .unwrap(),
        )
        .unwrap();
    let result = t.join().unwrap();
    match result {
        Err(NetError::Handshake(detail)) => {
            assert!(detail.contains("version"), "diagnostic: {detail}")
        }
        other => panic!("expected version-mismatch refusal, got {other:?}"),
    }
}
