//! Per-peer TCP connections implementing the runtime's transport traits.
//!
//! A [`TcpMesh`] gives one OS process the channel endpoints for one
//! process of a synchronous computation: a socket per adjacent peer, each
//! carrying the frame protocol of [`crate::frame`]. Plugged into
//! `Runtime::run_process`, the very same `Behavior` programs that run
//! in-process over the mutex matcher run as `N` real OS processes — the
//! runtime's wait loops, timeout budgets, resync protocol, and fault
//! machinery are shared, only the medium changes.
//!
//! # Connection establishment
//!
//! Every node binds its listener first ([`TcpMeshBuilder::bind`]), then
//! ([`TcpMeshBuilder::establish`]) connects to each adjacent peer with a
//! *lower* process id and accepts from each with a *higher* one — a total
//! order that cannot deadlock. Each endpoint opens with a HELLO carrying
//! its protocol version, process id, and the run's topology hash; a
//! mismatch on any of them refuses the connection before a single
//! protocol frame moves.
//!
//! # Runtime mapping
//!
//! * A send's `offer` writes an OFFER frame; the answering ACK or RESYNC
//!   is routed back by the connection's reader thread. Over TCP the
//!   sender cannot observe the remote take, so the ack-latency sample
//!   starts at the offer write and measures the full round trip.
//! * A receive's `poll_offer` drains the peer's OFFER frames from the
//!   reader thread's mailbox; its `answer` writes the ACK/RESYNC back.
//! * A peer's socket closing maps to [`TransportError::Closed`], which
//!   the runtime reports as `PeerTerminated` — exactly how a local
//!   thread's exit surfaces. Mailboxes drain queued frames before
//!   reporting the close, so an acknowledgement that was written before
//!   the peer went away still completes the rendezvous on this side.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use synctime_runtime::{
    OfferAnswer, Polled, RawOffer, ReadySlot, RxChannel, SendAnswer, TransportError, TxChannel,
};

use crate::error::NetError;
use crate::frame::{
    encode_ack_into, encode_offer_into, encode_resync_into, Frame, FrameReader, PROTOCOL_VERSION,
};
use crate::mailbox::Mailbox;

/// How long `establish` keeps retrying a refused connect before giving
/// up: peers may not have bound their listeners yet.
const CONNECT_RETRY_STEP: Duration = Duration::from_millis(20);

/// An answer frame routed back to the sending endpoint.
#[derive(Debug)]
enum AnswerMsg {
    Ack { key: u64, ack: Vec<u8>, at: Instant },
    Resync { key: u64 },
}

/// The write half of a connection: the socket plus a reusable encode
/// buffer, both behind one lock so frames from the Tx and Rx endpoints
/// interleave whole. Reusing the buffer keeps the steady-state offer/ack
/// path free of per-frame allocation.
#[derive(Debug)]
struct WriteHalf {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One established peer connection: the write half (shared by the Tx and
/// Rx endpoints under a lock) plus the reader thread's demultiplexed
/// mailboxes.
#[derive(Debug)]
struct Conn {
    writer: Mutex<WriteHalf>,
    offers: Mailbox<RawOffer>,
    answers: Mailbox<AnswerMsg>,
    /// RECONFIGURE/RECONFIG_ACK control frames, kept out of the data
    /// mailboxes so an in-flight reconfiguration never reorders against
    /// pending offers or acks.
    controls: Mailbox<Frame>,
}

impl Conn {
    /// Encodes one frame into the shared write buffer (via `fill`) and
    /// writes it, mapping close-like failures to
    /// [`TransportError::Closed`].
    fn write_with(&self, fill: impl FnOnce(&mut Vec<u8>)) -> Result<(), TransportError> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let WriteHalf { stream, buf } = &mut *writer;
        buf.clear();
        fill(buf);
        stream.write_all(buf).map_err(map_io)
    }

    fn shutdown(&self) {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writer.stream.shutdown(Shutdown::Both);
    }
}

fn transport_to_net(e: TransportError) -> NetError {
    match e {
        TransportError::Closed => NetError::Closed,
        TransportError::Io(detail) => NetError::Io(detail),
    }
}

fn map_io(e: std::io::Error) -> TransportError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::BrokenPipe
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::UnexpectedEof
        | ErrorKind::NotConnected => TransportError::Closed,
        _ => TransportError::Io(e.to_string()),
    }
}

/// Reads whole frames off `stream` forever, routing them into the
/// connection's mailboxes; on EOF or error, closes both mailboxes (queued
/// frames stay deliverable). `reader` is the handshake's FrameReader: a
/// peer may start protocol traffic the instant its own handshake is done,
/// so the handshake read can legitimately buffer past its HELLO — those
/// bytes are the head of the frame stream and must not be dropped.
fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>, mut reader: FrameReader) {
    let mut buf = [0u8; 16 * 1024];
    let close = |detail: Option<String>| {
        conn.offers.close(detail.clone());
        conn.answers.close(detail.clone());
        conn.controls.close(detail);
    };
    loop {
        // Drain every complete frame already buffered (including any the
        // handshake read ahead) before blocking on the socket again.
        loop {
            match reader.next_frame() {
                Ok(Some(Frame::Offer {
                    key,
                    payload,
                    vector,
                })) => conn.offers.push(RawOffer {
                    key,
                    payload,
                    vector,
                    offered_at: Instant::now(),
                }),
                Ok(Some(Frame::Ack { key, ack })) => conn.answers.push(AnswerMsg::Ack {
                    key,
                    ack,
                    at: Instant::now(),
                }),
                Ok(Some(Frame::Resync { key })) => conn.answers.push(AnswerMsg::Resync { key }),
                Ok(Some(control @ (Frame::Reconfigure(_) | Frame::ReconfigAck(_)))) => {
                    conn.controls.push(control);
                }
                Ok(Some(other)) => {
                    close(Some(format!(
                        "unexpected frame on a transport connection: {other:?}"
                    )));
                    return;
                }
                Ok(None) => break,
                Err(e) => {
                    close(Some(e.to_string()));
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                close(None);
                return;
            }
            Ok(n) => reader.feed(&buf[..n]),
            Err(e) => {
                match map_io(e) {
                    TransportError::Closed => close(None),
                    TransportError::Io(detail) => close(Some(detail)),
                }
                return;
            }
        }
    }
}

/// Reads exactly one frame during the handshake (bounded by the stream's
/// read timeout). Returns the frame together with the reader, which may
/// have buffered past it — the peer is free to start protocol traffic as
/// soon as its side of the handshake completes, and those read-ahead
/// bytes belong to the connection's frame stream.
fn read_one_frame(stream: &mut TcpStream) -> Result<(Frame, FrameReader), NetError> {
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 1024];
    loop {
        if let Some(frame) = reader.next_frame()? {
            return Ok((frame, reader));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        reader.feed(&buf[..n]);
    }
}

/// Validates a peer's HELLO against this run's version and topology hash.
fn check_hello(frame: &Frame, topology_hash: u64) -> Result<usize, NetError> {
    let Frame::Hello {
        version,
        topology_hash: theirs,
        process,
    } = frame
    else {
        return Err(NetError::Handshake(format!(
            "expected HELLO, got {frame:?}"
        )));
    };
    if *version != PROTOCOL_VERSION {
        return Err(NetError::Handshake(format!(
            "protocol version mismatch: peer speaks {version}, this node speaks {PROTOCOL_VERSION}"
        )));
    }
    if *theirs != topology_hash {
        return Err(NetError::Handshake(format!(
            "topology hash mismatch: peer launched with {theirs:#x}, this node with {topology_hash:#x}"
        )));
    }
    Ok(*process as usize)
}

/// A bound-but-unconnected node endpoint. Binding first and connecting
/// second lets a launcher distribute every node's concrete address before
/// any node starts dialing.
#[derive(Debug)]
pub struct TcpMeshBuilder {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpMeshBuilder {
    /// Binds this node's listening socket (use port 0 for an ephemeral
    /// port, then read it back with [`TcpMeshBuilder::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpMeshBuilder { listener, addr })
    }

    /// The bound address, with any ephemeral port resolved.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Establishes the mesh: connects to every adjacent peer with a lower
    /// id, accepts from every one with a higher id, and handshakes each
    /// connection (version + topology hash + peer identity).
    ///
    /// `addrs[p]` is process `p`'s listening address; `neighbors` are the
    /// processes adjacent to `process` in the run's topology.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on socket failures or an exhausted connect
    /// deadline, [`NetError::Handshake`] when a peer speaks the wrong
    /// protocol version, disagrees on the topology hash, or identifies as
    /// a process this node did not expect.
    pub fn establish(
        self,
        process: usize,
        addrs: &[SocketAddr],
        neighbors: &[usize],
        topology_hash: u64,
        timeout: Duration,
    ) -> Result<TcpMesh, NetError> {
        let deadline = Instant::now() + timeout;
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            topology_hash,
            process: process as u32,
        };
        let mut streams: BTreeMap<usize, (TcpStream, FrameReader)> = BTreeMap::new();

        // Dial every lower-id neighbor (its listener is already bound; a
        // refused connect only means its OS process is still starting).
        for &peer in neighbors.iter().filter(|&&p| p < process) {
            let addr = addrs.get(peer).copied().ok_or_else(|| {
                NetError::Handshake(format!("no address for peer process {peer}"))
            })?;
            let mut stream = connect_retry(addr, deadline)?;
            stream.set_read_timeout(Some(remaining(deadline)?))?;
            stream.write_all(&hello.encode()?)?;
            let (frame, reader) = read_one_frame(&mut stream)?;
            let said = check_hello(&frame, topology_hash)?;
            if said != peer {
                return Err(NetError::Handshake(format!(
                    "dialed process {peer} at {addr} but it identifies as process {said}"
                )));
            }
            streams.insert(peer, (stream, reader));
        }

        // Accept every higher-id neighbor; inbound connections identify
        // themselves by their HELLO.
        let mut expected: Vec<usize> = neighbors.iter().copied().filter(|&p| p > process).collect();
        while !expected.is_empty() {
            self.listener.set_nonblocking(false)?;
            // Bound the accept wait so a vanished peer cannot hang us past
            // the deadline.
            let (mut stream, _) = accept_deadline(&self.listener, deadline)?;
            stream.set_read_timeout(Some(remaining(deadline)?))?;
            let (frame, reader) = read_one_frame(&mut stream)?;
            let said = check_hello(&frame, topology_hash)?;
            let Some(slot) = expected.iter().position(|&p| p == said) else {
                return Err(NetError::Handshake(format!(
                    "process {said} connected, but this node only expects {expected:?}"
                )));
            };
            stream.write_all(&hello.encode()?)?;
            expected.swap_remove(slot);
            streams.insert(said, (stream, reader));
        }

        // Promote each handshaken stream into a connection with a reader
        // thread.
        let mut conns = BTreeMap::new();
        for (peer, (stream, reader)) in streams {
            stream.set_read_timeout(None)?;
            stream.set_nodelay(true)?;
            let read_half = stream.try_clone()?;
            let conn = Arc::new(Conn {
                writer: Mutex::new(WriteHalf {
                    stream,
                    buf: Vec::new(),
                }),
                offers: Mailbox::new(),
                answers: Mailbox::new(),
                controls: Mailbox::new(),
            });
            let for_reader = Arc::clone(&conn);
            std::thread::Builder::new()
                .name(format!("synctime-net-rx-{process}-{peer}"))
                .spawn(move || reader_loop(read_half, for_reader, reader))?;
            conns.insert(peer, conn);
        }
        Ok(TcpMesh { conns })
    }
}

fn remaining(deadline: Instant) -> Result<Duration, NetError> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(NetError::Io("mesh establishment timed out".to_string()));
    }
    Ok(left)
}

fn connect_retry(addr: SocketAddr, deadline: Instant) -> Result<TcpStream, NetError> {
    loop {
        match TcpStream::connect_timeout(&addr, remaining(deadline)?) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + CONNECT_RETRY_STEP >= deadline {
                    return Err(NetError::Io(format!("connecting to {addr}: {e}")));
                }
                std::thread::sleep(CONNECT_RETRY_STEP);
            }
        }
    }
}

fn accept_deadline(
    listener: &TcpListener,
    deadline: Instant,
) -> Result<(TcpStream, SocketAddr), NetError> {
    // `TcpListener` has no native accept timeout; poll in non-blocking
    // mode at a coarse cadence instead.
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok(pair) => {
                pair.0.set_nonblocking(false)?;
                return Ok(pair);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                remaining(deadline)?;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// One node's established connections to its adjacent peers, ready to be
/// split into the runtime's per-channel transport endpoints.
#[derive(Debug)]
pub struct TcpMesh {
    conns: BTreeMap<usize, Arc<Conn>>,
}

impl TcpMesh {
    /// The per-peer channel endpoints for `Runtime::run_process`: one
    /// [`TxChannel`] and one [`RxChannel`] per adjacent peer. Call once.
    pub fn channels(
        &self,
    ) -> (
        HashMap<usize, Arc<dyn TxChannel>>,
        HashMap<usize, Arc<dyn RxChannel>>,
    ) {
        let mut tx: HashMap<usize, Arc<dyn TxChannel>> = HashMap::new();
        let mut rx: HashMap<usize, Arc<dyn RxChannel>> = HashMap::new();
        for (&peer, conn) in &self.conns {
            tx.insert(
                peer,
                Arc::new(TcpTx {
                    conn: Arc::clone(conn),
                    inflight: Mutex::new(None),
                }),
            );
            rx.insert(
                peer,
                Arc::new(TcpRx {
                    conn: Arc::clone(conn),
                    pending: Mutex::new(None),
                }),
            );
        }
        (tx, rx)
    }

    /// Sends a RECONFIGURE control frame (prepare or commit) to `peer`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when no connection to `peer` exists or the write
    /// fails, [`NetError::Closed`] when the peer has gone away.
    pub fn send_reconfigure(
        &self,
        peer: usize,
        frame: &crate::reconfig::ReconfigFrame,
    ) -> Result<(), NetError> {
        self.conn_to(peer)?
            .write_with(|out| {
                crate::reconfig::encode_reconfigure_into(
                    out,
                    crate::frame::TYPE_RECONFIGURE,
                    frame,
                );
            })
            .map_err(transport_to_net)
    }

    /// Sends a RECONFIG_ACK control frame to `peer`.
    ///
    /// # Errors
    ///
    /// Same as [`TcpMesh::send_reconfigure`].
    pub fn send_reconfig_ack(
        &self,
        peer: usize,
        ack: &crate::reconfig::ReconfigAckFrame,
    ) -> Result<(), NetError> {
        self.conn_to(peer)?
            .write_with(|out| {
                crate::reconfig::encode_reconfig_ack_into(
                    out,
                    crate::frame::TYPE_RECONFIG_ACK,
                    ack,
                );
            })
            .map_err(transport_to_net)
    }

    /// Waits (until `deadline`) for the next control frame from `peer` —
    /// a [`Frame::Reconfigure`] or [`Frame::ReconfigAck`] routed to the
    /// connection's control mailbox by its reader thread. Data traffic
    /// (offers, acks) is unaffected: it flows through its own mailboxes
    /// while a reconfiguration is in flight.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when no connection to `peer` exists or the
    /// deadline passes, [`NetError::Closed`] when the peer has gone away.
    pub fn recv_control(&self, peer: usize, deadline: Instant) -> Result<Frame, NetError> {
        let conn = self.conn_to(peer)?;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::Io(format!(
                    "timed out waiting for a control frame from process {peer}"
                )));
            }
            match conn.controls.pop(Some(left)).map_err(transport_to_net)? {
                Polled::Ready(frame) => return Ok(frame),
                Polled::Pending => continue,
            }
        }
    }

    fn conn_to(&self, peer: usize) -> Result<&Arc<Conn>, NetError> {
        self.conns
            .get(&peer)
            .ok_or_else(|| NetError::Io(format!("no connection to process {peer}")))
    }

    /// Closes every peer socket. Peers observe the close as this process
    /// terminating — the distributed analogue of a thread exiting. Also
    /// runs on drop, so a panicking node still unblocks its peers.
    pub fn shutdown(&self) {
        for conn in self.conns.values() {
            conn.shutdown();
        }
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The sending endpoint of one TCP-backed channel.
#[derive(Debug)]
struct TcpTx {
    conn: Arc<Conn>,
    /// The in-flight offer's key and write instant: over TCP the remote
    /// take is unobservable, so the ack-latency sample starts at the
    /// offer write and measures the full round trip.
    inflight: Mutex<Option<(u64, Instant)>>,
}

impl TxChannel for TcpTx {
    fn poll_ready(&self, _cap: Option<Duration>) -> Result<Polled<ReadySlot>, TransportError> {
        // A socket has no slot occupancy: the peer's mailbox queues
        // offers, and resync debris surfaces as a RESYNC answer to the
        // next offer rather than as channel state.
        Ok(Polled::Ready(ReadySlot {
            resync_debris: false,
        }))
    }

    fn offer(&self, key: u64, payload: u64, vector: &[u8]) -> Result<(), TransportError> {
        // Borrowed encode: the timestamp vector goes straight from the
        // caller's slice into the connection's write buffer.
        self.conn
            .write_with(|out| encode_offer_into(out, key, payload, vector))?;
        *self.inflight.lock().unwrap_or_else(PoisonError::into_inner) = Some((key, Instant::now()));
        Ok(())
    }

    fn poll_answer(
        &self,
        key: u64,
        cap: Option<Duration>,
    ) -> Result<Polled<SendAnswer>, TransportError> {
        loop {
            match self.conn.answers.pop(cap)? {
                Polled::Ready(AnswerMsg::Ack { key: k, ack, at }) if k == key => {
                    let taken = self
                        .inflight
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .map_or_else(Instant::now, |(_, at)| at);
                    return Ok(Polled::Ready(SendAnswer::Acked {
                        ack,
                        taken,
                        acked: at,
                    }));
                }
                Polled::Ready(AnswerMsg::Resync { key: k }) if k == key => {
                    return Ok(Polled::Ready(SendAnswer::ResyncRequested));
                }
                // Stale debris answering an offer this send already gave
                // up on: discard and keep draining.
                Polled::Ready(_) => {}
                Polled::Pending => return Ok(Polled::Pending),
            }
        }
    }

    fn retract(&self, _key: u64) {
        // The offer already left the machine; nothing to unsend. A late
        // answer is discarded as stale by the next poll_answer.
        *self.inflight.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// The receiving endpoint of one TCP-backed channel.
#[derive(Debug)]
struct TcpRx {
    conn: Arc<Conn>,
    /// The taken-but-unanswered offer's key, consumed by `answer`.
    pending: Mutex<Option<u64>>,
}

impl RxChannel for TcpRx {
    fn poll_offer(&self, cap: Option<Duration>) -> Result<Polled<RawOffer>, TransportError> {
        match self.conn.offers.pop(cap)? {
            Polled::Ready(offer) => {
                *self.pending.lock().unwrap_or_else(PoisonError::into_inner) = Some(offer.key);
                Ok(Polled::Ready(offer))
            }
            Polled::Pending => Ok(Polled::Pending),
        }
    }

    fn answer(&self, answer: OfferAnswer) -> Result<(), TransportError> {
        let Some(key) = self
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        else {
            return Err(TransportError::Io(
                "answer without a taken offer".to_string(),
            ));
        };
        match answer {
            OfferAnswer::Ack(ack) => self.conn.write_with(|out| encode_ack_into(out, key, &ack)),
            OfferAnswer::Resync => self.conn.write_with(|out| encode_resync_into(out, key)),
        }
    }
}
