//! Typed failures for sockets, handshakes, and the query protocol.

use std::fmt;

/// Why a `synctime-net` operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// An OS-level socket failure (connect, bind, read, write).
    Io(String),
    /// The HELLO exchange failed: version or topology-hash mismatch, or an
    /// unexpected first frame. The connection is refused before any
    /// protocol traffic.
    Handshake(String),
    /// The byte stream violated the frame protocol (unknown type,
    /// malformed body, oversized length). Framing is lost; the connection
    /// is dead.
    Protocol(String),
    /// The peer closed the connection.
    Closed,
    /// The query server rejected a query (out-of-range message id,
    /// unknown query kind); carries the server's diagnostic.
    Query(String),
    /// A pipelined ANSWER3 frame carried a correlation id that matches no
    /// in-flight batch (never issued, or already answered). The frame has
    /// been consumed and framing is intact, so the connection stays
    /// usable — the stray answer is dropped, not desynchronising.
    Correlation(u32),
    /// A reconfiguration frame named an epoch this node is not at: a
    /// RECONFIGURE prepare that is not the successor of the node's current
    /// epoch, or a commit for an epoch the node never prepared. The
    /// refusing node reports its own epoch so the coordinator can resync
    /// the straggler by replaying the missed prepares in order.
    EpochMismatch {
        /// The epoch the node could have accepted.
        expected: u64,
        /// The epoch the frame carried.
        got: u64,
    },
    /// A pipelined session finished with a submitted batch still
    /// unanswered: the server never sent an ANSWER3 for the batch at this
    /// slot. Surfaced instead of fabricating empty results for the hole.
    Incomplete {
        /// The submission slot (as returned by `Pipeline::submit`) whose
        /// answer never arrived.
        slot: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(detail) => write!(f, "socket failure: {detail}"),
            NetError::Handshake(detail) => write!(f, "handshake refused: {detail}"),
            NetError::Protocol(detail) => write!(f, "frame protocol violation: {detail}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Query(detail) => write!(f, "query rejected: {detail}"),
            NetError::Correlation(corr) => {
                write!(f, "unknown correlation id {corr} on a pipelined answer")
            }
            NetError::EpochMismatch { expected, got } => {
                write!(
                    f,
                    "reconfiguration epoch mismatch: frame names epoch {got}, node expects {expected}"
                )
            }
            NetError::Incomplete { slot } => {
                write!(f, "pipelined batch at slot {slot} was never answered")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}
