//! The fixed-size worker pool behind the query fabric's accept loop.
//!
//! PR 5 served queries thread-per-connection: every accepted socket
//! spawned a fresh OS thread, so a burst of N clients cost N stacks and N
//! scheduler entries — fine for a benchmark, hostile to "millions of
//! users". The fabric replaces that with the classic bounded model: the
//! accept loop only enqueues accepted sockets, and a **fixed** pool of
//! worker threads (sized once, at serve time) drains the queue, each
//! worker running one connection's query/answer loop to completion before
//! taking the next.
//!
//! The trade is explicit and documented: with W workers, at most W
//! connections are served *concurrently*; further connections queue until
//! a worker frees up (closed-loop clients therefore want `workers >=
//! connections`). What the server never does any more is grow without
//! bound — memory and thread count are fixed at startup no matter how
//! many sockets arrive.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::catalog::QueryFabric;
use crate::error::NetError;
use crate::frame::FrameScratch;
use crate::query::serve_fabric_connection;

/// The worker count used when a caller does not choose one: the machine's
/// available parallelism, floored at 4 so small hosts still overlap
/// slow clients with fast ones.
pub fn default_pool_size() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(4)
}

/// Accepts query connections forever, serving them from a fixed pool of
/// `workers` threads (clamped to at least 1).
///
/// Returns only when the listener itself fails; callers wanting a bounded
/// server drop the listener from another thread or kill the process (the
/// CLI's `serve-query` does the latter).
///
/// # Errors
///
/// [`NetError::Io`] when accepting fails, or when a worker thread cannot
/// be spawned at startup.
pub fn serve_fabric(
    listener: TcpListener,
    fabric: Arc<QueryFabric>,
    workers: usize,
) -> Result<(), NetError> {
    let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    for w in 0..workers.max(1) {
        let queue = Arc::clone(&queue);
        let fabric = Arc::clone(&fabric);
        std::thread::Builder::new()
            .name(format!("synctime-qworker-{w}"))
            .spawn(move || {
                // One scratch per worker, reused across every connection it
                // serves: buffer capacity warmed by one connection pays for
                // the next, and the steady-state answer path allocates
                // nothing.
                let mut scratch = FrameScratch::new();
                loop {
                    let stream = {
                        let (lock, cv) = &*queue;
                        let mut pending = lock.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if let Some(stream) = pending.pop_front() {
                                break stream;
                            }
                            pending = cv.wait(pending).unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    // A misbehaving client only kills its own connection.
                    let _ = serve_fabric_connection(stream, &fabric, &mut scratch);
                }
            })?;
    }
    loop {
        let (stream, _) = listener.accept()?;
        let (lock, cv) = &*queue;
        lock.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(stream);
        cv.notify_one();
    }
}
