//! The length-prefixed frame protocol every `synctime-net` socket speaks.
//!
//! A frame is `[u32 le length][u8 type][body]`, where `length` counts the
//! type byte plus the body. Nine frame types exist:
//!
//! | type | name    | body (little-endian)                                              |
//! |------|---------|-------------------------------------------------------------------|
//! | 0    | HELLO   | `u16` version, `u64` topology hash, `u32` process                 |
//! | 1    | OFFER   | `u64` key, `u64` payload, delta-encoded vector                    |
//! | 2    | ACK     | `u64` key, delta-encoded acknowledgement vector                   |
//! | 3    | RESYNC  | `u64` key                                                         |
//! | 4    | QUERY   | `u8` kind, `u32` m1, `u32` m2                                     |
//! | 5    | ANSWER  | kind-specific answer bytes                                        |
//! | 6    | ERROR   | UTF-8 diagnostic                                                  |
//! | 7    | QUERY2  | `u16` trace len, trace id, `u32` count, count × (`u8` kind, `u32` m1, `u32` m2) |
//! | 8    | ANSWER2 | `u32` count, count × (`u8` status, `u32` len, body)               |
//!
//! QUERY2/ANSWER2 are the **batch** query frames (protocol v2): one frame
//! carries up to [`MAX_BATCH`] queries against one named trace of a
//! multi-trace catalog, so framing, the trace id, and the syscall are paid
//! once per batch instead of once per query. The trace id is UTF-8; the
//! empty id means "the catalog's default trace" and gives a batch the v1
//! single-trace semantics. Each ANSWER2 entry is either status 0 followed
//! by the same kind-specific answer bytes a v1 ANSWER frame would carry for
//! that query, or status 1 followed by a UTF-8 diagnostic — one bad message
//! id fails its entry, not the batch.
//!
//! OFFER/ACK/RESYNC body layouts match `synctime_core::wire`'s frame
//! pricing helpers (`offer_frame_bytes` and friends) byte for byte, and
//! QUERY/ANSWER/QUERY2/ANSWER2 match `query_frame_bytes` /
//! `batch_query_frame_bytes` and friends the same way, so the byte counts
//! the in-process runtime reports are exactly what a TCP run moves on the
//! wire — and bytes-per-query is a measured, not estimated, metric.
//!
//! Decoding is incremental: a [`FrameReader`] is fed arbitrary chunks as
//! they arrive from a socket and yields complete frames as soon as their
//! bytes are in. Malformed frames (unknown type, truncated body, oversized
//! length prefix) are rejected with a typed [`NetError::Protocol`] — a
//! desynchronised byte stream can never be silently misparsed.

use crate::error::NetError;

/// The protocol version carried in every HELLO. Bumped on any frame-layout
/// change; endpoints refuse to talk across versions. Version 2 added the
/// batched QUERY2/ANSWER2 frames (a v1 endpoint would reject them as
/// unknown types, which is exactly what the handshake refusal prevents).
pub const PROTOCOL_VERSION: u16 = 2;

/// Upper bound on a frame's length prefix: 16 MiB. A prefix beyond this is
/// a desynchronised or hostile stream, not a real frame (the largest
/// legitimate frame is an OFFER whose vector is bounded by the topology's
/// decomposition dimension).
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// Bytes of the fixed frame prefix: the `u32` length plus the type byte.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Upper bound on the queries one QUERY2 frame may carry (and on the
/// entries one ANSWER2 frame may carry). A larger declared count is a
/// protocol violation, rejected before any allocation; clients split
/// larger batches across frames transparently.
pub const MAX_BATCH: usize = 4096;

const TYPE_HELLO: u8 = 0;
const TYPE_OFFER: u8 = 1;
const TYPE_ACK: u8 = 2;
const TYPE_RESYNC: u8 = 3;
const TYPE_QUERY: u8 = 4;
const TYPE_ANSWER: u8 = 5;
const TYPE_ERROR: u8 = 6;
const TYPE_QUERY_BATCH: u8 = 7;
const TYPE_ANSWER_BATCH: u8 = 8;

/// One question inside a QUERY2 batch frame: the same `(kind, m1, m2)`
/// triple a v1 QUERY frame carries (see `query::QueryKind` constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchQuery {
    /// The question: see `query::QUERY_PRECEDES` and friends.
    pub kind: u8,
    /// First message number (0-based id).
    pub m1: u32,
    /// Second message number (ignored by single-message kinds).
    pub m2: u32,
}

/// One reply inside an ANSWER2 batch frame: positionally matched to the
/// batch's queries, each entry succeeds or fails independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEntry {
    /// The query succeeded; the bytes are exactly what a v1 ANSWER frame
    /// would carry for the same query.
    Answer(Vec<u8>),
    /// The query was rejected (out-of-range id, unknown kind); the batch's
    /// other entries are unaffected.
    Error(String),
}

/// One protocol frame (see the module docs for the wire layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: each endpoint sends one HELLO first and
    /// validates the peer's version and topology hash before any traffic.
    Hello {
        /// The speaker's [`PROTOCOL_VERSION`].
        version: u16,
        /// FNV-1a hash of the run's topology and decomposition (see
        /// [`topology_hash`]); `0` is the wildcard used by query clients.
        topology_hash: u64,
        /// The speaker's process id (`u32::MAX` for query clients).
        process: u32,
    },
    /// A rendezvous offer: program payload plus delta-encoded vector.
    Offer {
        /// The message's reconstruction key.
        key: u64,
        /// The program payload.
        payload: u64,
        /// The piggybacked vector, delta-encoded on the channel stream.
        vector: Vec<u8>,
    },
    /// The receiver's acknowledgement completing a rendezvous.
    Ack {
        /// The acknowledged offer's key.
        key: u64,
        /// The receiver's pre-update vector, delta-encoded.
        ack: Vec<u8>,
    },
    /// The receiver's request to re-offer `key` with a full vector.
    Resync {
        /// The bounced offer's key.
        key: u64,
    },
    /// A precedence query against a stamped trace.
    Query {
        /// The question: see `query::QueryKind`.
        kind: u8,
        /// First message number (0-based id).
        m1: u32,
        /// Second message number (ignored by single-message kinds).
        m2: u32,
    },
    /// A query server's reply; the body layout depends on the query kind.
    Answer {
        /// Kind-specific answer bytes.
        body: Vec<u8>,
    },
    /// A typed failure (bad query, out-of-range message, ...).
    Error {
        /// Human-readable diagnostic.
        message: String,
    },
    /// A v2 batch of queries against one named trace of the catalog.
    QueryBatch {
        /// The trace id the batch targets; empty means the catalog's
        /// default trace.
        trace: String,
        /// The questions, answered positionally (at most [`MAX_BATCH`]).
        queries: Vec<BatchQuery>,
    },
    /// A v2 batch of replies, positionally matched to a QUERY2 frame.
    AnswerBatch {
        /// One entry per query, in query order.
        entries: Vec<BatchEntry>,
    },
}

impl Frame {
    /// Serialises the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let ty = match self {
            Frame::Hello {
                version,
                topology_hash,
                process,
            } => {
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&topology_hash.to_le_bytes());
                body.extend_from_slice(&process.to_le_bytes());
                TYPE_HELLO
            }
            Frame::Offer {
                key,
                payload,
                vector,
            } => {
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&payload.to_le_bytes());
                body.extend_from_slice(vector);
                TYPE_OFFER
            }
            Frame::Ack { key, ack } => {
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(ack);
                TYPE_ACK
            }
            Frame::Resync { key } => {
                body.extend_from_slice(&key.to_le_bytes());
                TYPE_RESYNC
            }
            Frame::Query { kind, m1, m2 } => {
                body.push(*kind);
                body.extend_from_slice(&m1.to_le_bytes());
                body.extend_from_slice(&m2.to_le_bytes());
                TYPE_QUERY
            }
            Frame::Answer { body: b } => {
                body.extend_from_slice(b);
                TYPE_ANSWER
            }
            Frame::Error { message } => {
                body.extend_from_slice(message.as_bytes());
                TYPE_ERROR
            }
            Frame::QueryBatch { trace, queries } => {
                debug_assert!(trace.len() <= u16::MAX as usize, "trace id too long");
                debug_assert!(queries.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
                body.extend_from_slice(&(trace.len() as u16).to_le_bytes());
                body.extend_from_slice(trace.as_bytes());
                body.extend_from_slice(&(queries.len() as u32).to_le_bytes());
                for q in queries {
                    body.push(q.kind);
                    body.extend_from_slice(&q.m1.to_le_bytes());
                    body.extend_from_slice(&q.m2.to_le_bytes());
                }
                TYPE_QUERY_BATCH
            }
            Frame::AnswerBatch { entries } => {
                debug_assert!(entries.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
                body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    let (status, bytes): (u8, &[u8]) = match e {
                        BatchEntry::Answer(b) => (0, b),
                        BatchEntry::Error(m) => (1, m.as_bytes()),
                    };
                    body.push(status);
                    body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    body.extend_from_slice(bytes);
                }
                TYPE_ANSWER_BATCH
            }
        };
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
        out.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
        out.push(ty);
        out.extend_from_slice(&body);
        out
    }

    /// Parses one frame body (`ty` byte already split off).
    fn decode_body(ty: u8, body: &[u8]) -> Result<Frame, NetError> {
        let exact = |want: usize| -> Result<(), NetError> {
            if body.len() == want {
                Ok(())
            } else {
                Err(NetError::Protocol(format!(
                    "frame type {ty} carries {} body bytes, expected {want}",
                    body.len()
                )))
            }
        };
        let at_least = |want: usize| -> Result<(), NetError> {
            if body.len() >= want {
                Ok(())
            } else {
                Err(NetError::Protocol(format!(
                    "frame type {ty} carries {} body bytes, expected at least {want}",
                    body.len()
                )))
            }
        };
        let u16_at = |i: usize| u16::from_le_bytes([body[i], body[i + 1]]);
        let u32_at =
            |i: usize| u32::from_le_bytes([body[i], body[i + 1], body[i + 2], body[i + 3]]);
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[i..i + 8]);
            u64::from_le_bytes(b)
        };
        match ty {
            TYPE_HELLO => {
                exact(14)?;
                Ok(Frame::Hello {
                    version: u16_at(0),
                    topology_hash: u64_at(2),
                    process: u32_at(10),
                })
            }
            TYPE_OFFER => {
                at_least(16)?;
                Ok(Frame::Offer {
                    key: u64_at(0),
                    payload: u64_at(8),
                    vector: body[16..].to_vec(),
                })
            }
            TYPE_ACK => {
                at_least(8)?;
                Ok(Frame::Ack {
                    key: u64_at(0),
                    ack: body[8..].to_vec(),
                })
            }
            TYPE_RESYNC => {
                exact(8)?;
                Ok(Frame::Resync { key: u64_at(0) })
            }
            TYPE_QUERY => {
                exact(9)?;
                Ok(Frame::Query {
                    kind: body[0],
                    m1: u32_at(1),
                    m2: u32_at(5),
                })
            }
            TYPE_ANSWER => Ok(Frame::Answer {
                body: body.to_vec(),
            }),
            TYPE_ERROR => Ok(Frame::Error {
                message: String::from_utf8(body.to_vec())
                    .map_err(|_| NetError::Protocol("ERROR frame body is not UTF-8".to_string()))?,
            }),
            TYPE_QUERY_BATCH => {
                at_least(2)?;
                let trace_len = u16_at(0) as usize;
                at_least(2 + trace_len + 4)?;
                let trace = String::from_utf8(body[2..2 + trace_len].to_vec())
                    .map_err(|_| NetError::Protocol("QUERY2 trace id is not UTF-8".to_string()))?;
                let count = u32_at(2 + trace_len) as usize;
                if count > MAX_BATCH {
                    return Err(NetError::Protocol(format!(
                        "QUERY2 batch of {count} queries exceeds the {MAX_BATCH}-query bound"
                    )));
                }
                exact(2 + trace_len + 4 + 9 * count)?;
                let base = 2 + trace_len + 4;
                let queries = (0..count)
                    .map(|i| {
                        let at = base + 9 * i;
                        BatchQuery {
                            kind: body[at],
                            m1: u32_at(at + 1),
                            m2: u32_at(at + 5),
                        }
                    })
                    .collect();
                Ok(Frame::QueryBatch { trace, queries })
            }
            TYPE_ANSWER_BATCH => {
                at_least(4)?;
                let count = u32_at(0) as usize;
                if count > MAX_BATCH {
                    return Err(NetError::Protocol(format!(
                        "ANSWER2 batch of {count} entries exceeds the {MAX_BATCH}-entry bound"
                    )));
                }
                let mut entries = Vec::with_capacity(count);
                let mut at = 4usize;
                for i in 0..count {
                    at_least(at + 5)?;
                    let status = body[at];
                    let len = u32_at(at + 1) as usize;
                    at_least(at + 5 + len)?;
                    let bytes = body[at + 5..at + 5 + len].to_vec();
                    entries.push(match status {
                        0 => BatchEntry::Answer(bytes),
                        1 => BatchEntry::Error(String::from_utf8(bytes).map_err(|_| {
                            NetError::Protocol(format!("ANSWER2 entry {i} error text is not UTF-8"))
                        })?),
                        other => {
                            return Err(NetError::Protocol(format!(
                                "ANSWER2 entry {i} has unknown status {other}"
                            )))
                        }
                    });
                    at += 5 + len;
                }
                exact(at)?;
                Ok(Frame::AnswerBatch { entries })
            }
            other => Err(NetError::Protocol(format!("unknown frame type {other}"))),
        }
    }
}

/// Incremental frame decoder: feed it socket chunks of any size, drain
/// complete frames as they materialise.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if its bytes have all arrived.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on an oversized length prefix, an unknown
    /// frame type, or a malformed body. The stream is unrecoverable after
    /// an error: framing is lost.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, NetError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 {
            return Err(NetError::Protocol("zero-length frame".to_string()));
        }
        if len > MAX_FRAME_LEN {
            return Err(NetError::Protocol(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
            )));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode_body(self.buf[4], &self.buf[5..total])?;
        self.buf.drain(..total);
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// FNV-1a hash of a run's shape: process count plus the decomposition's
/// edge groups. Two nodes whose HELLOs disagree on this hash would stamp
/// with incompatible vector spaces, so the handshake refuses the
/// connection — catching misconfigured launches before any message moves.
pub fn topology_hash(processes: usize, groups: &[Vec<(usize, usize)>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(processes as u64);
    eat(groups.len() as u64);
    for group in groups {
        eat(group.len() as u64);
        for &(u, v) in group {
            eat(u as u64);
            eat(v as u64);
        }
    }
    h
}

/// [`topology_hash`] over a run's actual [`EdgeDecomposition`] — the form
/// every launcher and node uses, so all of them agree byte-for-byte on
/// what they feed the hash.
///
/// [`EdgeDecomposition`]: synctime_graph::EdgeDecomposition
pub fn topology_hash_of(processes: usize, dec: &synctime_graph::EdgeDecomposition) -> u64 {
    let groups: Vec<Vec<(usize, usize)>> = dec
        .groups()
        .iter()
        .map(|g| g.edges().iter().map(|e| e.endpoints()).collect())
        .collect();
    topology_hash(processes, &groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_whole() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                topology_hash: 0xdead_beef,
                process: 3,
            },
            Frame::Offer {
                key: 7,
                payload: 42,
                vector: vec![1, 2, 3],
            },
            Frame::Ack {
                key: 7,
                ack: vec![9],
            },
            Frame::Resync { key: 7 },
            Frame::Query {
                kind: 0,
                m1: 1,
                m2: 2,
            },
            Frame::Answer { body: vec![1] },
            Frame::Error {
                message: "nope".to_string(),
            },
            Frame::QueryBatch {
                trace: "ring-a".to_string(),
                queries: vec![
                    BatchQuery {
                        kind: 0,
                        m1: 1,
                        m2: 2,
                    },
                    BatchQuery {
                        kind: 2,
                        m1: 7,
                        m2: 0,
                    },
                ],
            },
            Frame::QueryBatch {
                trace: String::new(),
                queries: vec![],
            },
            Frame::AnswerBatch {
                entries: vec![
                    BatchEntry::Answer(vec![1]),
                    BatchEntry::Error("message 9 out of range".to_string()),
                    BatchEntry::Answer(vec![]),
                ],
            },
        ];
        let mut reader = FrameReader::new();
        for f in &frames {
            reader.feed(&f.encode());
        }
        for f in &frames {
            assert_eq!(reader.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn oversized_and_unknown_frames_are_rejected() {
        let mut reader = FrameReader::new();
        reader.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        reader.feed(&[1u8; 8]);
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));

        let mut reader = FrameReader::new();
        reader.feed(&2u32.to_le_bytes());
        reader.feed(&[99, 0]); // unknown type 99
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));

        let mut reader = FrameReader::new();
        reader.feed(&0u32.to_le_bytes());
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
    }

    #[test]
    fn oversized_batches_are_rejected() {
        // A QUERY2 declaring more than MAX_BATCH queries is refused from
        // the count field alone, before any body is even present.
        let mut body = vec![0u8, 0]; // empty trace id
        body.extend_from_slice(&((MAX_BATCH as u32) + 1).to_le_bytes());
        let mut framed = ((1 + body.len()) as u32).to_le_bytes().to_vec();
        framed.push(7); // TYPE_QUERY_BATCH
        framed.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.feed(&framed);
        let err = reader.next_frame().unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");

        // Same for an ANSWER2 entry count.
        let mut body = ((MAX_BATCH as u32) + 1).to_le_bytes().to_vec();
        body.extend_from_slice(&[0; 16]);
        let mut framed = ((1 + body.len()) as u32).to_le_bytes().to_vec();
        framed.push(8); // TYPE_ANSWER_BATCH
        framed.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.feed(&framed);
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));

        // Exactly MAX_BATCH round-trips.
        let max = Frame::QueryBatch {
            trace: "t".to_string(),
            queries: vec![
                BatchQuery {
                    kind: 0,
                    m1: 0,
                    m2: 1,
                };
                MAX_BATCH
            ],
        };
        let mut reader = FrameReader::new();
        reader.feed(&max.encode());
        assert_eq!(reader.next_frame().unwrap(), Some(max));
    }

    #[test]
    fn hash_separates_shapes() {
        let a = topology_hash(3, &[vec![(0, 1), (1, 2)]]);
        let b = topology_hash(3, &[vec![(0, 1)], vec![(1, 2)]]);
        let c = topology_hash(4, &[vec![(0, 1), (1, 2)]]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, topology_hash(3, &[vec![(0, 1), (1, 2)]]));
    }

    #[test]
    fn frame_sizes_match_core_wire_pricing() {
        use synctime_core::wire::{ack_frame_bytes, offer_frame_bytes, resync_frame_bytes};
        let offer = Frame::Offer {
            key: 1,
            payload: 2,
            vector: vec![0; 11],
        };
        assert_eq!(offer.encode().len() as u64, offer_frame_bytes(11));
        let ack = Frame::Ack {
            key: 1,
            ack: vec![0; 5],
        };
        assert_eq!(ack.encode().len() as u64, ack_frame_bytes(5));
        let resync = Frame::Resync { key: 1 };
        assert_eq!(resync.encode().len() as u64, resync_frame_bytes());
    }

    #[test]
    fn batch_frame_sizes_match_core_wire_pricing() {
        use synctime_core::wire::{
            answer_frame_bytes, batch_answer_frame_bytes, batch_query_frame_bytes,
            query_frame_bytes,
        };
        let query = Frame::Query {
            kind: 0,
            m1: 1,
            m2: 2,
        };
        assert_eq!(query.encode().len() as u64, query_frame_bytes());
        let answer = Frame::Answer { body: vec![1] };
        assert_eq!(answer.encode().len() as u64, answer_frame_bytes(1));
        for count in [0usize, 1, 16, 256] {
            let batch = Frame::QueryBatch {
                trace: "alpha".to_string(),
                queries: vec![
                    BatchQuery {
                        kind: 0,
                        m1: 3,
                        m2: 4,
                    };
                    count
                ],
            };
            assert_eq!(
                batch.encode().len() as u64,
                batch_query_frame_bytes(5, count)
            );
            let answers = Frame::AnswerBatch {
                entries: vec![BatchEntry::Answer(vec![1]); count],
            };
            assert_eq!(
                answers.encode().len() as u64,
                batch_answer_frame_bytes(count, count)
            );
        }
    }
}
