//! The length-prefixed frame protocol every `synctime-net` socket speaks.
//!
//! A frame is `[u32 le length][u8 type][body]`, where `length` counts the
//! type byte plus the body. Thirteen frame types exist:
//!
//! | type | name    | body (little-endian)                                              |
//! |------|---------|-------------------------------------------------------------------|
//! | 0    | HELLO   | `u16` version, `u64` topology hash, `u32` process                 |
//! | 1    | OFFER   | `u64` key, `u64` payload, delta-encoded vector                    |
//! | 2    | ACK     | `u64` key, delta-encoded acknowledgement vector                   |
//! | 3    | RESYNC  | `u64` key                                                         |
//! | 4    | QUERY   | `u8` kind, `u32` m1, `u32` m2                                     |
//! | 5    | ANSWER  | kind-specific answer bytes                                        |
//! | 6    | ERROR   | UTF-8 diagnostic                                                  |
//! | 7    | QUERY2  | `u16` trace len, trace id, `u32` count, count × (`u8` kind, `u32` m1, `u32` m2) |
//! | 8    | ANSWER2 | `u32` count, count × (`u8` status, `u32` len, body)               |
//! | 9    | QUERY3  | `u32` correlation id, then a QUERY2 body                          |
//! | 10   | ANSWER3 | `u32` correlation id, then an ANSWER2 body                        |
//! | 11   | RECONFIGURE | `u8` phase, `u64` epoch; phase 0 (prepare): `u64` topology hash, `u32` op count, count × (`u8` kind, `u32` u, `u32` v), `u32` old dim, `u32` new dim, old dim × `u32` remap slot; phase 1 (commit): full-encoded baseline vector |
//! | 12   | RECONFIG_ACK | `u64` epoch, `u32` process, `u8` status, `u64` current epoch, full-encoded clock |
//!
//! QUERY2/ANSWER2 are the **batch** query frames (protocol v2): one frame
//! carries up to [`MAX_BATCH`] queries against one named trace of a
//! multi-trace catalog, so framing, the trace id, and the syscall are paid
//! once per batch instead of once per query. The trace id is UTF-8, at
//! most [`MAX_TRACE_NAME`] bytes (enforced on the encode and decode
//! paths, so the `u16` length prefix can never silently truncate it); the
//! empty id means "the catalog's default trace" and gives a batch the v1
//! single-trace semantics. Each ANSWER2 entry is either status 0 followed
//! by the same kind-specific answer bytes a v1 ANSWER frame would carry for
//! that query, or status 1 followed by a UTF-8 diagnostic — one bad message
//! id fails its entry, not the batch.
//!
//! QUERY3/ANSWER3 are the **pipelined** batch frames (protocol v3): the
//! same bodies as QUERY2/ANSWER2 prefixed by a 4-byte correlation id the
//! server echoes verbatim, so a client can keep a window of batches in
//! flight on one connection and match answers that complete out of order.
//! Entry bodies are byte-identical to their v2 (and thus v1) counterparts;
//! only the correlation prefix differs.
//!
//! RECONFIGURE/RECONFIG_ACK are the **reconfiguration control plane**
//! frames (see [`crate::reconfig`]): a coordinator ships an
//! epoch-numbered topology-edit batch plus its expected
//! [`GroupRemap`](synctime_graph::GroupRemap) (prepare), each node
//! answers with its rebased clock or an epoch-mismatch refusal, and the
//! coordinator commits the max-merged uniform baseline vector every node
//! restarts the new epoch from.
//!
//! OFFER/ACK/RESYNC body layouts match `synctime_core::wire`'s frame
//! pricing helpers (`offer_frame_bytes` and friends) byte for byte, and
//! QUERY/ANSWER/QUERY2/ANSWER2/QUERY3/ANSWER3 match `query_frame_bytes` /
//! `batch_query_frame_bytes` / `batch_query3_frame_bytes` and friends the
//! same way, so the byte counts the in-process runtime reports are exactly
//! what a TCP run moves on the wire — and bytes-per-query is a measured,
//! not estimated, metric.
//!
//! Decoding is incremental: a [`FrameReader`] is fed arbitrary chunks as
//! they arrive from a socket and yields complete frames as soon as their
//! bytes are in. Malformed frames (unknown type, truncated body, oversized
//! length prefix) are rejected with a typed [`NetError::Protocol`] — a
//! desynchronised byte stream can never be silently misparsed.
//!
//! The serving hot path avoids the owned [`Frame`] representation
//! entirely: [`FrameReader::peek_frame`]/[`FrameReader::consume_frame`]
//! expose a complete frame's type and body as borrowed slices,
//! [`encode_query_batch_into`] and friends append frames to a caller-owned
//! buffer, and [`FrameScratch`] bundles the reusable buffers a connection
//! threads through encode/decode so steady state allocates nothing.

use crate::error::NetError;

/// The protocol version carried in every HELLO. Bumped on any frame-layout
/// change; transport endpoints refuse to talk across versions. Version 2
/// added the batched QUERY2/ANSWER2 frames; version 3 added the pipelined
/// QUERY3/ANSWER3 frames. Query servers still accept v2 clients (every v2
/// frame is valid v3), but the mesh transport stays exact-match.
pub const PROTOCOL_VERSION: u16 = 3;

/// The oldest client protocol version a query server still accepts. v2
/// clients never send QUERY3, and every frame they do send means the same
/// thing under v3, so serving them costs nothing.
pub const MIN_QUERY_VERSION: u16 = 2;

/// Upper bound on a frame's length prefix: 16 MiB. A prefix beyond this is
/// a desynchronised or hostile stream, not a real frame (the largest
/// legitimate frame is an OFFER whose vector is bounded by the topology's
/// decomposition dimension).
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// Bytes of the fixed frame prefix: the `u32` length plus the type byte.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Upper bound on the queries one QUERY2 frame may carry (and on the
/// entries one ANSWER2 frame may carry). A larger declared count is a
/// protocol violation, rejected before any allocation; clients split
/// larger batches across frames transparently.
pub const MAX_BATCH: usize = 4096;

/// Upper bound on a QUERY2/QUERY3 trace id in bytes. Well under the
/// `u16` length prefix's 65535-byte ceiling, so an in-bounds name can
/// never be silently truncated by the cast into the prefix; longer names
/// are a typed [`NetError::Query`] at encode time on the client and a
/// [`NetError::Protocol`] at decode time on the server.
pub const MAX_TRACE_NAME: usize = 4096;

const TYPE_HELLO: u8 = 0;
const TYPE_OFFER: u8 = 1;
const TYPE_ACK: u8 = 2;
const TYPE_RESYNC: u8 = 3;
const TYPE_QUERY: u8 = 4;
const TYPE_ANSWER: u8 = 5;
const TYPE_ERROR: u8 = 6;
const TYPE_QUERY_BATCH: u8 = 7;
const TYPE_ANSWER_BATCH: u8 = 8;
/// Wire type byte of a QUERY3 frame — `pub(crate)` so the serving hot
/// path can dispatch on a peeked type without constructing a [`Frame`].
pub(crate) const TYPE_QUERY_PIPELINED: u8 = 9;
/// Wire type byte of an ANSWER3 frame.
pub(crate) const TYPE_ANSWER_PIPELINED: u8 = 10;
/// Wire type byte of a RECONFIGURE control frame (prepare or commit).
pub(crate) const TYPE_RECONFIGURE: u8 = 11;
/// Wire type byte of a RECONFIG_ACK control frame.
pub(crate) const TYPE_RECONFIG_ACK: u8 = 12;

/// One question inside a QUERY2 batch frame: the same `(kind, m1, m2)`
/// triple a v1 QUERY frame carries (see `query::QueryKind` constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchQuery {
    /// The question: see `query::QUERY_PRECEDES` and friends.
    pub kind: u8,
    /// First message number (0-based id).
    pub m1: u32,
    /// Second message number (ignored by single-message kinds).
    pub m2: u32,
}

/// One reply inside an ANSWER2 batch frame: positionally matched to the
/// batch's queries, each entry succeeds or fails independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEntry {
    /// The query succeeded; the bytes are exactly what a v1 ANSWER frame
    /// would carry for the same query.
    Answer(Vec<u8>),
    /// The query was rejected (out-of-range id, unknown kind); the batch's
    /// other entries are unaffected.
    Error(String),
}

/// One protocol frame (see the module docs for the wire layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: each endpoint sends one HELLO first and
    /// validates the peer's version and topology hash before any traffic.
    Hello {
        /// The speaker's [`PROTOCOL_VERSION`].
        version: u16,
        /// FNV-1a hash of the run's topology and decomposition (see
        /// [`topology_hash`]); `0` is the wildcard used by query clients.
        topology_hash: u64,
        /// The speaker's process id (`u32::MAX` for query clients).
        process: u32,
    },
    /// A rendezvous offer: program payload plus delta-encoded vector.
    Offer {
        /// The message's reconstruction key.
        key: u64,
        /// The program payload.
        payload: u64,
        /// The piggybacked vector, delta-encoded on the channel stream.
        vector: Vec<u8>,
    },
    /// The receiver's acknowledgement completing a rendezvous.
    Ack {
        /// The acknowledged offer's key.
        key: u64,
        /// The receiver's pre-update vector, delta-encoded.
        ack: Vec<u8>,
    },
    /// The receiver's request to re-offer `key` with a full vector.
    Resync {
        /// The bounced offer's key.
        key: u64,
    },
    /// A precedence query against a stamped trace.
    Query {
        /// The question: see `query::QueryKind`.
        kind: u8,
        /// First message number (0-based id).
        m1: u32,
        /// Second message number (ignored by single-message kinds).
        m2: u32,
    },
    /// A query server's reply; the body layout depends on the query kind.
    Answer {
        /// Kind-specific answer bytes.
        body: Vec<u8>,
    },
    /// A typed failure (bad query, out-of-range message, ...).
    Error {
        /// Human-readable diagnostic.
        message: String,
    },
    /// A v2 batch of queries against one named trace of the catalog.
    QueryBatch {
        /// The trace id the batch targets; empty means the catalog's
        /// default trace.
        trace: String,
        /// The questions, answered positionally (at most [`MAX_BATCH`]).
        queries: Vec<BatchQuery>,
    },
    /// A v2 batch of replies, positionally matched to a QUERY2 frame.
    AnswerBatch {
        /// One entry per query, in query order.
        entries: Vec<BatchEntry>,
    },
    /// A v3 pipelined batch of queries: a [`Frame::QueryBatch`] carrying a
    /// correlation id the server echoes, so several batches can be in
    /// flight on one connection at once.
    QueryPipelined {
        /// Client-chosen correlation id, echoed verbatim in the answer.
        corr: u32,
        /// The trace id the batch targets; empty means the catalog's
        /// default trace.
        trace: String,
        /// The questions, answered positionally (at most [`MAX_BATCH`]).
        queries: Vec<BatchQuery>,
    },
    /// A v3 pipelined batch of replies, matched to its QUERY3 frame by
    /// correlation id rather than by position in the stream.
    AnswerPipelined {
        /// The correlation id of the QUERY3 frame being answered.
        corr: u32,
        /// One entry per query, in query order within the batch.
        entries: Vec<BatchEntry>,
    },
    /// A reconfiguration control frame: an epoch-numbered prepare carrying
    /// topology edits and the expected remap, or the commit carrying the
    /// uniform baseline vector (see [`crate::reconfig`]).
    Reconfigure(crate::reconfig::ReconfigFrame),
    /// A node's answer to a RECONFIGURE prepare: applied (with its rebased
    /// clock) or refused with an epoch mismatch.
    ReconfigAck(crate::reconfig::ReconfigAckFrame),
}

/// Starts a frame in `out`: reserves the length prefix and writes the type
/// byte. Returns the patch position to hand to [`end_frame`].
pub(crate) fn begin_frame(out: &mut Vec<u8>, ty: u8) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    out.push(ty);
    start
}

/// Finishes a frame started by [`begin_frame`]: backpatches the length
/// prefix from whatever the caller appended in between.
pub(crate) fn end_frame(out: &mut Vec<u8>, start: usize) {
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Appends a QUERY2 (`corr == None`) or QUERY3 (`corr == Some`) frame to
/// `out` from borrowed parts — the allocation-free form of encoding
/// [`Frame::QueryBatch`] / [`Frame::QueryPipelined`], used by the client
/// hot path (and reusable by tests and benches to build request streams).
///
/// # Errors
///
/// [`NetError::Query`] when the trace id exceeds [`MAX_TRACE_NAME`] bytes
/// (the `u16` length prefix would otherwise truncate ids past 65535
/// bytes and desynchronise the frame) or the batch exceeds [`MAX_BATCH`]
/// queries. Nothing is appended to `out` on error.
pub fn encode_query_batch_into(
    out: &mut Vec<u8>,
    corr: Option<u32>,
    trace: &str,
    queries: &[BatchQuery],
) -> Result<(), NetError> {
    if trace.len() > MAX_TRACE_NAME {
        return Err(NetError::Query(format!(
            "trace id of {} bytes exceeds the {MAX_TRACE_NAME}-byte bound",
            trace.len()
        )));
    }
    if queries.len() > MAX_BATCH {
        return Err(NetError::Query(format!(
            "batch of {} queries exceeds the {MAX_BATCH}-query bound",
            queries.len()
        )));
    }
    let ty = if corr.is_some() {
        TYPE_QUERY_PIPELINED
    } else {
        TYPE_QUERY_BATCH
    };
    let start = begin_frame(out, ty);
    if let Some(corr) = corr {
        out.extend_from_slice(&corr.to_le_bytes());
    }
    out.extend_from_slice(&(trace.len() as u16).to_le_bytes());
    out.extend_from_slice(trace.as_bytes());
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for q in queries {
        out.push(q.kind);
        out.extend_from_slice(&q.m1.to_le_bytes());
        out.extend_from_slice(&q.m2.to_le_bytes());
    }
    end_frame(out, start);
    Ok(())
}

/// Appends a RESYNC frame to `out` (the transport's allocation-free form
/// of encoding [`Frame::Resync`]; infallible, unlike the batch encoders).
pub fn encode_resync_into(out: &mut Vec<u8>, key: u64) {
    let start = begin_frame(out, TYPE_RESYNC);
    out.extend_from_slice(&key.to_le_bytes());
    end_frame(out, start);
}

/// Appends an OFFER frame to `out` from borrowed parts (the transport's
/// allocation-free form of encoding [`Frame::Offer`]).
pub fn encode_offer_into(out: &mut Vec<u8>, key: u64, payload: u64, vector: &[u8]) {
    let start = begin_frame(out, TYPE_OFFER);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&payload.to_le_bytes());
    out.extend_from_slice(vector);
    end_frame(out, start);
}

/// Appends an ACK frame to `out` from borrowed parts (the transport's
/// allocation-free form of encoding [`Frame::Ack`]).
pub fn encode_ack_into(out: &mut Vec<u8>, key: u64, ack: &[u8]) {
    let start = begin_frame(out, TYPE_ACK);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(ack);
    end_frame(out, start);
}

/// Reusable per-connection encode/decode buffers for the serving and
/// pipelined-client hot paths.
///
/// Ownership rule: a `FrameScratch` belongs to exactly one connection at a
/// time (a pool worker hands its scratch to whichever connection it is
/// currently serving), and every use begins by `clear()`ing the buffer it
/// is about to fill — capacity persists across frames and connections, so
/// once the buffers have grown to a connection's working set the steady
/// state performs **zero heap allocations per query** (proven by the
/// counting-allocator test `crates/net/tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct FrameScratch {
    /// Encode buffer: outgoing frames accumulate here between flushes, so
    /// every answer decoded from one socket read leaves in one write.
    pub out: Vec<u8>,
    /// Decoded-query buffer reused across batches by the pipelined client.
    pub queries: Vec<BatchQuery>,
    /// Answer-body arena: one entry's kind-specific answer bytes are built
    /// here before being framed with their (status, length) prefix.
    pub body: Vec<u8>,
}

impl FrameScratch {
    /// Empty scratch; buffers grow to the connection's working set on
    /// first use and then stay warm.
    pub fn new() -> Self {
        FrameScratch::default()
    }
}

impl Frame {
    /// Serialises the frame, length prefix included.
    ///
    /// Convenience form of [`Frame::encode_into`] for cold paths and
    /// tests; allocates a fresh buffer per call.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when a batch frame's trace id exceeds
    /// [`MAX_TRACE_NAME`] bytes or its query/entry list exceeds
    /// [`MAX_BATCH`].
    pub fn encode(&self) -> Result<Vec<u8>, NetError> {
        let mut out = Vec::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Appends the serialised frame (length prefix included) to `out`
    /// without intermediate allocation: the length prefix is reserved up
    /// front and backpatched once the body is in place.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when a batch frame's trace id exceeds
    /// [`MAX_TRACE_NAME`] bytes or its query/entry list exceeds
    /// [`MAX_BATCH`]; `out` is left untouched on error. All other frame
    /// types encode infallibly.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), NetError> {
        match self {
            Frame::Hello {
                version,
                topology_hash,
                process,
            } => {
                let start = begin_frame(out, TYPE_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&topology_hash.to_le_bytes());
                out.extend_from_slice(&process.to_le_bytes());
                end_frame(out, start);
            }
            Frame::Offer {
                key,
                payload,
                vector,
            } => encode_offer_into(out, *key, *payload, vector),
            Frame::Ack { key, ack } => encode_ack_into(out, *key, ack),
            Frame::Resync { key } => encode_resync_into(out, *key),
            Frame::Query { kind, m1, m2 } => {
                let start = begin_frame(out, TYPE_QUERY);
                out.push(*kind);
                out.extend_from_slice(&m1.to_le_bytes());
                out.extend_from_slice(&m2.to_le_bytes());
                end_frame(out, start);
            }
            Frame::Answer { body } => {
                let start = begin_frame(out, TYPE_ANSWER);
                out.extend_from_slice(body);
                end_frame(out, start);
            }
            Frame::Error { message } => {
                let start = begin_frame(out, TYPE_ERROR);
                out.extend_from_slice(message.as_bytes());
                end_frame(out, start);
            }
            Frame::QueryBatch { trace, queries } => {
                encode_query_batch_into(out, None, trace, queries)?;
            }
            Frame::QueryPipelined {
                corr,
                trace,
                queries,
            } => encode_query_batch_into(out, Some(*corr), trace, queries)?,
            Frame::AnswerBatch { entries } => {
                Self::encode_entries(out, TYPE_ANSWER_BATCH, None, entries)?;
            }
            Frame::AnswerPipelined { corr, entries } => {
                Self::encode_entries(out, TYPE_ANSWER_PIPELINED, Some(*corr), entries)?;
            }
            Frame::Reconfigure(frame) => {
                crate::reconfig::encode_reconfigure_into(out, TYPE_RECONFIGURE, frame);
            }
            Frame::ReconfigAck(ack) => {
                crate::reconfig::encode_reconfig_ack_into(out, TYPE_RECONFIG_ACK, ack);
            }
        }
        Ok(())
    }

    fn encode_entries(
        out: &mut Vec<u8>,
        ty: u8,
        corr: Option<u32>,
        entries: &[BatchEntry],
    ) -> Result<(), NetError> {
        if entries.len() > MAX_BATCH {
            return Err(NetError::Query(format!(
                "answer batch of {} entries exceeds the {MAX_BATCH}-entry bound",
                entries.len()
            )));
        }
        let start = begin_frame(out, ty);
        if let Some(corr) = corr {
            out.extend_from_slice(&corr.to_le_bytes());
        }
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in entries {
            let (status, bytes): (u8, &[u8]) = match e {
                BatchEntry::Answer(b) => (0, b),
                BatchEntry::Error(m) => (1, m.as_bytes()),
            };
            out.push(status);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        end_frame(out, start);
        Ok(())
    }

    /// Parses one frame body (`ty` byte already split off).
    fn decode_body(ty: u8, body: &[u8]) -> Result<Frame, NetError> {
        let exact = |want: usize| -> Result<(), NetError> {
            if body.len() == want {
                Ok(())
            } else {
                Err(NetError::Protocol(format!(
                    "frame type {ty} carries {} body bytes, expected {want}",
                    body.len()
                )))
            }
        };
        let at_least = |want: usize| -> Result<(), NetError> {
            if body.len() >= want {
                Ok(())
            } else {
                Err(NetError::Protocol(format!(
                    "frame type {ty} carries {} body bytes, expected at least {want}",
                    body.len()
                )))
            }
        };
        let u16_at = |i: usize| u16::from_le_bytes([body[i], body[i + 1]]);
        let u32_at =
            |i: usize| u32::from_le_bytes([body[i], body[i + 1], body[i + 2], body[i + 3]]);
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[i..i + 8]);
            u64::from_le_bytes(b)
        };
        match ty {
            TYPE_HELLO => {
                exact(14)?;
                Ok(Frame::Hello {
                    version: u16_at(0),
                    topology_hash: u64_at(2),
                    process: u32_at(10),
                })
            }
            TYPE_OFFER => {
                at_least(16)?;
                Ok(Frame::Offer {
                    key: u64_at(0),
                    payload: u64_at(8),
                    vector: body[16..].to_vec(),
                })
            }
            TYPE_ACK => {
                at_least(8)?;
                Ok(Frame::Ack {
                    key: u64_at(0),
                    ack: body[8..].to_vec(),
                })
            }
            TYPE_RESYNC => {
                exact(8)?;
                Ok(Frame::Resync { key: u64_at(0) })
            }
            TYPE_QUERY => {
                exact(9)?;
                Ok(Frame::Query {
                    kind: body[0],
                    m1: u32_at(1),
                    m2: u32_at(5),
                })
            }
            TYPE_ANSWER => Ok(Frame::Answer {
                body: body.to_vec(),
            }),
            TYPE_ERROR => Ok(Frame::Error {
                message: String::from_utf8(body.to_vec())
                    .map_err(|_| NetError::Protocol("ERROR frame body is not UTF-8".to_string()))?,
            }),
            TYPE_QUERY_BATCH => {
                let (trace, queries) = Self::decode_query_batch(body)?;
                Ok(Frame::QueryBatch { trace, queries })
            }
            TYPE_ANSWER_BATCH => {
                let entries = Self::decode_answer_batch(body)?;
                Ok(Frame::AnswerBatch { entries })
            }
            TYPE_QUERY_PIPELINED => {
                at_least(4)?;
                let (trace, queries) = Self::decode_query_batch(&body[4..])?;
                Ok(Frame::QueryPipelined {
                    corr: u32_at(0),
                    trace,
                    queries,
                })
            }
            TYPE_ANSWER_PIPELINED => {
                at_least(4)?;
                let entries = Self::decode_answer_batch(&body[4..])?;
                Ok(Frame::AnswerPipelined {
                    corr: u32_at(0),
                    entries,
                })
            }
            TYPE_RECONFIGURE => Ok(Frame::Reconfigure(crate::reconfig::decode_reconfigure(
                body,
            )?)),
            TYPE_RECONFIG_ACK => Ok(Frame::ReconfigAck(crate::reconfig::decode_reconfig_ack(
                body,
            )?)),
            other => Err(NetError::Protocol(format!("unknown frame type {other}"))),
        }
    }

    /// Parses a QUERY2/QUERY3 batch body (correlation id, if any, already
    /// split off).
    fn decode_query_batch(body: &[u8]) -> Result<(String, Vec<BatchQuery>), NetError> {
        let view = QueryBatchView::parse(body)?;
        Ok((view.trace().to_string(), view.queries().collect()))
    }

    /// Parses an ANSWER2/ANSWER3 entry list (correlation id, if any,
    /// already split off).
    fn decode_answer_batch(body: &[u8]) -> Result<Vec<BatchEntry>, NetError> {
        let view = AnswerBatchView::parse(body)?;
        let mut entries = Vec::with_capacity(view.count());
        for (i, (status, bytes)) in view.entries().enumerate() {
            entries.push(match status {
                0 => BatchEntry::Answer(bytes.to_vec()),
                1 => BatchEntry::Error(String::from_utf8(bytes.to_vec()).map_err(|_| {
                    NetError::Protocol(format!("ANSWER2 entry {i} error text is not UTF-8"))
                })?),
                other => {
                    return Err(NetError::Protocol(format!(
                        "ANSWER2 entry {i} has unknown status {other}"
                    )))
                }
            });
        }
        Ok(entries)
    }
}

/// A borrowed, validated view over a QUERY2/QUERY3 batch body — the
/// allocation-free decode the serving hot path uses instead of
/// materialising a [`Frame::QueryBatch`].
#[derive(Debug, Clone, Copy)]
pub struct QueryBatchView<'a> {
    trace: &'a str,
    records: &'a [u8],
    count: usize,
}

impl<'a> QueryBatchView<'a> {
    /// Validates and wraps a batch body (the bytes after the type byte and,
    /// for QUERY3, after the correlation id).
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on truncation, trailing garbage, a non-UTF-8
    /// trace id, a trace id beyond [`MAX_TRACE_NAME`], or a count beyond
    /// [`MAX_BATCH`].
    pub fn parse(body: &'a [u8]) -> Result<Self, NetError> {
        if body.len() < 2 {
            return Err(NetError::Protocol(
                "QUERY2 body too short for trace length".to_string(),
            ));
        }
        let trace_len = u16::from_le_bytes([body[0], body[1]]) as usize;
        if trace_len > MAX_TRACE_NAME {
            return Err(NetError::Protocol(format!(
                "QUERY2 trace id of {trace_len} bytes exceeds the {MAX_TRACE_NAME}-byte bound"
            )));
        }
        if body.len() < 2 + trace_len + 4 {
            return Err(NetError::Protocol(
                "QUERY2 body too short for trace id and count".to_string(),
            ));
        }
        let trace = std::str::from_utf8(&body[2..2 + trace_len])
            .map_err(|_| NetError::Protocol("QUERY2 trace id is not UTF-8".to_string()))?;
        let at = 2 + trace_len;
        let count =
            u32::from_le_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]) as usize;
        if count > MAX_BATCH {
            return Err(NetError::Protocol(format!(
                "QUERY2 batch of {count} queries exceeds the {MAX_BATCH}-query bound"
            )));
        }
        let records = &body[at + 4..];
        if records.len() != 9 * count {
            return Err(NetError::Protocol(format!(
                "QUERY2 batch of {count} queries carries {} record bytes, expected {}",
                records.len(),
                9 * count
            )));
        }
        Ok(QueryBatchView {
            trace,
            records,
            count,
        })
    }

    /// The batch's trace id (empty means the catalog's default trace).
    pub fn trace(&self) -> &'a str {
        self.trace
    }

    /// Number of queries in the batch.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The queries, decoded on the fly from the borrowed record bytes.
    pub fn queries(&self) -> impl Iterator<Item = BatchQuery> + 'a {
        self.records.chunks_exact(9).map(|r| BatchQuery {
            kind: r[0],
            m1: u32::from_le_bytes([r[1], r[2], r[3], r[4]]),
            m2: u32::from_le_bytes([r[5], r[6], r[7], r[8]]),
        })
    }
}

/// A borrowed, validated view over an ANSWER2/ANSWER3 entry list — the
/// allocation-free decode the pipelined client uses instead of
/// materialising [`BatchEntry`] values.
#[derive(Debug, Clone, Copy)]
pub struct AnswerBatchView<'a> {
    entries: &'a [u8],
    count: usize,
}

impl<'a> AnswerBatchView<'a> {
    /// Validates and wraps an entry list (the bytes after the type byte
    /// and, for ANSWER3, after the correlation id). Walks every entry once
    /// so [`AnswerBatchView::entries`] can iterate infallibly.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on truncation, trailing garbage, or a count
    /// beyond [`MAX_BATCH`].
    pub fn parse(body: &'a [u8]) -> Result<Self, NetError> {
        if body.len() < 4 {
            return Err(NetError::Protocol(
                "ANSWER2 body too short for entry count".to_string(),
            ));
        }
        let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
        if count > MAX_BATCH {
            return Err(NetError::Protocol(format!(
                "ANSWER2 batch of {count} entries exceeds the {MAX_BATCH}-entry bound"
            )));
        }
        let entries = &body[4..];
        let mut at = 0usize;
        for _ in 0..count {
            if entries.len() < at + 5 {
                return Err(NetError::Protocol(
                    "ANSWER2 entry truncated at its prefix".to_string(),
                ));
            }
            let len = u32::from_le_bytes([
                entries[at + 1],
                entries[at + 2],
                entries[at + 3],
                entries[at + 4],
            ]) as usize;
            if entries.len() < at + 5 + len {
                return Err(NetError::Protocol(
                    "ANSWER2 entry truncated in its body".to_string(),
                ));
            }
            at += 5 + len;
        }
        if at != entries.len() {
            return Err(NetError::Protocol(format!(
                "ANSWER2 batch carries {} trailing bytes",
                entries.len() - at
            )));
        }
        Ok(AnswerBatchView { entries, count })
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The `(status, body)` pairs in entry order, borrowed from the frame
    /// bytes. Status 0 is an answer, 1 an error diagnostic; any other
    /// value is surfaced to the caller to reject.
    pub fn entries(&self) -> impl Iterator<Item = (u8, &'a [u8])> + 'a {
        let entries = self.entries;
        let mut at = 0usize;
        (0..self.count).map(move |_| {
            let status = entries[at];
            let len = u32::from_le_bytes([
                entries[at + 1],
                entries[at + 2],
                entries[at + 3],
                entries[at + 4],
            ]) as usize;
            let bytes = &entries[at + 5..at + 5 + len];
            at += 5 + len;
            (status, bytes)
        })
    }
}

/// Incremental frame decoder: feed it socket chunks of any size, drain
/// complete frames as they materialise.
///
/// Consumed frames advance a cursor instead of shifting the buffer; the
/// buffer is compacted once per [`FrameReader::feed`] call (one `memmove`
/// per socket read, however many frames it carried) and its capacity is
/// kept, so steady-state reading allocates nothing.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Validates the length prefix of the frame at the cursor. Returns the
    /// frame's total on-wire size if it has fully arrived.
    fn complete_frame_len(&self) -> Result<Option<usize>, NetError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len == 0 {
            return Err(NetError::Protocol("zero-length frame".to_string()));
        }
        if len > MAX_FRAME_LEN {
            return Err(NetError::Protocol(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
            )));
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        Ok(Some(total))
    }

    /// Pops the next complete frame, if its bytes have all arrived.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on an oversized length prefix, an unknown
    /// frame type, or a malformed body. The stream is unrecoverable after
    /// an error: framing is lost.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, NetError> {
        let Some(total) = self.complete_frame_len()? else {
            return Ok(None);
        };
        let pending = &self.buf[self.start..self.start + total];
        let frame = Frame::decode_body(pending[4], &pending[5..])?;
        self.start += total;
        Ok(Some(frame))
    }

    /// Exposes the next complete frame as its type byte and borrowed body,
    /// without decoding it into an owned [`Frame`]. The frame stays at the
    /// cursor until [`FrameReader::consume_frame`] is called, so the hot
    /// path can answer straight out of the receive buffer.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on a zero or oversized length prefix (the
    /// body is *not* validated here — that is the caller's dispatch).
    pub fn peek_frame(&self) -> Result<Option<(u8, &[u8])>, NetError> {
        let Some(total) = self.complete_frame_len()? else {
            return Ok(None);
        };
        let pending = &self.buf[self.start..self.start + total];
        Ok(Some((pending[4], &pending[5..])))
    }

    /// Consumes the frame last exposed by [`FrameReader::peek_frame`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if no complete frame is at the cursor.
    pub fn consume_frame(&mut self) {
        let total = self.complete_frame_len().ok().flatten().unwrap_or_else(|| {
            debug_assert!(false, "consume_frame without a peeked frame");
            0
        });
        self.start += total;
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// FNV-1a hash of a run's shape: process count plus the decomposition's
/// edge groups. Two nodes whose HELLOs disagree on this hash would stamp
/// with incompatible vector spaces, so the handshake refuses the
/// connection — catching misconfigured launches before any message moves.
pub fn topology_hash(processes: usize, groups: &[Vec<(usize, usize)>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(processes as u64);
    eat(groups.len() as u64);
    for group in groups {
        eat(group.len() as u64);
        for &(u, v) in group {
            eat(u as u64);
            eat(v as u64);
        }
    }
    h
}

/// [`topology_hash`] over a run's actual [`EdgeDecomposition`] — the form
/// every launcher and node uses, so all of them agree byte-for-byte on
/// what they feed the hash.
///
/// [`EdgeDecomposition`]: synctime_graph::EdgeDecomposition
pub fn topology_hash_of(processes: usize, dec: &synctime_graph::EdgeDecomposition) -> u64 {
    let groups: Vec<Vec<(usize, usize)>> = dec
        .groups()
        .iter()
        .map(|g| g.edges().iter().map(|e| e.endpoints()).collect())
        .collect();
    topology_hash(processes, &groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_whole() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                topology_hash: 0xdead_beef,
                process: 3,
            },
            Frame::Offer {
                key: 7,
                payload: 42,
                vector: vec![1, 2, 3],
            },
            Frame::Ack {
                key: 7,
                ack: vec![9],
            },
            Frame::Resync { key: 7 },
            Frame::Query {
                kind: 0,
                m1: 1,
                m2: 2,
            },
            Frame::Answer { body: vec![1] },
            Frame::Error {
                message: "nope".to_string(),
            },
            Frame::QueryBatch {
                trace: "ring-a".to_string(),
                queries: vec![
                    BatchQuery {
                        kind: 0,
                        m1: 1,
                        m2: 2,
                    },
                    BatchQuery {
                        kind: 2,
                        m1: 7,
                        m2: 0,
                    },
                ],
            },
            Frame::QueryBatch {
                trace: String::new(),
                queries: vec![],
            },
            Frame::AnswerBatch {
                entries: vec![
                    BatchEntry::Answer(vec![1]),
                    BatchEntry::Error("message 9 out of range".to_string()),
                    BatchEntry::Answer(vec![]),
                ],
            },
            Frame::QueryPipelined {
                corr: 0xfeed_beef,
                trace: "ring-a".to_string(),
                queries: vec![BatchQuery {
                    kind: 1,
                    m1: 4,
                    m2: 5,
                }],
            },
            Frame::AnswerPipelined {
                corr: u32::MAX,
                entries: vec![
                    BatchEntry::Answer(vec![0]),
                    BatchEntry::Error("no".to_string()),
                ],
            },
        ];
        let mut reader = FrameReader::new();
        for f in &frames {
            reader.feed(&f.encode().unwrap());
        }
        for f in &frames {
            assert_eq!(reader.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn oversized_and_unknown_frames_are_rejected() {
        let mut reader = FrameReader::new();
        reader.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        reader.feed(&[1u8; 8]);
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));

        let mut reader = FrameReader::new();
        reader.feed(&2u32.to_le_bytes());
        reader.feed(&[99, 0]); // unknown type 99
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));

        let mut reader = FrameReader::new();
        reader.feed(&0u32.to_le_bytes());
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
    }

    #[test]
    fn oversized_batches_are_rejected() {
        // A QUERY2 declaring more than MAX_BATCH queries is refused from
        // the count field alone, before any body is even present.
        let mut body = vec![0u8, 0]; // empty trace id
        body.extend_from_slice(&((MAX_BATCH as u32) + 1).to_le_bytes());
        let mut framed = ((1 + body.len()) as u32).to_le_bytes().to_vec();
        framed.push(7); // TYPE_QUERY_BATCH
        framed.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.feed(&framed);
        let err = reader.next_frame().unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");

        // Same for an ANSWER2 entry count.
        let mut body = ((MAX_BATCH as u32) + 1).to_le_bytes().to_vec();
        body.extend_from_slice(&[0; 16]);
        let mut framed = ((1 + body.len()) as u32).to_le_bytes().to_vec();
        framed.push(8); // TYPE_ANSWER_BATCH
        framed.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.feed(&framed);
        assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));

        // Exactly MAX_BATCH round-trips.
        let max = Frame::QueryBatch {
            trace: "t".to_string(),
            queries: vec![
                BatchQuery {
                    kind: 0,
                    m1: 0,
                    m2: 1,
                };
                MAX_BATCH
            ],
        };
        let mut reader = FrameReader::new();
        reader.feed(&max.encode().unwrap());
        assert_eq!(reader.next_frame().unwrap(), Some(max));
    }

    #[test]
    fn hash_separates_shapes() {
        let a = topology_hash(3, &[vec![(0, 1), (1, 2)]]);
        let b = topology_hash(3, &[vec![(0, 1)], vec![(1, 2)]]);
        let c = topology_hash(4, &[vec![(0, 1), (1, 2)]]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, topology_hash(3, &[vec![(0, 1), (1, 2)]]));
    }

    #[test]
    fn frame_sizes_match_core_wire_pricing() {
        use synctime_core::wire::{ack_frame_bytes, offer_frame_bytes, resync_frame_bytes};
        let offer = Frame::Offer {
            key: 1,
            payload: 2,
            vector: vec![0; 11],
        };
        assert_eq!(offer.encode().unwrap().len() as u64, offer_frame_bytes(11));
        let ack = Frame::Ack {
            key: 1,
            ack: vec![0; 5],
        };
        assert_eq!(ack.encode().unwrap().len() as u64, ack_frame_bytes(5));
        let resync = Frame::Resync { key: 1 };
        assert_eq!(resync.encode().unwrap().len() as u64, resync_frame_bytes());
    }

    #[test]
    fn batch_frame_sizes_match_core_wire_pricing() {
        use synctime_core::wire::{
            answer_frame_bytes, batch_answer_frame_bytes, batch_query_frame_bytes,
            query_frame_bytes,
        };
        let query = Frame::Query {
            kind: 0,
            m1: 1,
            m2: 2,
        };
        assert_eq!(query.encode().unwrap().len() as u64, query_frame_bytes());
        let answer = Frame::Answer { body: vec![1] };
        assert_eq!(answer.encode().unwrap().len() as u64, answer_frame_bytes(1));
        for count in [0usize, 1, 16, 256] {
            let batch = Frame::QueryBatch {
                trace: "alpha".to_string(),
                queries: vec![
                    BatchQuery {
                        kind: 0,
                        m1: 3,
                        m2: 4,
                    };
                    count
                ],
            };
            assert_eq!(
                batch.encode().unwrap().len() as u64,
                batch_query_frame_bytes(5, count)
            );
            let answers = Frame::AnswerBatch {
                entries: vec![BatchEntry::Answer(vec![1]); count],
            };
            assert_eq!(
                answers.encode().unwrap().len() as u64,
                batch_answer_frame_bytes(count, count)
            );
        }
    }

    #[test]
    fn pipelined_frame_sizes_match_core_wire_pricing() {
        use synctime_core::wire::{batch_answer3_frame_bytes, batch_query3_frame_bytes};
        for count in [0usize, 1, 16, 256] {
            let batch = Frame::QueryPipelined {
                corr: 7,
                trace: "alpha".to_string(),
                queries: vec![
                    BatchQuery {
                        kind: 0,
                        m1: 3,
                        m2: 4,
                    };
                    count
                ],
            };
            assert_eq!(
                batch.encode().unwrap().len() as u64,
                batch_query3_frame_bytes(5, count)
            );
            let answers = Frame::AnswerPipelined {
                corr: 7,
                entries: vec![BatchEntry::Answer(vec![1]); count],
            };
            assert_eq!(
                answers.encode().unwrap().len() as u64,
                batch_answer3_frame_bytes(count, count)
            );
        }
    }

    #[test]
    fn reconfigure_frame_sizes_match_core_wire_pricing() {
        use crate::reconfig::{
            ReconfigAckFrame, ReconfigCommit, ReconfigFrame, ReconfigPrepare, ReconfigStatus,
        };
        use synctime_core::wire::{
            reconfig_ack_frame_bytes, reconfigure_commit_frame_bytes,
            reconfigure_prepare_frame_bytes,
        };
        use synctime_graph::{EdgeOp, GroupRemap};
        let prepare = Frame::Reconfigure(ReconfigFrame::Prepare(ReconfigPrepare {
            epoch: 3,
            topology_hash: 0xfeed,
            ops: vec![EdgeOp::Insert(0, 5), EdgeOp::Remove(2, 3)],
            remap: GroupRemap {
                old_to_new: vec![Some(0), None, Some(1)],
                new_len: 2,
            },
        }));
        assert_eq!(
            prepare.encode().unwrap().len() as u64,
            reconfigure_prepare_frame_bytes(2, 3)
        );
        let commit = Frame::Reconfigure(ReconfigFrame::Commit(ReconfigCommit {
            epoch: 3,
            baseline: vec![0; 17],
        }));
        assert_eq!(
            commit.encode().unwrap().len() as u64,
            reconfigure_commit_frame_bytes(17)
        );
        let ack = Frame::ReconfigAck(ReconfigAckFrame {
            epoch: 3,
            process: 4,
            status: ReconfigStatus::Prepared,
            current_epoch: 3,
            clock: vec![0; 9],
        });
        assert_eq!(
            ack.encode().unwrap().len() as u64,
            reconfig_ack_frame_bytes(9)
        );
    }

    #[test]
    fn reconfigure_frames_round_trip() {
        use crate::reconfig::{
            ReconfigAckFrame, ReconfigCommit, ReconfigFrame, ReconfigPrepare, ReconfigStatus,
        };
        use synctime_graph::{EdgeOp, GroupRemap};
        let frames = [
            Frame::Reconfigure(ReconfigFrame::Prepare(ReconfigPrepare {
                epoch: 9,
                topology_hash: 0xdead_beef,
                ops: vec![EdgeOp::Remove(1, 2), EdgeOp::Insert(4, 0)],
                remap: GroupRemap {
                    old_to_new: vec![None, Some(1), Some(0)],
                    new_len: 2,
                },
            })),
            Frame::Reconfigure(ReconfigFrame::Prepare(ReconfigPrepare {
                epoch: 1,
                topology_hash: 0,
                ops: Vec::new(),
                remap: GroupRemap::identity(0),
            })),
            Frame::Reconfigure(ReconfigFrame::Commit(ReconfigCommit {
                epoch: 9,
                baseline: vec![1, 2, 3],
            })),
            Frame::ReconfigAck(ReconfigAckFrame {
                epoch: 9,
                process: 2,
                status: ReconfigStatus::EpochMismatch,
                current_epoch: 7,
                clock: Vec::new(),
            }),
        ];
        for frame in frames {
            let mut reader = FrameReader::new();
            reader.feed(&frame.encode().unwrap());
            assert_eq!(reader.next_frame().unwrap(), Some(frame));
        }
    }

    #[test]
    fn truncated_reconfigure_bodies_are_typed_protocol_errors() {
        use crate::reconfig::{ReconfigFrame, ReconfigPrepare};
        use synctime_graph::{EdgeOp, GroupRemap};
        let good = Frame::Reconfigure(ReconfigFrame::Prepare(ReconfigPrepare {
            epoch: 2,
            topology_hash: 5,
            ops: vec![EdgeOp::Insert(0, 1)],
            remap: GroupRemap::identity(2),
        }))
        .encode()
        .unwrap();
        // Rewrite the length prefix to each shorter body length: every cut
        // must surface as NetError::Protocol, never a panic or a misparse.
        for cut in FRAME_HEADER_BYTES..good.len() {
            let mut bytes = good[..cut].to_vec();
            let len = (cut - FRAME_HEADER_BYTES + 1) as u32;
            bytes[..4].copy_from_slice(&len.to_le_bytes());
            let mut reader = FrameReader::new();
            reader.feed(&bytes);
            assert!(matches!(reader.next_frame(), Err(NetError::Protocol(_))));
        }
    }

    #[test]
    fn pipelined_bodies_differ_from_v2_only_by_correlation_prefix() {
        let queries = vec![
            BatchQuery {
                kind: 0,
                m1: 1,
                m2: 2,
            },
            BatchQuery {
                kind: 2,
                m1: 9,
                m2: 0,
            },
        ];
        let v2 = Frame::QueryBatch {
            trace: "t".to_string(),
            queries: queries.clone(),
        }
        .encode()
        .unwrap();
        let v3 = Frame::QueryPipelined {
            corr: 0x0102_0304,
            trace: "t".to_string(),
            queries,
        }
        .encode()
        .unwrap();
        // Same body after the 4-byte correlation id; length prefix 4 larger.
        assert_eq!(&v3[FRAME_HEADER_BYTES + 4..], &v2[FRAME_HEADER_BYTES..]);
        assert_eq!(
            &v3[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + 4],
            &[4, 3, 2, 1]
        );
        let entries = vec![
            BatchEntry::Answer(vec![1]),
            BatchEntry::Error("bad".to_string()),
        ];
        let v2 = Frame::AnswerBatch {
            entries: entries.clone(),
        }
        .encode()
        .unwrap();
        let v3 = Frame::AnswerPipelined { corr: 5, entries }
            .encode()
            .unwrap();
        assert_eq!(&v3[FRAME_HEADER_BYTES + 4..], &v2[FRAME_HEADER_BYTES..]);
    }

    #[test]
    fn peek_and_consume_walk_the_stream_without_decoding() {
        let frames = [
            Frame::Resync { key: 3 },
            Frame::Query {
                kind: 0,
                m1: 1,
                m2: 2,
            },
            Frame::Answer { body: vec![1] },
        ];
        let mut reader = FrameReader::new();
        for f in &frames {
            reader.feed(&f.encode().unwrap());
        }
        // Peeking is idempotent until the frame is consumed.
        let (ty, body) = reader.peek_frame().unwrap().unwrap();
        assert_eq!((ty, body.len()), (TYPE_RESYNC, 8));
        let (ty2, _) = reader.peek_frame().unwrap().unwrap();
        assert_eq!(ty2, TYPE_RESYNC);
        reader.consume_frame();
        // Peek and owned decode interleave on one stream.
        assert_eq!(
            reader.next_frame().unwrap(),
            Some(Frame::Query {
                kind: 0,
                m1: 1,
                m2: 2
            })
        );
        let (ty, body) = reader.peek_frame().unwrap().unwrap();
        assert_eq!((ty, body), (TYPE_ANSWER, &[1u8][..]));
        reader.consume_frame();
        assert_eq!(reader.peek_frame().unwrap(), None);
        assert_eq!(reader.pending_bytes(), 0);
        // Feeding a partial frame keeps peek at None until it completes.
        let encoded = Frame::Resync { key: 9 }.encode().unwrap();
        reader.feed(&encoded[..6]);
        assert_eq!(reader.peek_frame().unwrap(), None);
        reader.feed(&encoded[6..]);
        assert_eq!(
            reader.peek_frame().unwrap(),
            Some((TYPE_RESYNC, &encoded[FRAME_HEADER_BYTES..]))
        );
    }

    #[test]
    fn borrowed_views_agree_with_owned_decode() {
        let queries = vec![
            BatchQuery {
                kind: 0,
                m1: 1,
                m2: 2,
            },
            BatchQuery {
                kind: 2,
                m1: 7,
                m2: 0,
            },
        ];
        let encoded = Frame::QueryPipelined {
            corr: 11,
            trace: "tr".to_string(),
            queries: queries.clone(),
        }
        .encode()
        .unwrap();
        let body = &encoded[FRAME_HEADER_BYTES + 4..]; // skip header + corr
        let view = QueryBatchView::parse(body).unwrap();
        assert_eq!(view.trace(), "tr");
        assert_eq!(view.count(), 2);
        assert_eq!(view.queries().collect::<Vec<_>>(), queries);

        let entries = vec![
            BatchEntry::Answer(vec![1]),
            BatchEntry::Error("m 9 out of range".to_string()),
            BatchEntry::Answer(vec![]),
        ];
        let encoded = Frame::AnswerPipelined {
            corr: 11,
            entries: entries.clone(),
        }
        .encode()
        .unwrap();
        let body = &encoded[FRAME_HEADER_BYTES + 4..];
        let view = AnswerBatchView::parse(body).unwrap();
        assert_eq!(view.count(), 3);
        let seen: Vec<(u8, Vec<u8>)> = view
            .entries()
            .map(|(status, bytes)| (status, bytes.to_vec()))
            .collect();
        assert_eq!(
            seen,
            vec![(0, vec![1]), (1, b"m 9 out of range".to_vec()), (0, vec![]),]
        );

        // Truncation and trailing garbage are rejected.
        assert!(AnswerBatchView::parse(&body[..body.len() - 1]).is_err());
        let mut garbage = body.to_vec();
        garbage.push(0);
        assert!(AnswerBatchView::parse(&garbage).is_err());
        assert!(QueryBatchView::parse(&[1, 0]).is_err());
    }
}
