//! The node-report interchange format for distributed runs.
//!
//! When a computation runs as N OS processes (`synctime launch --transport
//! tcp`), each node observes only its own side of every rendezvous. To
//! rebuild the run-wide trace, every `serve-node` prints a **node report**
//! — its execution log, outcome, and [`RunStats`] — as one JSON document
//! (schema `synctime/node_report/v1`), and the launcher merges them with
//! `reconstruct_from_logs` + [`RunStats::merged`].
//!
//! The format is hand-rolled over the workspace serde shim because
//! [`LogEntry`] deliberately carries no serde impls (it is a runtime
//! internal, not a wire type); this module is the one sanctioned
//! serialization boundary for it.

use serde::{Deserialize, Serialize, Value};
use synctime_core::VectorTime;
use synctime_obs::RunStats;
use synctime_runtime::LogEntry;

use crate::error::NetError;

/// Schema tag stamped on every serialized report.
pub const NODE_REPORT_SCHEMA: &str = "synctime/node_report/v1";

/// One OS process's view of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Which process this node ran.
    pub process: usize,
    /// `None` for a clean finish, else the rendered runtime error.
    pub outcome: Option<String>,
    /// The node's execution log, in program order (for a churn run, all
    /// epochs concatenated).
    pub log: Vec<LogEntry>,
    /// This node's log length at each reconfiguration boundary, in epoch
    /// order — empty for a single-epoch run. The launcher assembles these
    /// per-process cuts into the store's reconfiguration records.
    pub cuts: Vec<u64>,
    /// The node's side of the run's wire/latency accounting.
    pub stats: RunStats,
}

fn stamp_value(stamp: &VectorTime) -> Value {
    Value::Array(stamp.as_slice().iter().map(|&c| Value::UInt(c)).collect())
}

fn entry_value(entry: &LogEntry) -> Value {
    match entry {
        LogEntry::Sent { to, key, stamp } => Value::Object(vec![
            ("kind".to_string(), Value::Str("sent".to_string())),
            ("peer".to_string(), Value::UInt(*to as u64)),
            ("key".to_string(), Value::UInt(*key)),
            ("stamp".to_string(), stamp_value(stamp)),
        ]),
        LogEntry::Received { from, key, stamp } => Value::Object(vec![
            ("kind".to_string(), Value::Str("received".to_string())),
            ("peer".to_string(), Value::UInt(*from as u64)),
            ("key".to_string(), Value::UInt(*key)),
            ("stamp".to_string(), stamp_value(stamp)),
        ]),
        LogEntry::Internal => Value::Object(vec![(
            "kind".to_string(),
            Value::Str("internal".to_string()),
        )]),
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, NetError> {
    v.get_field(name)
        .ok_or_else(|| NetError::Protocol(format!("node report missing field `{name}`")))
}

fn parse_entry(v: &Value) -> Result<LogEntry, NetError> {
    let kind = field(v, "kind")?
        .as_str()
        .ok_or_else(|| NetError::Protocol("log entry `kind` is not a string".to_string()))?;
    if kind == "internal" {
        return Ok(LogEntry::Internal);
    }
    let peer = usize::from_value(field(v, "peer")?)
        .map_err(|e| NetError::Protocol(format!("log entry `peer`: {e}")))?;
    let key = u64::from_value(field(v, "key")?)
        .map_err(|e| NetError::Protocol(format!("log entry `key`: {e}")))?;
    let components = Vec::<u64>::from_value(field(v, "stamp")?)
        .map_err(|e| NetError::Protocol(format!("log entry `stamp`: {e}")))?;
    let stamp = VectorTime::from(components);
    match kind {
        "sent" => Ok(LogEntry::Sent {
            to: peer,
            key,
            stamp,
        }),
        "received" => Ok(LogEntry::Received {
            from: peer,
            key,
            stamp,
        }),
        other => Err(NetError::Protocol(format!(
            "unknown log entry kind `{other}`"
        ))),
    }
}

impl NodeReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let outcome = match &self.outcome {
            Some(detail) => Value::Str(detail.clone()),
            None => Value::Null,
        };
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str(NODE_REPORT_SCHEMA.to_string()),
            ),
            ("process".to_string(), Value::UInt(self.process as u64)),
            ("outcome".to_string(), outcome),
            (
                "log".to_string(),
                Value::Array(self.log.iter().map(entry_value).collect()),
            ),
            (
                "cuts".to_string(),
                Value::Array(self.cuts.iter().map(|&c| Value::UInt(c)).collect()),
            ),
            ("stats".to_string(), self.stats.to_value()),
        ]);
        serde_json::to_string_pretty(&doc).expect("node report serialises infallibly")
    }

    /// Parses a report previously produced by [`NodeReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on malformed JSON, a wrong or missing schema
    /// tag, or any shape mismatch.
    pub fn from_json(text: &str) -> Result<Self, NetError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| NetError::Protocol(format!("node report is not JSON: {e}")))?;
        match field(&doc, "schema")?.as_str() {
            Some(NODE_REPORT_SCHEMA) => {}
            Some(other) => {
                return Err(NetError::Protocol(format!(
                    "unsupported node report schema `{other}`"
                )))
            }
            None => {
                return Err(NetError::Protocol(
                    "node report `schema` is not a string".to_string(),
                ))
            }
        }
        let process = usize::from_value(field(&doc, "process")?)
            .map_err(|e| NetError::Protocol(format!("node report `process`: {e}")))?;
        let outcome = match field(&doc, "outcome")? {
            Value::Null => None,
            Value::Str(detail) => Some(detail.clone()),
            other => {
                return Err(NetError::Protocol(format!(
                    "node report `outcome` is {}, expected string or null",
                    other.type_name()
                )))
            }
        };
        let log = field(&doc, "log")?
            .as_array()
            .ok_or_else(|| NetError::Protocol("node report `log` is not an array".to_string()))?
            .iter()
            .map(parse_entry)
            .collect::<Result<Vec<_>, _>>()?;
        // Absent in reports from single-epoch nodes predating churn runs.
        let cuts = match doc.get_field("cuts") {
            Some(v) => Vec::<u64>::from_value(v)
                .map_err(|e| NetError::Protocol(format!("node report `cuts`: {e}")))?,
            None => Vec::new(),
        };
        let stats = RunStats::from_value(field(&doc, "stats")?)
            .map_err(|e| NetError::Protocol(format!("node report `stats`: {e}")))?;
        Ok(NodeReport {
            process,
            outcome,
            log,
            cuts,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let report = NodeReport {
            process: 2,
            outcome: Some("process 1 terminated".to_string()),
            log: vec![
                LogEntry::Sent {
                    to: 1,
                    key: 7,
                    stamp: VectorTime::from(vec![3, 0, 1]),
                },
                LogEntry::Internal,
                LogEntry::Received {
                    from: 0,
                    key: 9,
                    stamp: VectorTime::from(vec![3, 2, 1]),
                },
            ],
            cuts: vec![2, 3],
            stats: RunStats::merged(&[]),
        };
        let text = report.to_json();
        assert!(text.contains(NODE_REPORT_SCHEMA));
        let back = NodeReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn malformed_reports_are_rejected_with_context() {
        assert!(matches!(
            NodeReport::from_json("not json"),
            Err(NetError::Protocol(_))
        ));
        let wrong_schema =
            r#"{"schema":"synctime/other/v9","process":0,"outcome":null,"log":[],"stats":{}}"#;
        let err = NodeReport::from_json(wrong_schema).unwrap_err();
        assert!(err.to_string().contains("synctime/other/v9"), "{err}");
        let bad_kind = r#"{"schema":"synctime/node_report/v1","process":0,"outcome":null,"log":[{"kind":"warped"}],"stats":{}}"#;
        assert!(NodeReport::from_json(bad_kind).is_err());
    }
}
