//! The sharded multi-trace catalog behind the query fabric.
//!
//! PR 5's `serve-query` held exactly one stamped trace. A real service
//! holds many — one per monitored computation — and re-stamps them as the
//! computations grow, all while queries are in flight. This module is the
//! data plane that makes that safe and cheap:
//!
//! * **Snapshots are immutable and shared.** A trace's stamps live in an
//!   `Arc<MessageTimestamps>`; answering a query clones the `Arc` (one
//!   atomic increment), never the table. Publishing a re-stamp swaps the
//!   `Arc` in place — copy-on-write at the granularity of whole traces —
//!   so readers holding the old snapshot keep answering consistently
//!   against the version they started with, and new connections see the
//!   new stamps. Nothing blocks on anything slower than a map lookup.
//! * **Traces are consistently hashed across shards.** Each shard owns a
//!   disjoint subset of trace ids behind its own `RwLock`, so a re-stamp
//!   of one trace contends only with lookups of the ~1/S of traces that
//!   share its shard. The shard is chosen by a [`ShardRing`] — FNV-1a
//!   consistent hashing with virtual nodes — so the assignment is
//!   deterministic, balanced, and stable under reshardings (growing from
//!   S to S+1 shards moves ~1/(S+1) of the traces, not all of them).
//!
//! The fabric answers v1 single-trace queries too: the empty trace id
//! resolves to the **default trace** when the catalog holds exactly one,
//! which is what keeps a single-trace `serve-query` wire-compatible with
//! the PR 5 behaviour.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use synctime_core::MessageTimestamps;

use crate::error::NetError;
use crate::frame::{BatchEntry, BatchQuery};
use crate::query::answer_query;

/// Shard count `serve-query` uses when `--shards` is not given.
pub const DEFAULT_SHARDS: usize = 4;

/// Virtual nodes per shard on the consistent-hash ring. Enough that the
/// largest shard holds within a few percent of the mean at realistic
/// catalog sizes, small enough that building the ring is trivial.
const VNODES_PER_SHARD: usize = 64;

/// FNV-1a with a splitmix64 finalizer. Raw FNV-1a mixes the *low* bits
/// well but leaves the high bits — which decide ring position — heavily
/// correlated for short, structured ids like `trace-7`; the finalizer's
/// avalanche fixes the arc-coverage skew that causes.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The memoised vnode hashes a [`ShardRing`] is built from: one
/// splitmix64-finalized FNV-1a hash per `(shard, replica)` label, laid out
/// shard-major and grown on demand.
///
/// Hashing a vnode label is pure — `shard-3-vnode-17` hashes the same in
/// every ring that contains shard 3 — so a rebuild on a catalog change
/// (resharding up or down) only ever computes the labels it has never
/// seen. The `computed_hashes` counter makes that reuse observable: the
/// fabric proptest asserts a grown ring pays for exactly the new shard's
/// vnodes.
#[derive(Debug, Default, Clone)]
pub struct VnodeTable {
    /// `hashes[shard * VNODES_PER_SHARD + replica]`.
    hashes: Vec<u64>,
    /// Labels hashed since creation (monotone).
    computed: u64,
}

impl VnodeTable {
    /// An empty table; the first ring built from it hashes every label.
    pub fn new() -> Self {
        VnodeTable::default()
    }

    /// How many vnode labels have been hashed through this table — a
    /// ring rebuild that reuses the cache leaves this unchanged for every
    /// previously seen shard.
    pub fn computed_hashes(&self) -> u64 {
        self.computed
    }

    /// Ensures hashes exist for `shards` shards, computing only the
    /// missing tail.
    fn grow(&mut self, shards: usize) {
        let want = shards * VNODES_PER_SHARD;
        while self.hashes.len() < want {
            let idx = self.hashes.len();
            let shard = idx / VNODES_PER_SHARD;
            let replica = idx % VNODES_PER_SHARD;
            let label = format!("shard-{shard}-vnode-{replica}");
            self.hashes.push(fnv1a(label.as_bytes()));
            self.computed += 1;
        }
    }
}

/// Consistent hashing of trace ids onto shard indices: each shard owns
/// [`VNODES_PER_SHARD`] points on a `u64` ring, and a trace id maps to the
/// owner of the first point at or after its hash (wrapping).
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRing {
    /// A ring over `shards` shards (clamped to at least 1), hashing every
    /// vnode label afresh. Rebuilding rings repeatedly (a fabric that
    /// reshards as its catalog changes) should share a [`VnodeTable`] via
    /// [`ShardRing::with_table`] instead.
    pub fn new(shards: usize) -> Self {
        ShardRing::with_table(shards, &mut VnodeTable::new())
    }

    /// A ring over `shards` shards (clamped to at least 1) built from the
    /// cached vnode hashes in `table`, which is grown as needed. The ring
    /// is identical to [`ShardRing::new`]'s for the same count — the
    /// table changes what is *computed*, never what is *placed*.
    pub fn with_table(shards: usize, table: &mut VnodeTable) -> Self {
        let shards = shards.max(1);
        table.grow(shards);
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for replica in 0..VNODES_PER_SHARD {
                points.push((table.hashes[shard * VNODES_PER_SHARD + replica], shard));
            }
        }
        points.sort_unstable();
        ShardRing { points, shards }
    }

    /// The number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns a trace id. Deterministic across processes and
    /// runs: same id and shard count, same shard.
    pub fn shard_of(&self, trace: &str) -> usize {
        let h = fnv1a(trace.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        // Wrap past the last point back to the first.
        self.points[at % self.points.len()].1
    }
}

/// One shard: the traces it owns, behind its own lock.
#[derive(Debug, Default)]
struct Shard {
    traces: RwLock<HashMap<String, Arc<MessageTimestamps>>>,
}

/// The sharded, copy-on-write trace catalog the query fabric serves (see
/// the module docs for the concurrency model).
#[derive(Debug)]
pub struct QueryFabric {
    ring: ShardRing,
    shards: Vec<Shard>,
    /// Memoised vnode hashes, so a reshard reuses every label already
    /// hashed instead of rehashing each surviving shard's vnodes.
    vnodes: VnodeTable,
}

impl QueryFabric {
    /// An empty catalog sharded `shards` ways (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let mut vnodes = VnodeTable::new();
        let ring = ShardRing::with_table(shards, &mut vnodes);
        let shards = (0..ring.shards()).map(|_| Shard::default()).collect();
        QueryFabric {
            ring,
            shards,
            vnodes,
        }
    }

    /// Rebuilds the ring for a new shard count and redistributes every
    /// held trace to its new owner. Vnode hashes are reused from the
    /// fabric's [`VnodeTable`]: growing from `S` to `S + 1` shards hashes
    /// only the newcomer's labels, and shrinking hashes nothing at all.
    /// Snapshots are moved by `Arc`, never copied.
    pub fn reshard(&mut self, shards: usize) {
        let ring = ShardRing::with_table(shards, &mut self.vnodes);
        let mut entries: Vec<(String, Arc<MessageTimestamps>)> = Vec::new();
        for shard in &self.shards {
            entries.extend(
                shard
                    .traces
                    .write()
                    .unwrap_or_else(PoisonError::into_inner)
                    .drain(),
            );
        }
        self.shards = (0..ring.shards()).map(|_| Shard::default()).collect();
        self.ring = ring;
        for (name, snapshot) in entries {
            self.publish_shared(&name, snapshot);
        }
    }

    /// How many vnode labels this fabric has hashed across all ring
    /// builds (see [`VnodeTable::computed_hashes`]).
    pub fn vnode_hashes_computed(&self) -> u64 {
        self.vnodes.computed_hashes()
    }

    /// A single-trace catalog: one shard holding `name`, the configuration
    /// every v1 `serve-query` invocation maps onto.
    pub fn single(name: &str, stamps: MessageTimestamps) -> Self {
        let fabric = QueryFabric::new(1);
        fabric.publish(name, stamps);
        fabric
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns a trace id.
    pub fn shard_of(&self, trace: &str) -> usize {
        self.ring.shard_of(trace)
    }

    /// Publishes (or republishes) a trace's stamps, returning the new
    /// shared snapshot. This is the copy-on-write step of a re-stamp: the
    /// `Arc` is swapped under the shard's write lock, in-flight readers
    /// keep the snapshot they already cloned, and every later lookup gets
    /// the new one.
    pub fn publish(&self, name: &str, stamps: MessageTimestamps) -> Arc<MessageTimestamps> {
        let snapshot = Arc::new(stamps);
        let shard = &self.shards[self.ring.shard_of(name)];
        shard
            .traces
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), Arc::clone(&snapshot));
        snapshot
    }

    /// [`QueryFabric::publish`] for stamps that are already shared: swaps
    /// the catalog entry to the given snapshot without copying the table.
    pub fn publish_shared(&self, name: &str, snapshot: Arc<MessageTimestamps>) {
        let shard = &self.shards[self.ring.shard_of(name)];
        shard
            .traces
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), snapshot);
    }

    /// The current snapshot of a trace, if the catalog holds it. Cloning
    /// the returned `Arc` is the entire cost of "opening" a trace.
    pub fn snapshot(&self, name: &str) -> Option<Arc<MessageTimestamps>> {
        let shard = &self.shards[self.ring.shard_of(name)];
        shard
            .traces
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Total number of traces across all shards.
    pub fn trace_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.traces
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Every trace id in the catalog, sorted.
    pub fn trace_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.traces
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort_unstable();
        names
    }

    /// Resolves a wire trace id to a snapshot. The empty id means "the
    /// default trace": legal only when the catalog holds exactly one trace
    /// (the v1 single-trace semantics).
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the id is unknown, or when the empty id is
    /// used against a multi-trace catalog.
    pub fn resolve(&self, trace: &str) -> Result<Arc<MessageTimestamps>, NetError> {
        if trace.is_empty() {
            // Walk the shards for the lone snapshot directly — no name
            // list is materialised, so the v1 hot path stays
            // allocation-free (an `Arc` clone is the entire cost).
            let mut only: Option<Arc<MessageTimestamps>> = None;
            let mut count = 0usize;
            for shard in &self.shards {
                let traces = shard.traces.read().unwrap_or_else(PoisonError::into_inner);
                count += traces.len();
                if only.is_none() {
                    only = traces.values().next().map(Arc::clone);
                }
            }
            return match (count, only) {
                (1, Some(snapshot)) => Ok(snapshot),
                _ => Err(NetError::Query(format!(
                    "catalog serves {count} traces; name one (empty trace id only works \
                     against a single-trace catalog)"
                ))),
            };
        }
        self.snapshot(trace)
            .ok_or_else(|| NetError::Query(format!("unknown trace `{trace}`")))
    }

    /// Answers a whole batch against one trace snapshot: one `resolve`,
    /// then one constant-time comparison per query. Entries fail
    /// independently — a bad message id poisons its own entry only.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the trace id itself does not resolve (the
    /// whole batch is unanswerable).
    pub fn answer_batch(
        &self,
        trace: &str,
        queries: &[BatchQuery],
    ) -> Result<Vec<BatchEntry>, NetError> {
        let snapshot = self.resolve(trace)?;
        Ok(queries
            .iter()
            .map(|q| match answer_query(&snapshot, q.kind, q.m1, q.m2) {
                Ok(body) => BatchEntry::Answer(body),
                Err(NetError::Query(detail)) => BatchEntry::Error(detail),
                Err(e) => BatchEntry::Error(e.to_string()),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::VectorTime;

    fn stamps(dim_fill: u64) -> MessageTimestamps {
        MessageTimestamps::new(vec![
            VectorTime::from(vec![dim_fill, 0]),
            VectorTime::from(vec![dim_fill + 1, 1]),
        ])
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let ring = ShardRing::new(4);
        for i in 0..200 {
            let name = format!("trace-{i}");
            assert_eq!(ring.shard_of(&name), ring.shard_of(&name));
            assert!(ring.shard_of(&name) < 4);
        }
        // With enough traces every shard owns some, and no shard owns a
        // grossly disproportionate share.
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[ring.shard_of(&format!("trace-{i}"))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(c > 40, "shard {shard} owns only {c}/400 traces");
        }
    }

    #[test]
    fn resharding_moves_a_fraction_not_everything() {
        let before = ShardRing::new(4);
        let after = ShardRing::new(5);
        let moved = (0..1000)
            .filter(|i| {
                let name = format!("trace-{i}");
                before.shard_of(&name) != after.shard_of(&name)
            })
            .count();
        // Ideal is ~1/5 = 200; allow generous slack, but far below "all".
        assert!(moved < 500, "resharding moved {moved}/1000 traces");
    }

    #[test]
    fn publish_is_copy_on_write() {
        let fabric = QueryFabric::new(4);
        fabric.publish("a", stamps(1));
        let old = fabric.snapshot("a").expect("published");
        // A re-stamp swaps the Arc; the held snapshot is untouched.
        fabric.publish("a", stamps(9));
        let new = fabric.snapshot("a").expect("republished");
        assert_eq!(old.vector(synctime_trace::MessageId(0)).as_slice()[0], 1);
        assert_eq!(new.vector(synctime_trace::MessageId(0)).as_slice()[0], 9);
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(fabric.trace_count(), 1);
    }

    #[test]
    fn default_trace_resolution() {
        let fabric = QueryFabric::new(2);
        assert!(fabric.resolve("").is_err());
        fabric.publish("only", stamps(0));
        assert!(fabric.resolve("").is_ok(), "single trace is the default");
        fabric.publish("second", stamps(2));
        let err = fabric.resolve("").unwrap_err();
        assert!(err.to_string().contains("2 traces"), "{err}");
        assert!(fabric.resolve("missing").is_err());
        assert_eq!(fabric.trace_names(), vec!["only", "second"]);
    }

    #[test]
    fn batch_entries_fail_independently() {
        let fabric = QueryFabric::single("t", stamps(0));
        let entries = fabric
            .answer_batch(
                "t",
                &[
                    BatchQuery {
                        kind: 0,
                        m1: 0,
                        m2: 1,
                    },
                    BatchQuery {
                        kind: 0,
                        m1: 0,
                        m2: 99,
                    },
                    BatchQuery {
                        kind: 77,
                        m1: 0,
                        m2: 1,
                    },
                ],
            )
            .expect("trace resolves");
        assert_eq!(entries[0], BatchEntry::Answer(vec![1]));
        assert!(matches!(&entries[1], BatchEntry::Error(m) if m.contains("out of range")));
        assert!(matches!(&entries[2], BatchEntry::Error(m) if m.contains("unknown query kind")));
        assert!(fabric.answer_batch("nope", &[]).is_err());
    }
}
