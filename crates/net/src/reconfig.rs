//! The live reconfiguration control plane: RECONFIGURE/RECONFIG_ACK over
//! the wire (ROADMAP item 4).
//!
//! A running mesh changes topology without stopping: a coordinator (by
//! convention process 0) proposes an epoch-numbered batch of edge edits,
//! every node applies the same edits on its own
//! [`IncrementalDecomposition`] replica — deterministic patching, so all
//! replicas land on the same groups — and verifies the resulting
//! [`GroupRemap`] and topology hash against the coordinator's. The apply
//! is two-phase around the quiesce point (the natural rendezvous barrier
//! at the end of an epoch's workload):
//!
//! 1. **Prepare** — the coordinator ships a [`ReconfigPrepare`] (epoch,
//!    edge ops, expected remap, expected post-edit topology hash) to every
//!    node. Each node applies the ops, rebases its final clock through the
//!    remap, and answers a [`ReconfigAckFrame`] carrying that rebased
//!    clock. A node at the wrong epoch refuses with
//!    [`ReconfigStatus::EpochMismatch`] and its current epoch; the
//!    coordinator resyncs the straggler by replaying the missed prepares
//!    from its [`ReconfigSession`] history, in order.
//! 2. **Commit** — the coordinator max-merges every acked clock (its own
//!    included) into one **uniform baseline** and ships it in a
//!    [`ReconfigCommit`]. Every node restarts the next epoch from that
//!    same baseline vector.
//!
//! The uniform baseline is the correctness pivot: with every process
//! restarting from the identical vector `B`, each post-reconfiguration
//! stamp equals `B + s` where `s` is the corresponding stamp of an
//! uninterrupted reference run over the new topology started from zero
//! (`max(B+x, B+y) = B + max(x, y)` and a tick commutes with the uniform
//! shift). All pairwise comparisons — hence every Theorem 4 precedence
//! verdict — are therefore identical to the reference run's, which is
//! what the `churn-smoke` stage's byte-identical query diff checks end to
//! end. Dimension stays bounded across epochs because each replica's
//! decomposition maintains the paper's `d ≤ 2·α` invariant under every
//! edit.
//!
//! Frame bodies are priced byte-for-byte by `synctime_core::wire`
//! (`reconfigure_prepare_frame_bytes`, `reconfigure_commit_frame_bytes`,
//! `reconfig_ack_frame_bytes`), like every other frame in the protocol.

use std::time::{Duration, Instant};

use synctime_core::VectorTime;
use synctime_graph::{EdgeOp, Graph, GroupRemap, IncrementalDecomposition};

use crate::error::NetError;
use crate::frame::{begin_frame, end_frame, topology_hash_of, Frame};
use crate::tcp::TcpMesh;

/// The participant's verdict on a RECONFIGURE prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigStatus {
    /// The prepare was applied; the ack carries the rebased final clock.
    Prepared,
    /// The prepare named an epoch the node is not at; the ack carries the
    /// node's current epoch so the coordinator can resync it.
    EpochMismatch,
}

/// Phase 1 of a reconfiguration: the epoch-numbered edit batch every node
/// must apply, plus the remap and topology hash the coordinator computed
/// so replicas can verify they landed on the same decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigPrepare {
    /// The epoch this prepare establishes (current epoch + 1 on every
    /// in-sync node).
    pub epoch: u64,
    /// Hash of the post-edit topology and decomposition (see
    /// [`topology_hash_of`]); a replica whose local apply hashes
    /// differently refuses rather than diverge silently.
    pub topology_hash: u64,
    /// The edge edits, applied in order.
    pub ops: Vec<EdgeOp>,
    /// The composed remap the coordinator's apply produced; replicas must
    /// reproduce it exactly.
    pub remap: GroupRemap,
}

/// Phase 2 of a reconfiguration: the uniform baseline vector every node
/// restarts the new epoch from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigCommit {
    /// The epoch being committed.
    pub epoch: u64,
    /// The baseline, encoded with `synctime_core::wire::encode_full`.
    pub baseline: Vec<u8>,
}

/// The body of a RECONFIGURE frame (type 11): a prepare or a commit,
/// distinguished by the leading phase byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigFrame {
    /// Phase byte 0.
    Prepare(ReconfigPrepare),
    /// Phase byte 1.
    Commit(ReconfigCommit),
}

/// The body of a RECONFIG_ACK frame (type 12): one node's answer to a
/// prepare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigAckFrame {
    /// The epoch of the prepare being answered.
    pub epoch: u64,
    /// The answering process.
    pub process: u32,
    /// Applied, or refused with an epoch mismatch.
    pub status: ReconfigStatus,
    /// The answering node's epoch after processing the frame (equals
    /// `epoch` when `status` is [`ReconfigStatus::Prepared`]).
    pub current_epoch: u64,
    /// The node's final clock rebased into the new epoch's dimension
    /// (`encode_full` bytes); empty when the prepare was refused.
    pub clock: Vec<u8>,
}

/// Sentinel in a prepare's on-wire remap table for a dissolved component.
const REMAP_NONE: u32 = u32::MAX;

/// Appends a RECONFIGURE frame (type 11) to `out`. Infallible, like the
/// transport's other hot-path encoders.
pub(crate) fn encode_reconfigure_into(out: &mut Vec<u8>, ty: u8, frame: &ReconfigFrame) {
    let start = begin_frame(out, ty);
    match frame {
        ReconfigFrame::Prepare(p) => {
            out.push(0);
            out.extend_from_slice(&p.epoch.to_le_bytes());
            out.extend_from_slice(&p.topology_hash.to_le_bytes());
            out.extend_from_slice(&(p.ops.len() as u32).to_le_bytes());
            for op in &p.ops {
                let (kind, u, v) = match *op {
                    EdgeOp::Insert(u, v) => (0u8, u, v),
                    EdgeOp::Remove(u, v) => (1u8, u, v),
                };
                out.push(kind);
                out.extend_from_slice(&(u as u32).to_le_bytes());
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
            out.extend_from_slice(&(p.remap.old_to_new.len() as u32).to_le_bytes());
            out.extend_from_slice(&(p.remap.new_len as u32).to_le_bytes());
            for slot in &p.remap.old_to_new {
                let coded = slot.map_or(REMAP_NONE, |s| s as u32);
                out.extend_from_slice(&coded.to_le_bytes());
            }
        }
        ReconfigFrame::Commit(c) => {
            out.push(1);
            out.extend_from_slice(&c.epoch.to_le_bytes());
            out.extend_from_slice(&c.baseline);
        }
    }
    end_frame(out, start);
}

/// Appends a RECONFIG_ACK frame (type 12) to `out`.
pub(crate) fn encode_reconfig_ack_into(out: &mut Vec<u8>, ty: u8, ack: &ReconfigAckFrame) {
    let start = begin_frame(out, ty);
    out.extend_from_slice(&ack.epoch.to_le_bytes());
    out.extend_from_slice(&ack.process.to_le_bytes());
    out.push(match ack.status {
        ReconfigStatus::Prepared => 0,
        ReconfigStatus::EpochMismatch => 1,
    });
    out.extend_from_slice(&ack.current_epoch.to_le_bytes());
    out.extend_from_slice(&ack.clock);
    end_frame(out, start);
}

fn u32_at(body: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([body[i], body[i + 1], body[i + 2], body[i + 3]])
}

fn u64_at(body: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&body[i..i + 8]);
    u64::from_le_bytes(b)
}

/// Parses a RECONFIGURE frame body (type byte already split off).
pub(crate) fn decode_reconfigure(body: &[u8]) -> Result<ReconfigFrame, NetError> {
    let malformed = |detail: &str| NetError::Protocol(format!("RECONFIGURE frame: {detail}"));
    if body.len() < 9 {
        return Err(malformed("body shorter than phase + epoch"));
    }
    let epoch = u64_at(body, 1);
    match body[0] {
        0 => {
            if body.len() < 9 + 12 {
                return Err(malformed("prepare body shorter than its fixed fields"));
            }
            let topology_hash = u64_at(body, 9);
            let op_count = u32_at(body, 17) as usize;
            let mut pos = 21;
            if body.len() < pos + 9 * op_count + 8 {
                return Err(malformed("prepare body truncated inside the op list"));
            }
            let mut ops = Vec::with_capacity(op_count);
            for _ in 0..op_count {
                let u = u32_at(body, pos + 1) as usize;
                let v = u32_at(body, pos + 5) as usize;
                ops.push(match body[pos] {
                    0 => EdgeOp::Insert(u, v),
                    1 => EdgeOp::Remove(u, v),
                    other => return Err(malformed(&format!("unknown edge-op kind {other}"))),
                });
                pos += 9;
            }
            let old_len = u32_at(body, pos) as usize;
            let new_len = u32_at(body, pos + 4) as usize;
            pos += 8;
            if body.len() != pos + 4 * old_len {
                return Err(malformed(
                    "remap table length disagrees with the frame length",
                ));
            }
            let mut old_to_new = Vec::with_capacity(old_len);
            for _ in 0..old_len {
                let coded = u32_at(body, pos);
                pos += 4;
                if coded == REMAP_NONE {
                    old_to_new.push(None);
                } else if (coded as usize) < new_len {
                    old_to_new.push(Some(coded as usize));
                } else {
                    return Err(malformed("remap destination beyond the new dimension"));
                }
            }
            Ok(ReconfigFrame::Prepare(ReconfigPrepare {
                epoch,
                topology_hash,
                ops,
                remap: GroupRemap {
                    old_to_new,
                    new_len,
                },
            }))
        }
        1 => Ok(ReconfigFrame::Commit(ReconfigCommit {
            epoch,
            baseline: body[9..].to_vec(),
        })),
        other => Err(malformed(&format!("unknown phase byte {other}"))),
    }
}

/// Parses a RECONFIG_ACK frame body.
pub(crate) fn decode_reconfig_ack(body: &[u8]) -> Result<ReconfigAckFrame, NetError> {
    if body.len() < 21 {
        return Err(NetError::Protocol(format!(
            "RECONFIG_ACK frame carries {} body bytes, expected at least 21",
            body.len()
        )));
    }
    let status = match body[12] {
        0 => ReconfigStatus::Prepared,
        1 => ReconfigStatus::EpochMismatch,
        other => {
            return Err(NetError::Protocol(format!(
                "unknown RECONFIG_ACK status {other}"
            )))
        }
    };
    Ok(ReconfigAckFrame {
        epoch: u64_at(body, 0),
        process: u32_at(body, 8),
        status,
        current_epoch: u64_at(body, 13),
        clock: body[21..].to_vec(),
    })
}

/// Rebases a plain vector through a remap: surviving components carry
/// their counts to their new slots, fresh components start at zero. The
/// vector form of `GenericProcessClock::remap`.
pub fn remap_vector(v: &VectorTime, remap: &GroupRemap) -> VectorTime {
    let mut fresh = vec![0u64; remap.new_len];
    for (old, slot) in remap.old_to_new.iter().enumerate() {
        if let (Some(slot), Some(&count)) = (slot, v.as_slice().get(old)) {
            fresh[*slot] = count;
        }
    }
    VectorTime::from(fresh)
}

/// One node's replica of the reconfiguration state machine: the current
/// epoch, the topology/decomposition replica every node patches in
/// lockstep, and (on the coordinator) the prepare history used to resync
/// stragglers.
#[derive(Debug, Clone)]
pub struct ReconfigSession {
    dec: IncrementalDecomposition,
    epoch: u64,
    history: Vec<ReconfigPrepare>,
}

impl ReconfigSession {
    /// Epoch 0 over the launch topology, seeded with the greedy
    /// decomposition — the same seed every node computes from the shared
    /// launch parameters, so all replicas agree before the first prepare.
    pub fn new(graph: &Graph) -> Self {
        ReconfigSession {
            dec: IncrementalDecomposition::new(graph),
            epoch: 0,
            history: Vec::new(),
        }
    }

    /// The current epoch (0 until the first commit-worthy prepare).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current topology replica.
    pub fn graph(&self) -> &Graph {
        self.dec.graph()
    }

    /// The current decomposition replica (dimension of the current
    /// epoch's stamps).
    pub fn decomposition(&self) -> &synctime_graph::EdgeDecomposition {
        self.dec.decomposition()
    }

    /// Coordinator side: applies `ops` locally, advances the epoch, and
    /// builds the [`ReconfigPrepare`] to ship — recording it in the
    /// resync history. Returns the prepare together with the remap (the
    /// coordinator rebases its own clock with it, like any participant).
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when an op is inapplicable (unknown edge,
    /// duplicate edge, out-of-range node); the session is unchanged.
    pub fn propose(&mut self, ops: &[EdgeOp]) -> Result<ReconfigPrepare, NetError> {
        let remap = self
            .dec
            .apply_ops(ops)
            .map_err(|e| NetError::Protocol(format!("inapplicable reconfiguration: {e}")))?;
        self.epoch += 1;
        let prepare = ReconfigPrepare {
            epoch: self.epoch,
            topology_hash: topology_hash_of(
                self.dec.graph().node_count(),
                self.dec.decomposition(),
            ),
            ops: ops.to_vec(),
            remap,
        };
        self.history.push(prepare.clone());
        Ok(prepare)
    }

    /// Participant side: validates and applies one prepare. The replica
    /// must be exactly one epoch behind; it applies the ops, verifies its
    /// remap and topology hash against the coordinator's, and advances.
    /// On any divergence the session rolls back to its pre-call state.
    ///
    /// # Errors
    ///
    /// [`NetError::EpochMismatch`] when the prepare is not for the
    /// successor epoch (the caller answers with its current epoch so the
    /// coordinator can resync it); [`NetError::Protocol`] when the ops do
    /// not apply or the replica diverges from the coordinator's remap or
    /// hash.
    pub fn prepare(&mut self, msg: &ReconfigPrepare) -> Result<GroupRemap, NetError> {
        if msg.epoch != self.epoch + 1 {
            return Err(NetError::EpochMismatch {
                expected: self.epoch + 1,
                got: msg.epoch,
            });
        }
        let checkpoint = self.dec.clone();
        let remap = self
            .dec
            .apply_ops(&msg.ops)
            .map_err(|e| NetError::Protocol(format!("inapplicable reconfiguration: {e}")))?;
        let hash = topology_hash_of(self.dec.graph().node_count(), self.dec.decomposition());
        if remap != msg.remap || hash != msg.topology_hash {
            self.dec = checkpoint;
            return Err(NetError::Protocol(format!(
                "replica diverged applying epoch {}: hash {hash:#x} vs coordinator's {:#x}",
                msg.epoch, msg.topology_hash
            )));
        }
        self.epoch = msg.epoch;
        self.history.push(msg.clone());
        Ok(remap)
    }

    /// The recorded prepares for epochs in `(after, up_to]`, in order —
    /// what a straggler at epoch `after` needs to catch up to `up_to`.
    pub fn history_since(&self, after: u64, up_to: u64) -> Vec<ReconfigPrepare> {
        self.history
            .iter()
            .filter(|p| p.epoch > after && p.epoch <= up_to)
            .cloned()
            .collect()
    }
}

/// What a completed reconfiguration round hands back to the runtime: the
/// committed epoch, the composed remap from the pre-round dimension, and
/// the uniform baseline every process restarts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigOutcome {
    /// The committed epoch.
    pub epoch: u64,
    /// The remap taking the pre-round dimension to the new one (composed
    /// across every prepare this round applied on this node).
    pub remap: GroupRemap,
    /// The max-merged, remapped baseline vector (new dimension).
    pub baseline: VectorTime,
}

/// Coordinator driver for one reconfiguration round over an established
/// mesh: proposes `ops`, ships the prepare to every peer, resyncs any
/// straggler from history, max-merges the acked clocks with its own
/// rebased `final_clock` into the uniform baseline, and commits it.
///
/// # Errors
///
/// [`NetError::Protocol`] on an inapplicable batch or a diverged ack,
/// [`NetError::Io`]/[`NetError::Closed`] when a peer cannot be reached
/// within `timeout`.
pub fn coordinate_reconfigure(
    mesh: &TcpMesh,
    session: &mut ReconfigSession,
    peers: &[usize],
    ops: &[EdgeOp],
    final_clock: &VectorTime,
    timeout: Duration,
) -> Result<ReconfigOutcome, NetError> {
    let deadline = Instant::now() + timeout;
    let prepare = session.propose(ops)?;
    let epoch = prepare.epoch;
    let mut baseline = remap_vector(final_clock, &prepare.remap);
    for &peer in peers {
        mesh.send_reconfigure(peer, &ReconfigFrame::Prepare(prepare.clone()))?;
    }
    for &peer in peers {
        let clock = loop {
            let ack = recv_ack(mesh, peer, deadline)?;
            match ack.status {
                ReconfigStatus::Prepared if ack.epoch == epoch => break ack.clock,
                // An ack for an intermediate catch-up epoch: keep waiting
                // for the target epoch's.
                ReconfigStatus::Prepared => continue,
                ReconfigStatus::EpochMismatch => {
                    // Straggler: replay the prepares it missed, in order,
                    // then keep waiting for its target-epoch ack.
                    for missed in session.history_since(ack.current_epoch, epoch) {
                        mesh.send_reconfigure(peer, &ReconfigFrame::Prepare(missed))?;
                    }
                }
            }
        };
        let theirs = synctime_core::wire::decode_full(&clock).ok_or_else(|| {
            NetError::Protocol(format!("process {peer} acked an undecodable clock"))
        })?;
        baseline.merge_max(&theirs).map_err(|_| {
            NetError::Protocol(format!(
                "process {peer} acked a clock of dimension {}, expected {}",
                theirs.dim(),
                baseline.dim()
            ))
        })?;
    }
    let commit = ReconfigCommit {
        epoch,
        baseline: synctime_core::wire::encode_full(&baseline),
    };
    for &peer in peers {
        mesh.send_reconfigure(peer, &ReconfigFrame::Commit(commit.clone()))?;
    }
    Ok(ReconfigOutcome {
        epoch,
        remap: prepare.remap,
        baseline,
    })
}

/// Participant driver for one reconfiguration round: applies the
/// coordinator's prepare(s) — acking each, refusing out-of-order epochs
/// with [`ReconfigStatus::EpochMismatch`] so the coordinator resyncs this
/// node — rebases `final_clock` through every applied remap, and waits
/// for the commit carrying the uniform baseline.
///
/// # Errors
///
/// [`NetError::Protocol`] when a prepare diverges from this replica or
/// the commit is malformed, [`NetError::Io`]/[`NetError::Closed`] on
/// transport failure or `timeout`.
pub fn follow_reconfigure(
    mesh: &TcpMesh,
    session: &mut ReconfigSession,
    coordinator: usize,
    process: u32,
    final_clock: &VectorTime,
    timeout: Duration,
) -> Result<ReconfigOutcome, NetError> {
    let deadline = Instant::now() + timeout;
    let mut clock = final_clock.clone();
    let mut composed = GroupRemap::identity(session.decomposition().len());
    loop {
        match recv_reconfigure(mesh, coordinator, deadline)? {
            ReconfigFrame::Prepare(msg) => {
                let epoch = msg.epoch;
                match session.prepare(&msg) {
                    Ok(remap) => {
                        clock = remap_vector(&clock, &remap);
                        composed = composed.then(&remap);
                        mesh.send_reconfig_ack(
                            coordinator,
                            &ReconfigAckFrame {
                                epoch,
                                process,
                                status: ReconfigStatus::Prepared,
                                current_epoch: session.epoch(),
                                clock: synctime_core::wire::encode_full(&clock),
                            },
                        )?;
                    }
                    Err(NetError::EpochMismatch { .. }) => {
                        mesh.send_reconfig_ack(
                            coordinator,
                            &ReconfigAckFrame {
                                epoch,
                                process,
                                status: ReconfigStatus::EpochMismatch,
                                current_epoch: session.epoch(),
                                clock: Vec::new(),
                            },
                        )?;
                    }
                    Err(other) => return Err(other),
                }
            }
            ReconfigFrame::Commit(commit) => {
                if commit.epoch != session.epoch() {
                    return Err(NetError::EpochMismatch {
                        expected: session.epoch(),
                        got: commit.epoch,
                    });
                }
                let baseline = synctime_core::wire::decode_full(&commit.baseline)
                    .ok_or_else(|| NetError::Protocol("undecodable commit baseline".into()))?;
                if baseline.dim() != session.decomposition().len() {
                    return Err(NetError::Protocol(format!(
                        "commit baseline has dimension {}, decomposition has {}",
                        baseline.dim(),
                        session.decomposition().len()
                    )));
                }
                return Ok(ReconfigOutcome {
                    epoch: commit.epoch,
                    remap: composed,
                    baseline,
                });
            }
        }
    }
}

fn recv_reconfigure(
    mesh: &TcpMesh,
    peer: usize,
    deadline: Instant,
) -> Result<ReconfigFrame, NetError> {
    match mesh.recv_control(peer, deadline)? {
        Frame::Reconfigure(frame) => Ok(frame),
        other => Err(NetError::Protocol(format!(
            "expected RECONFIGURE on the control channel, got {other:?}"
        ))),
    }
}

fn recv_ack(mesh: &TcpMesh, peer: usize, deadline: Instant) -> Result<ReconfigAckFrame, NetError> {
    match mesh.recv_control(peer, deadline)? {
        Frame::ReconfigAck(ack) => Ok(ack),
        other => Err(NetError::Protocol(format!(
            "expected RECONFIG_ACK on the control channel, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpMeshBuilder;
    use synctime_graph::topology;

    const TIMEOUT: Duration = Duration::from_secs(10);
    const HASH: u64 = 0x5eed;

    /// Establishes a control star: process 0 connected to every other
    /// process, each follower connected only to 0.
    fn star_meshes(n: usize) -> Vec<TcpMesh> {
        let builders: Vec<TcpMeshBuilder> = (0..n)
            .map(|_| TcpMeshBuilder::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<std::net::SocketAddr> =
            builders.iter().map(TcpMeshBuilder::local_addr).collect();
        let mut handles = Vec::new();
        for (p, b) in builders.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                let neighbors: Vec<usize> = if p == 0 { (1..n).collect() } else { vec![0] };
                b.establish(p, &addrs, &neighbors, HASH, TIMEOUT).unwrap()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn replicas_agree_after_propose_and_prepare() {
        let g = topology::path(4);
        let mut coord = ReconfigSession::new(&g);
        let mut replica = ReconfigSession::new(&g);
        let prepare = coord
            .propose(&[EdgeOp::Insert(0, 3), EdgeOp::Remove(1, 2)])
            .unwrap();
        let remap = replica.prepare(&prepare).unwrap();
        assert_eq!(remap, prepare.remap);
        assert_eq!(replica.epoch(), 1);
        assert_eq!(replica.decomposition(), coord.decomposition());
        assert_eq!(replica.graph(), coord.graph());
    }

    #[test]
    fn out_of_order_prepare_is_an_epoch_mismatch() {
        let g = topology::path(3);
        let mut coord = ReconfigSession::new(&g);
        let mut replica = ReconfigSession::new(&g);
        let first = coord.propose(&[EdgeOp::Insert(0, 2)]).unwrap();
        let second = coord.propose(&[EdgeOp::Remove(0, 2)]).unwrap();
        assert!(matches!(
            replica.prepare(&second),
            Err(NetError::EpochMismatch {
                expected: 1,
                got: 2
            })
        ));
        // The refusal left the replica untouched: the missed prepare still
        // applies, then the retried one goes through.
        replica.prepare(&first).unwrap();
        replica.prepare(&second).unwrap();
        assert_eq!(replica.epoch(), 2);
        assert_eq!(replica.decomposition(), coord.decomposition());
    }

    #[test]
    fn remap_vector_moves_survivors_and_zeroes_fresh_components() {
        let v = VectorTime::from(vec![5, 7, 9]);
        let remap = GroupRemap {
            old_to_new: vec![Some(2), None, Some(0)],
            new_len: 4,
        };
        assert_eq!(remap_vector(&v, &remap).as_slice(), &[9, 0, 5, 0]);
    }

    #[test]
    fn round_trips_a_reconfiguration_over_a_live_mesh() {
        let n = 3;
        let g = topology::path(n);
        let meshes = star_meshes(n);
        let mut sessions: Vec<ReconfigSession> = (0..n).map(|_| ReconfigSession::new(&g)).collect();
        let dim = sessions[0].decomposition().len();
        let clocks: Vec<VectorTime> = (0..n)
            .map(|p| VectorTime::from((0..dim).map(|c| (p * 10 + c) as u64).collect::<Vec<_>>()))
            .collect();
        let ops = vec![EdgeOp::Insert(0, 2)];

        let mut handles = Vec::new();
        for (p, (mesh, mut session)) in meshes
            .into_iter()
            .zip(sessions.drain(..))
            .enumerate()
            .collect::<Vec<_>>()
        {
            let ops = ops.clone();
            let clock = clocks[p].clone();
            handles.push(std::thread::spawn(move || {
                let outcome = if p == 0 {
                    coordinate_reconfigure(&mesh, &mut session, &[1, 2], &ops, &clock, TIMEOUT)
                        .unwrap()
                } else {
                    follow_reconfigure(&mesh, &mut session, 0, p as u32, &clock, TIMEOUT).unwrap()
                };
                (outcome, session)
            }));
        }
        let results: Vec<(ReconfigOutcome, ReconfigSession)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Every node committed the same epoch and the same uniform
        // baseline, and every replica agrees on the new decomposition.
        let baseline = &results[0].0.baseline;
        for (outcome, session) in &results {
            assert_eq!(outcome.epoch, 1);
            assert_eq!(&outcome.baseline, baseline);
            assert_eq!(session.epoch(), 1);
            assert_eq!(session.decomposition(), results[0].1.decomposition());
        }
        // The baseline dominates every rebased input clock (it is their
        // component-wise max).
        for ((outcome, _), clock) in results.iter().zip(&clocks) {
            let rebased = remap_vector(clock, &outcome.remap);
            for (b, r) in baseline.as_slice().iter().zip(rebased.as_slice()) {
                assert!(b >= r);
            }
        }
    }

    #[test]
    fn straggler_is_resynced_from_history() {
        let n = 3;
        let g = topology::path(n);
        let meshes = star_meshes(n);
        let mut coord = ReconfigSession::new(&g);
        let mut insync = ReconfigSession::new(&g);
        let straggler = ReconfigSession::new(&g); // misses epoch 1

        // Epoch 1 happened while process 2 was partitioned: only the
        // coordinator and process 1 applied it.
        let missed = coord.propose(&[EdgeOp::Insert(0, 2)]).unwrap();
        insync.prepare(&missed).unwrap();

        let dims = [
            coord.decomposition().len(),
            insync.decomposition().len(),
            straggler.decomposition().len(),
        ];
        let mut iter = meshes.into_iter();
        let (m0, m1, m2) = (
            iter.next().unwrap(),
            iter.next().unwrap(),
            iter.next().unwrap(),
        );
        let ops = vec![EdgeOp::Remove(1, 2), EdgeOp::Insert(1, 2)];

        let c0 = VectorTime::from(vec![3u64; dims[0]]);
        let h0 = std::thread::spawn(move || {
            let out = coordinate_reconfigure(&m0, &mut coord, &[1, 2], &ops, &c0, TIMEOUT).unwrap();
            (out, coord)
        });
        let c1 = VectorTime::from(vec![5u64; dims[1]]);
        let h1 = std::thread::spawn(move || {
            let mut s = insync;
            let out = follow_reconfigure(&m1, &mut s, 0, 1, &c1, TIMEOUT).unwrap();
            (out, s)
        });
        let c2 = VectorTime::from(vec![7u64; dims[2]]);
        let h2 = std::thread::spawn(move || {
            let mut s = straggler;
            let out = follow_reconfigure(&m2, &mut s, 0, 2, &c2, TIMEOUT).unwrap();
            (out, s)
        });

        let (out0, coord) = h0.join().unwrap();
        let (out1, s1) = h1.join().unwrap();
        let (out2, s2) = h2.join().unwrap();
        assert_eq!(out0.epoch, 2);
        assert_eq!(out1.epoch, 2);
        assert_eq!(out2.epoch, 2);
        assert_eq!(out0.baseline, out1.baseline);
        assert_eq!(out0.baseline, out2.baseline);
        // The straggler caught up through the missed epoch: all replicas
        // agree on the final decomposition and epoch.
        assert_eq!(s2.epoch(), 2);
        assert_eq!(s2.decomposition(), coord.decomposition());
        assert_eq!(s1.decomposition(), coord.decomposition());
    }
}
