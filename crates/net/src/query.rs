//! The precedence-query server: Theorem 4 as a network service.
//!
//! The paper's punchline is that a d-dimensional vector per message
//! answers `m1 ↦ m2` with a constant-time comparison. This module serves
//! that comparison over the frame protocol: a [`QueryServer`] holds the
//! stamped trace in memory and answers three query kinds —
//!
//! * **precedes** `m1 m2` — does `m1` synchronously precede `m2`?
//! * **concurrent** `m1 m2` — is neither ordered before the other?
//! * **chain-of** `m` — every message ordered with `m` (its causal past
//!   and future, `m` included), ascending by message id; the complement
//!   of `m`'s concurrency set.
//!
//! A v1 query is one QUERY frame and one ANSWER (or ERROR) frame; clients
//! keep a connection open and pipeline queries sequentially, so the
//! closed-loop cost is one round trip plus two vector comparisons. A v2
//! **batch** is one QUERY2 frame carrying up to `MAX_BATCH` queries
//! against one named trace of the catalog and one ANSWER2 frame carrying
//! positionally matched entries — the round trip, the framing, and the
//! trace lookup are paid once per batch, which is what takes a
//! single connection from ~10⁵ to ~10⁶ queries/sec on loopback.
//!
//! Every connection is served by the fixed worker pool in [`crate::pool`]
//! against a shared [`QueryFabric`] catalog; the single-trace [`serve`]
//! entry point is the same machinery over a one-trace catalog.
//!
//! Query connections handshake like transport connections, but a client
//! is not a process of any computation: it identifies as process
//! `u32::MAX` with topology hash `0`, and the server validates the
//! protocol version only.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use synctime_core::MessageTimestamps;
use synctime_trace::MessageId;

use crate::catalog::QueryFabric;
use crate::error::NetError;
use crate::frame::{BatchEntry, BatchQuery, Frame, FrameReader, MAX_BATCH, PROTOCOL_VERSION};

/// Query kind byte: does `m1` precede `m2`?
pub const QUERY_PRECEDES: u8 = 0;
/// Query kind byte: are `m1` and `m2` concurrent?
pub const QUERY_CONCURRENT: u8 = 1;
/// Query kind byte: every message ordered with `m1`.
pub const QUERY_CHAIN_OF: u8 = 2;

/// The process id query clients identify with: not a process at all.
pub const QUERY_CLIENT_ID: u32 = u32::MAX;

/// The trace id a single-trace [`serve`] registers its one trace under.
pub const DEFAULT_TRACE_NAME: &str = "default";

/// Answers one query against a stamped trace, returning the bytes a v1
/// ANSWER frame (or a v2 ANSWER2 entry — they are identical) carries:
///
/// * `precedes` / `concurrent` — a single `0`/`1` byte;
/// * `chain-of` — `u32` count, then the ordered message ids as `u32`s.
///
/// # Errors
///
/// [`NetError::Query`] on an unknown kind or out-of-range message id
/// (0-based).
pub fn answer_query(
    stamps: &MessageTimestamps,
    kind: u8,
    m1: u32,
    m2: u32,
) -> Result<Vec<u8>, NetError> {
    let check = |m: u32| -> Result<MessageId, NetError> {
        let idx = m as usize;
        if idx >= stamps.len() {
            return Err(NetError::Query(format!(
                "message {m} out of range (trace has {} messages)",
                stamps.len()
            )));
        }
        Ok(MessageId(idx))
    };
    match kind {
        QUERY_PRECEDES => {
            let (a, b) = (check(m1)?, check(m2)?);
            Ok(vec![u8::from(stamps.precedes(a, b))])
        }
        QUERY_CONCURRENT => {
            let (a, b) = (check(m1)?, check(m2)?);
            Ok(vec![u8::from(stamps.concurrent(a, b))])
        }
        QUERY_CHAIN_OF => {
            let m = check(m1)?;
            let ordered: Vec<u32> = (0..stamps.len())
                .map(MessageId)
                .filter(|&o| o == m || stamps.precedes(o, m) || stamps.precedes(m, o))
                .map(|o| o.0 as u32)
                .collect();
            let mut body = Vec::with_capacity(4 + 4 * ordered.len());
            body.extend_from_slice(&(ordered.len() as u32).to_le_bytes());
            for id in ordered {
                body.extend_from_slice(&id.to_le_bytes());
            }
            Ok(body)
        }
        other => Err(NetError::Query(format!("unknown query kind {other}"))),
    }
}

/// Answers queries against one stamped trace (the single-trace façade
/// over [`answer_query`]; the multi-trace catalog is [`QueryFabric`]).
#[derive(Debug, Clone)]
pub struct QueryService {
    stamps: Arc<MessageTimestamps>,
}

impl QueryService {
    /// Wraps a stamped trace.
    pub fn new(stamps: MessageTimestamps) -> Self {
        QueryService {
            stamps: Arc::new(stamps),
        }
    }

    /// Number of stamped messages served.
    pub fn message_count(&self) -> usize {
        self.stamps.len()
    }

    /// Answers one query, returning the ANSWER body (see [`answer_query`]).
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] on an unknown kind or out-of-range message id
    /// (0-based).
    pub fn answer(&self, kind: u8, m1: u32, m2: u32) -> Result<Vec<u8>, NetError> {
        answer_query(&self.stamps, kind, m1, m2)
    }
}

/// Accepts query connections forever against a single stamped trace,
/// registered in a one-shard catalog under [`DEFAULT_TRACE_NAME`] and
/// served by a default-sized worker pool — the PR 5 entry point, now on
/// the fabric machinery. v1 clients are unaffected (a single-trace
/// catalog answers empty-trace-id queries); batch clients may address the
/// trace as `"default"` or `""`.
///
/// Returns only when the listener itself fails; callers wanting a
/// bounded server should drop the listener from another thread or kill
/// the process (the CLI's `serve-query` does the latter).
///
/// # Errors
///
/// [`NetError::Io`] when accepting fails for a reason other than a
/// transient client error.
pub fn serve(listener: TcpListener, service: QueryService) -> Result<(), NetError> {
    let fabric = QueryFabric::new(1);
    fabric.publish_shared(DEFAULT_TRACE_NAME, Arc::clone(&service.stamps));
    crate::pool::serve_fabric(listener, Arc::new(fabric), crate::pool::default_pool_size())
}

/// Runs one client connection against the catalog: handshake, then a
/// query/answer loop (v1 single queries and v2 batches interleave freely)
/// until the client disconnects.
///
/// Rejected queries — bad ids, unknown kinds, unresolvable trace ids —
/// answer with ERROR frames (or error entries) and keep the connection
/// alive; only protocol violations and socket failures end it.
///
/// # Errors
///
/// [`NetError::Handshake`] when the client's HELLO is missing or speaks
/// the wrong protocol version, [`NetError::Protocol`] on frame
/// violations, [`NetError::Io`] on socket failures.
pub fn serve_fabric_connection(
    mut stream: TcpStream,
    fabric: &QueryFabric,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let hello = read_frame(&mut stream, &mut reader, &mut buf)?;
    let Frame::Hello { version, .. } = hello else {
        return Err(NetError::Handshake(format!(
            "expected HELLO, got {hello:?}"
        )));
    };
    if version != PROTOCOL_VERSION {
        let refusal = Frame::Error {
            message: format!(
                "protocol version mismatch: client speaks {version}, server speaks {PROTOCOL_VERSION}"
            ),
        };
        stream.write_all(&refusal.encode())?;
        return Err(NetError::Handshake("client version mismatch".to_string()));
    }
    stream.write_all(
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            topology_hash: 0,
            process: QUERY_CLIENT_ID,
        }
        .encode(),
    )?;
    loop {
        let frame = match read_frame(&mut stream, &mut reader, &mut buf) {
            Ok(f) => f,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match frame {
            Frame::Query { kind, m1, m2 } => {
                // v1: resolve the default trace, answer one query.
                match fabric
                    .resolve("")
                    .and_then(|stamps| answer_query(&stamps, kind, m1, m2))
                {
                    Ok(body) => Frame::Answer { body },
                    // The wire carries the bare detail; the client re-wraps
                    // it in NetError::Query, which adds the "query
                    // rejected:" prefix.
                    Err(NetError::Query(detail)) => Frame::Error { message: detail },
                    Err(e) => Frame::Error {
                        message: e.to_string(),
                    },
                }
            }
            Frame::QueryBatch { trace, queries } => {
                // v2: one trace resolution, then every entry answered
                // independently.
                match fabric.answer_batch(&trace, &queries) {
                    Ok(entries) => Frame::AnswerBatch { entries },
                    Err(NetError::Query(detail)) => Frame::Error { message: detail },
                    Err(e) => Frame::Error {
                        message: e.to_string(),
                    },
                }
            }
            other => {
                let err = Frame::Error {
                    message: format!("expected QUERY or QUERY2, got {other:?}"),
                };
                stream.write_all(&err.encode())?;
                return Ok(());
            }
        };
        stream.write_all(&reply.encode())?;
    }
}

fn read_frame(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    buf: &mut [u8],
) -> Result<Frame, NetError> {
    loop {
        if let Some(frame) = reader.next_frame()? {
            return Ok(frame);
        }
        let n = stream.read(buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        reader.feed(&buf[..n]);
    }
}

/// A blocking query connection: one handshake, then sequential queries.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl QueryClient {
    /// Connects and handshakes with a query server.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connect failures, [`NetError::Handshake`] when
    /// the server refuses the protocol version.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                topology_hash: 0,
                process: QUERY_CLIENT_ID,
            }
            .encode(),
        )?;
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 4096];
        match read_frame(&mut stream, &mut reader, &mut buf)? {
            Frame::Hello { .. } => Ok(QueryClient { stream, reader }),
            Frame::Error { message } => Err(NetError::Handshake(message)),
            other => Err(NetError::Handshake(format!(
                "expected HELLO, got {other:?}"
            ))),
        }
    }

    fn ask(&mut self, kind: u8, m1: u32, m2: u32) -> Result<Vec<u8>, NetError> {
        self.stream
            .write_all(&Frame::Query { kind, m1, m2 }.encode())?;
        let mut buf = [0u8; 4096];
        match read_frame(&mut self.stream, &mut self.reader, &mut buf)? {
            Frame::Answer { body } => Ok(body),
            Frame::Error { message } => Err(NetError::Query(message)),
            other => Err(NetError::Protocol(format!(
                "expected ANSWER, got {other:?}"
            ))),
        }
    }

    fn ask_bool(&mut self, kind: u8, m1: u32, m2: u32) -> Result<bool, NetError> {
        let body = self.ask(kind, m1, m2)?;
        match body.as_slice() {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(NetError::Protocol(
                "boolean answer body is not a single 0/1 byte".to_string(),
            )),
        }
    }

    /// Does message `m1` synchronously precede `m2`? (0-based ids.)
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the server rejects the ids, transport
    /// errors otherwise.
    pub fn precedes(&mut self, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool(QUERY_PRECEDES, m1, m2)
    }

    /// Are messages `m1` and `m2` concurrent? (0-based ids.)
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes`].
    pub fn concurrent(&mut self, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool(QUERY_CONCURRENT, m1, m2)
    }

    /// Every message ordered with `m` (see the module docs), ascending.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes`].
    pub fn chain_of(&mut self, m: u32) -> Result<Vec<u32>, NetError> {
        let body = self.ask(QUERY_CHAIN_OF, m, 0)?;
        parse_chain_body(&body)
    }

    /// Sends one v2 batch of queries against a named trace of the server's
    /// catalog and returns the positionally matched entries. Batches
    /// larger than [`MAX_BATCH`] are split across frames transparently;
    /// the empty trace id targets the catalog's default trace.
    ///
    /// ```no_run
    /// use synctime_net::{BatchEntry, BatchQuery, QueryClient};
    ///
    /// # fn main() -> Result<(), synctime_net::NetError> {
    /// let mut client = QueryClient::connect("127.0.0.1:4100")?;
    /// // 3 precedence questions against trace "ring-a", one round trip.
    /// let queries: Vec<BatchQuery> = [(0, 1), (1, 2), (2, 0)]
    ///     .iter()
    ///     .map(|&(m1, m2)| BatchQuery { kind: 0, m1, m2 })
    ///     .collect();
    /// for (q, entry) in queries.iter().zip(client.batch("ring-a", &queries)?) {
    ///     match entry {
    ///         BatchEntry::Answer(body) => {
    ///             println!("m{} precedes m{}: {}", q.m1, q.m2, body == [1]);
    ///         }
    ///         BatchEntry::Error(why) => println!("rejected: {why}"),
    ///     }
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the trace id itself is rejected (the
    /// per-query failures come back as [`BatchEntry::Error`] entries
    /// instead), [`NetError::Protocol`] on a malformed or mismatched
    /// reply, transport errors otherwise.
    pub fn batch(
        &mut self,
        trace: &str,
        queries: &[BatchQuery],
    ) -> Result<Vec<BatchEntry>, NetError> {
        if trace.len() > u16::MAX as usize {
            return Err(NetError::Query(format!(
                "trace id of {} bytes exceeds the u16 length field",
                trace.len()
            )));
        }
        let mut entries = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(MAX_BATCH) {
            self.stream.write_all(
                &Frame::QueryBatch {
                    trace: trace.to_string(),
                    queries: chunk.to_vec(),
                }
                .encode(),
            )?;
            let mut buf = [0u8; 65536];
            match read_frame(&mut self.stream, &mut self.reader, &mut buf)? {
                Frame::AnswerBatch { entries: got } => {
                    if got.len() != chunk.len() {
                        return Err(NetError::Protocol(format!(
                            "batch of {} queries answered with {} entries",
                            chunk.len(),
                            got.len()
                        )));
                    }
                    entries.extend(got);
                }
                Frame::Error { message } => return Err(NetError::Query(message)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected ANSWER2, got {other:?}"
                    )))
                }
            }
        }
        Ok(entries)
    }

    /// Batched `precedes`: one boolean per `(m1, m2)` pair, in order, via
    /// as few round trips as [`MAX_BATCH`] allows.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] if the trace id or *any* pair is rejected (use
    /// [`QueryClient::batch`] to observe per-query failures
    /// independently), transport errors otherwise.
    pub fn precedes_many(
        &mut self,
        trace: &str,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<bool>, NetError> {
        let queries: Vec<BatchQuery> = pairs
            .iter()
            .map(|&(m1, m2)| BatchQuery {
                kind: QUERY_PRECEDES,
                m1,
                m2,
            })
            .collect();
        self.batch(trace, &queries)?
            .into_iter()
            .map(|entry| match entry {
                BatchEntry::Answer(body) => match body.as_slice() {
                    [0] => Ok(false),
                    [1] => Ok(true),
                    _ => Err(NetError::Protocol(
                        "boolean answer body is not a single 0/1 byte".to_string(),
                    )),
                },
                BatchEntry::Error(message) => Err(NetError::Query(message)),
            })
            .collect()
    }

    /// [`QueryClient::precedes`] against a named trace of a multi-trace
    /// catalog (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes_many`].
    pub fn precedes_on(&mut self, trace: &str, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool_on(trace, QUERY_PRECEDES, m1, m2)
    }

    /// [`QueryClient::concurrent`] against a named trace (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes_many`].
    pub fn concurrent_on(&mut self, trace: &str, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool_on(trace, QUERY_CONCURRENT, m1, m2)
    }

    /// [`QueryClient::chain_of`] against a named trace (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes_many`].
    pub fn chain_of_on(&mut self, trace: &str, m: u32) -> Result<Vec<u32>, NetError> {
        let entry = self
            .batch(
                trace,
                &[BatchQuery {
                    kind: QUERY_CHAIN_OF,
                    m1: m,
                    m2: 0,
                }],
            )?
            .pop()
            .ok_or_else(|| NetError::Protocol("empty batch answer".to_string()))?;
        match entry {
            BatchEntry::Answer(body) => parse_chain_body(&body),
            BatchEntry::Error(message) => Err(NetError::Query(message)),
        }
    }

    fn ask_bool_on(&mut self, trace: &str, kind: u8, m1: u32, m2: u32) -> Result<bool, NetError> {
        let entry = self
            .batch(trace, &[BatchQuery { kind, m1, m2 }])?
            .pop()
            .ok_or_else(|| NetError::Protocol("empty batch answer".to_string()))?;
        match entry {
            BatchEntry::Answer(body) => match body.as_slice() {
                [0] => Ok(false),
                [1] => Ok(true),
                _ => Err(NetError::Protocol(
                    "boolean answer body is not a single 0/1 byte".to_string(),
                )),
            },
            BatchEntry::Error(message) => Err(NetError::Query(message)),
        }
    }
}

/// Parses a chain-of answer body: `u32` count, then the ids.
fn parse_chain_body(body: &[u8]) -> Result<Vec<u32>, NetError> {
    if body.len() < 4 {
        return Err(NetError::Protocol("truncated chain answer".to_string()));
    }
    let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
    if body.len() != 4 + 4 * count {
        return Err(NetError::Protocol(format!(
            "chain answer declares {count} ids but carries {} bytes",
            body.len()
        )));
    }
    Ok(body[4..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::VectorTime;

    fn diamond() -> QueryService {
        // m0 < m1, m0 < m2, m1 ∥ m2, m1 < m3, m2 < m3.
        QueryService::new(MessageTimestamps::new(vec![
            VectorTime::from(vec![1, 0]),
            VectorTime::from(vec![2, 0]),
            VectorTime::from(vec![1, 1]),
            VectorTime::from(vec![2, 2]),
        ]))
    }

    #[test]
    fn service_answers_all_kinds() {
        let svc = diamond();
        assert_eq!(svc.answer(QUERY_PRECEDES, 0, 1).unwrap(), vec![1]);
        assert_eq!(svc.answer(QUERY_PRECEDES, 1, 0).unwrap(), vec![0]);
        assert_eq!(svc.answer(QUERY_CONCURRENT, 1, 2).unwrap(), vec![1]);
        assert_eq!(svc.answer(QUERY_CONCURRENT, 0, 3).unwrap(), vec![0]);
        let chain = svc.answer(QUERY_CHAIN_OF, 1, 0).unwrap();
        // m1's ordered set: m0 < m1 < m3 (m2 is concurrent with m1).
        assert_eq!(chain[..4], 3u32.to_le_bytes());
        assert!(svc.answer(QUERY_PRECEDES, 0, 99).is_err());
        assert!(svc.answer(77, 0, 1).is_err());
    }

    #[test]
    fn server_and_client_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = serve(listener, diamond());
        });
        let mut client = QueryClient::connect(&addr.to_string()).unwrap();
        assert!(client.precedes(0, 3).unwrap());
        assert!(!client.precedes(3, 0).unwrap());
        assert!(client.concurrent(1, 2).unwrap());
        assert_eq!(client.chain_of(1).unwrap(), vec![0, 1, 3]);
        let err = client.precedes(0, 99).unwrap_err();
        assert!(matches!(err, NetError::Query(_)), "{err}");
        // The connection survives a rejected query.
        assert!(client.precedes(0, 1).unwrap());
    }
}
