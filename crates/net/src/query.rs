//! The precedence-query server: Theorem 4 as a network service.
//!
//! The paper's punchline is that a d-dimensional vector per message
//! answers `m1 ↦ m2` with a constant-time comparison. This module serves
//! that comparison over the frame protocol: a [`QueryServer`] holds the
//! stamped trace in memory and answers three query kinds —
//!
//! * **precedes** `m1 m2` — does `m1` synchronously precede `m2`?
//! * **concurrent** `m1 m2` — is neither ordered before the other?
//! * **chain-of** `m` — every message ordered with `m` (its causal past
//!   and future, `m` included), ascending by message id; the complement
//!   of `m`'s concurrency set.
//!
//! A query is one QUERY frame and one ANSWER (or ERROR) frame; clients
//! keep a connection open and pipeline queries sequentially, so the
//! closed-loop cost is one round trip plus two vector comparisons.
//!
//! Query connections handshake like transport connections, but a client
//! is not a process of any computation: it identifies as process
//! `u32::MAX` with topology hash `0`, and the server validates the
//! protocol version only.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use synctime_core::MessageTimestamps;
use synctime_trace::MessageId;

use crate::error::NetError;
use crate::frame::{Frame, FrameReader, PROTOCOL_VERSION};

/// Query kind byte: does `m1` precede `m2`?
pub const QUERY_PRECEDES: u8 = 0;
/// Query kind byte: are `m1` and `m2` concurrent?
pub const QUERY_CONCURRENT: u8 = 1;
/// Query kind byte: every message ordered with `m1`.
pub const QUERY_CHAIN_OF: u8 = 2;

/// The process id query clients identify with: not a process at all.
pub const QUERY_CLIENT_ID: u32 = u32::MAX;

/// Answers queries against one stamped trace.
#[derive(Debug, Clone)]
pub struct QueryService {
    stamps: Arc<MessageTimestamps>,
}

impl QueryService {
    /// Wraps a stamped trace.
    pub fn new(stamps: MessageTimestamps) -> Self {
        QueryService {
            stamps: Arc::new(stamps),
        }
    }

    /// Number of stamped messages served.
    pub fn message_count(&self) -> usize {
        self.stamps.len()
    }

    /// Answers one query, returning the ANSWER body.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] on an unknown kind or out-of-range message id
    /// (0-based).
    pub fn answer(&self, kind: u8, m1: u32, m2: u32) -> Result<Vec<u8>, NetError> {
        let check = |m: u32| -> Result<MessageId, NetError> {
            let idx = m as usize;
            if idx >= self.stamps.len() {
                return Err(NetError::Query(format!(
                    "message {m} out of range (trace has {} messages)",
                    self.stamps.len()
                )));
            }
            Ok(MessageId(idx))
        };
        match kind {
            QUERY_PRECEDES => {
                let (a, b) = (check(m1)?, check(m2)?);
                Ok(vec![u8::from(self.stamps.precedes(a, b))])
            }
            QUERY_CONCURRENT => {
                let (a, b) = (check(m1)?, check(m2)?);
                Ok(vec![u8::from(self.stamps.concurrent(a, b))])
            }
            QUERY_CHAIN_OF => {
                let m = check(m1)?;
                let ordered: Vec<u32> = (0..self.stamps.len())
                    .map(MessageId)
                    .filter(|&o| o == m || self.stamps.precedes(o, m) || self.stamps.precedes(m, o))
                    .map(|o| o.0 as u32)
                    .collect();
                let mut body = Vec::with_capacity(4 + 4 * ordered.len());
                body.extend_from_slice(&(ordered.len() as u32).to_le_bytes());
                for id in ordered {
                    body.extend_from_slice(&id.to_le_bytes());
                }
                Ok(body)
            }
            other => Err(NetError::Query(format!("unknown query kind {other}"))),
        }
    }
}

/// Accepts query connections forever, one handler thread per client.
///
/// Returns only when the listener itself fails; callers wanting a
/// bounded server should drop the listener from another thread or kill
/// the process (the CLI's `serve-query` does the latter).
///
/// # Errors
///
/// [`NetError::Io`] when accepting fails for a reason other than a
/// transient client error.
pub fn serve(listener: TcpListener, service: QueryService) -> Result<(), NetError> {
    loop {
        let (stream, _) = listener.accept()?;
        let service = service.clone();
        std::thread::Builder::new()
            .name("synctime-query".to_string())
            .spawn(move || {
                // A misbehaving client only kills its own connection.
                let _ = serve_connection(stream, &service);
            })?;
    }
}

/// Runs one client connection: handshake, then a query/answer loop until
/// the client disconnects.
fn serve_connection(mut stream: TcpStream, service: &QueryService) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let hello = read_frame(&mut stream, &mut reader, &mut buf)?;
    let Frame::Hello { version, .. } = hello else {
        return Err(NetError::Handshake(format!(
            "expected HELLO, got {hello:?}"
        )));
    };
    if version != PROTOCOL_VERSION {
        let refusal = Frame::Error {
            message: format!(
                "protocol version mismatch: client speaks {version}, server speaks {PROTOCOL_VERSION}"
            ),
        };
        stream.write_all(&refusal.encode())?;
        return Err(NetError::Handshake("client version mismatch".to_string()));
    }
    stream.write_all(
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            topology_hash: 0,
            process: QUERY_CLIENT_ID,
        }
        .encode(),
    )?;
    loop {
        let frame = match read_frame(&mut stream, &mut reader, &mut buf) {
            Ok(f) => f,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let Frame::Query { kind, m1, m2 } = frame else {
            let err = Frame::Error {
                message: format!("expected QUERY, got {frame:?}"),
            };
            stream.write_all(&err.encode())?;
            return Ok(());
        };
        let reply = match service.answer(kind, m1, m2) {
            Ok(body) => Frame::Answer { body },
            // The wire carries the bare detail; the client re-wraps it in
            // NetError::Query, which adds the "query rejected:" prefix.
            Err(NetError::Query(detail)) => Frame::Error { message: detail },
            Err(e) => Frame::Error {
                message: e.to_string(),
            },
        };
        stream.write_all(&reply.encode())?;
    }
}

fn read_frame(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    buf: &mut [u8],
) -> Result<Frame, NetError> {
    loop {
        if let Some(frame) = reader.next_frame()? {
            return Ok(frame);
        }
        let n = stream.read(buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        reader.feed(&buf[..n]);
    }
}

/// A blocking query connection: one handshake, then sequential queries.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl QueryClient {
    /// Connects and handshakes with a query server.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connect failures, [`NetError::Handshake`] when
    /// the server refuses the protocol version.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                topology_hash: 0,
                process: QUERY_CLIENT_ID,
            }
            .encode(),
        )?;
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 4096];
        match read_frame(&mut stream, &mut reader, &mut buf)? {
            Frame::Hello { .. } => Ok(QueryClient { stream, reader }),
            Frame::Error { message } => Err(NetError::Handshake(message)),
            other => Err(NetError::Handshake(format!(
                "expected HELLO, got {other:?}"
            ))),
        }
    }

    fn ask(&mut self, kind: u8, m1: u32, m2: u32) -> Result<Vec<u8>, NetError> {
        self.stream
            .write_all(&Frame::Query { kind, m1, m2 }.encode())?;
        let mut buf = [0u8; 4096];
        match read_frame(&mut self.stream, &mut self.reader, &mut buf)? {
            Frame::Answer { body } => Ok(body),
            Frame::Error { message } => Err(NetError::Query(message)),
            other => Err(NetError::Protocol(format!(
                "expected ANSWER, got {other:?}"
            ))),
        }
    }

    fn ask_bool(&mut self, kind: u8, m1: u32, m2: u32) -> Result<bool, NetError> {
        let body = self.ask(kind, m1, m2)?;
        match body.as_slice() {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(NetError::Protocol(
                "boolean answer body is not a single 0/1 byte".to_string(),
            )),
        }
    }

    /// Does message `m1` synchronously precede `m2`? (0-based ids.)
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the server rejects the ids, transport
    /// errors otherwise.
    pub fn precedes(&mut self, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool(QUERY_PRECEDES, m1, m2)
    }

    /// Are messages `m1` and `m2` concurrent? (0-based ids.)
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes`].
    pub fn concurrent(&mut self, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool(QUERY_CONCURRENT, m1, m2)
    }

    /// Every message ordered with `m` (see the module docs), ascending.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes`].
    pub fn chain_of(&mut self, m: u32) -> Result<Vec<u32>, NetError> {
        let body = self.ask(QUERY_CHAIN_OF, m, 0)?;
        if body.len() < 4 {
            return Err(NetError::Protocol("truncated chain answer".to_string()));
        }
        let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
        if body.len() != 4 + 4 * count {
            return Err(NetError::Protocol(format!(
                "chain answer declares {count} ids but carries {} bytes",
                body.len()
            )));
        }
        Ok(body[4..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::VectorTime;

    fn diamond() -> QueryService {
        // m0 < m1, m0 < m2, m1 ∥ m2, m1 < m3, m2 < m3.
        QueryService::new(MessageTimestamps::new(vec![
            VectorTime::from(vec![1, 0]),
            VectorTime::from(vec![2, 0]),
            VectorTime::from(vec![1, 1]),
            VectorTime::from(vec![2, 2]),
        ]))
    }

    #[test]
    fn service_answers_all_kinds() {
        let svc = diamond();
        assert_eq!(svc.answer(QUERY_PRECEDES, 0, 1).unwrap(), vec![1]);
        assert_eq!(svc.answer(QUERY_PRECEDES, 1, 0).unwrap(), vec![0]);
        assert_eq!(svc.answer(QUERY_CONCURRENT, 1, 2).unwrap(), vec![1]);
        assert_eq!(svc.answer(QUERY_CONCURRENT, 0, 3).unwrap(), vec![0]);
        let chain = svc.answer(QUERY_CHAIN_OF, 1, 0).unwrap();
        // m1's ordered set: m0 < m1 < m3 (m2 is concurrent with m1).
        assert_eq!(chain[..4], 3u32.to_le_bytes());
        assert!(svc.answer(QUERY_PRECEDES, 0, 99).is_err());
        assert!(svc.answer(77, 0, 1).is_err());
    }

    #[test]
    fn server_and_client_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = serve(listener, diamond());
        });
        let mut client = QueryClient::connect(&addr.to_string()).unwrap();
        assert!(client.precedes(0, 3).unwrap());
        assert!(!client.precedes(3, 0).unwrap());
        assert!(client.concurrent(1, 2).unwrap());
        assert_eq!(client.chain_of(1).unwrap(), vec![0, 1, 3]);
        let err = client.precedes(0, 99).unwrap_err();
        assert!(matches!(err, NetError::Query(_)), "{err}");
        // The connection survives a rejected query.
        assert!(client.precedes(0, 1).unwrap());
    }
}
