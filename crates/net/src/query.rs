//! The precedence-query server: Theorem 4 as a network service.
//!
//! The paper's punchline is that a d-dimensional vector per message
//! answers `m1 ↦ m2` with a constant-time comparison. This module serves
//! that comparison over the frame protocol: a [`QueryServer`] holds the
//! stamped trace in memory and answers three query kinds —
//!
//! * **precedes** `m1 m2` — does `m1` synchronously precede `m2`?
//! * **concurrent** `m1 m2` — is neither ordered before the other?
//! * **chain-of** `m` — every message ordered with `m` (its causal past
//!   and future, `m` included), ascending by message id; the complement
//!   of `m`'s concurrency set.
//!
//! A v1 query is one QUERY frame and one ANSWER (or ERROR) frame; clients
//! keep a connection open and pipeline queries sequentially, so the
//! closed-loop cost is one round trip plus two vector comparisons. A v2
//! **batch** is one QUERY2 frame carrying up to `MAX_BATCH` queries
//! against one named trace of the catalog and one ANSWER2 frame carrying
//! positionally matched entries — the round trip, the framing, and the
//! trace lookup are paid once per batch, which is what takes a
//! single connection from ~10⁵ to ~10⁶ queries/sec on loopback.
//!
//! A v3 **pipelined** connection removes the remaining lock-step: a
//! [`Pipeline`] keeps up to W correlation-tagged QUERY3 batches in flight
//! at once, the server answers frames *as they decode* (every batch read
//! off the socket in one `read` is answered in one `write`), and answers
//! complete out of order, matched by correlation id. The serving hot path
//! is allocation-free in steady state: [`pump_frames`] decodes borrowed
//! [`QueryBatchView`]s straight out of the receive buffer and appends
//! ANSWER3 frames to a per-connection [`FrameScratch`], whose buffers are
//! reused across frames and connections (see
//! `crates/net/tests/zero_alloc.rs` for the counting-allocator proof).
//!
//! Every connection is served by the fixed worker pool in [`crate::pool`]
//! against a shared [`QueryFabric`] catalog; the single-trace [`serve`]
//! entry point is the same machinery over a one-trace catalog.
//!
//! Query connections handshake like transport connections, but a client
//! is not a process of any computation: it identifies as process
//! `u32::MAX` with topology hash `0`, and the server validates the
//! protocol version only — accepting [`MIN_QUERY_VERSION`] up to
//! [`PROTOCOL_VERSION`], so v2 clients keep working across the v3 bump.
//!
//! [`QueryBatchView`]: crate::frame::QueryBatchView

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use synctime_core::MessageTimestamps;
use synctime_trace::MessageId;

use crate::catalog::QueryFabric;
use crate::error::NetError;
use crate::frame::{
    begin_frame, encode_query_batch_into, end_frame, AnswerBatchView, BatchEntry, BatchQuery,
    Frame, FrameReader, FrameScratch, QueryBatchView, MAX_BATCH, MIN_QUERY_VERSION,
    PROTOCOL_VERSION, TYPE_ANSWER_PIPELINED, TYPE_QUERY_PIPELINED,
};

/// Query kind byte: does `m1` precede `m2`?
pub const QUERY_PRECEDES: u8 = 0;
/// Query kind byte: are `m1` and `m2` concurrent?
pub const QUERY_CONCURRENT: u8 = 1;
/// Query kind byte: every message ordered with `m1`.
pub const QUERY_CHAIN_OF: u8 = 2;

/// The process id query clients identify with: not a process at all.
pub const QUERY_CLIENT_ID: u32 = u32::MAX;

/// The trace id a single-trace [`serve`] registers its one trace under.
pub const DEFAULT_TRACE_NAME: &str = "default";

/// Answers one query against a stamped trace, returning the bytes a v1
/// ANSWER frame (or a v2 ANSWER2 entry — they are identical) carries:
///
/// * `precedes` / `concurrent` — a single `0`/`1` byte;
/// * `chain-of` — `u32` count, then the ordered message ids as `u32`s.
///
/// # Errors
///
/// [`NetError::Query`] on an unknown kind or out-of-range message id
/// (0-based).
pub fn answer_query(
    stamps: &MessageTimestamps,
    kind: u8,
    m1: u32,
    m2: u32,
) -> Result<Vec<u8>, NetError> {
    let mut body = Vec::new();
    answer_query_into(stamps, kind, m1, m2, &mut body)?;
    Ok(body)
}

/// [`answer_query`] appending into a caller-owned buffer — the
/// allocation-free form the serving hot path uses ([`FrameScratch::body`]
/// is the usual arena). On error nothing has been appended.
///
/// # Errors
///
/// [`NetError::Query`] on an unknown kind or out-of-range message id
/// (0-based).
pub fn answer_query_into(
    stamps: &MessageTimestamps,
    kind: u8,
    m1: u32,
    m2: u32,
    out: &mut Vec<u8>,
) -> Result<(), NetError> {
    let check = |m: u32| -> Result<MessageId, NetError> {
        let idx = m as usize;
        if idx >= stamps.len() {
            return Err(NetError::Query(format!(
                "message {m} out of range (trace has {} messages)",
                stamps.len()
            )));
        }
        Ok(MessageId(idx))
    };
    match kind {
        QUERY_PRECEDES => {
            let (a, b) = (check(m1)?, check(m2)?);
            out.push(u8::from(stamps.precedes(a, b)));
            Ok(())
        }
        QUERY_CONCURRENT => {
            let (a, b) = (check(m1)?, check(m2)?);
            out.push(u8::from(stamps.concurrent(a, b)));
            Ok(())
        }
        QUERY_CHAIN_OF => {
            let m = check(m1)?;
            // Count prefix backpatched once the ids are appended, so the
            // ordered set is never materialised separately.
            let count_at = out.len();
            out.extend_from_slice(&[0u8; 4]);
            let mut count = 0u32;
            for o in (0..stamps.len()).map(MessageId) {
                if o == m || stamps.precedes(o, m) || stamps.precedes(m, o) {
                    out.extend_from_slice(&(o.0 as u32).to_le_bytes());
                    count += 1;
                }
            }
            out[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());
            Ok(())
        }
        other => Err(NetError::Query(format!("unknown query kind {other}"))),
    }
}

/// Answers queries against one stamped trace (the single-trace façade
/// over [`answer_query`]; the multi-trace catalog is [`QueryFabric`]).
#[derive(Debug, Clone)]
pub struct QueryService {
    stamps: Arc<MessageTimestamps>,
}

impl QueryService {
    /// Wraps a stamped trace.
    pub fn new(stamps: MessageTimestamps) -> Self {
        QueryService {
            stamps: Arc::new(stamps),
        }
    }

    /// Number of stamped messages served.
    pub fn message_count(&self) -> usize {
        self.stamps.len()
    }

    /// Answers one query, returning the ANSWER body (see [`answer_query`]).
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] on an unknown kind or out-of-range message id
    /// (0-based).
    pub fn answer(&self, kind: u8, m1: u32, m2: u32) -> Result<Vec<u8>, NetError> {
        answer_query(&self.stamps, kind, m1, m2)
    }
}

/// Accepts query connections forever against a single stamped trace,
/// registered in a one-shard catalog under [`DEFAULT_TRACE_NAME`] and
/// served by a default-sized worker pool — the PR 5 entry point, now on
/// the fabric machinery. v1 clients are unaffected (a single-trace
/// catalog answers empty-trace-id queries); batch clients may address the
/// trace as `"default"` or `""`.
///
/// Returns only when the listener itself fails; callers wanting a
/// bounded server should drop the listener from another thread or kill
/// the process (the CLI's `serve-query` does the latter).
///
/// # Errors
///
/// [`NetError::Io`] when accepting fails for a reason other than a
/// transient client error.
pub fn serve(listener: TcpListener, service: QueryService) -> Result<(), NetError> {
    let fabric = QueryFabric::new(1);
    fabric.publish_shared(DEFAULT_TRACE_NAME, Arc::clone(&service.stamps));
    crate::pool::serve_fabric(listener, Arc::new(fabric), crate::pool::default_pool_size())
}

/// Runs one client connection against the catalog: handshake, then a
/// query/answer loop (v1 single queries, v2 batches, and v3 pipelined
/// batches interleave freely) until the client disconnects.
///
/// The loop never lock-steps: every complete frame already buffered is
/// answered into `scratch.out` before the reply bytes leave in a single
/// `write`, so a pipelining client that lands W batches in one socket
/// read gets W answers in one socket write. `scratch` is the connection's
/// reusable buffer set — a pool worker passes the same scratch to every
/// connection it serves, which is what keeps the steady state
/// allocation-free.
///
/// Rejected queries — bad ids, unknown kinds, unresolvable trace ids —
/// answer with ERROR frames (or error entries) and keep the connection
/// alive; only protocol violations and socket failures end it.
///
/// # Errors
///
/// [`NetError::Handshake`] when the client's HELLO is missing or speaks
/// an unsupported protocol version (anything outside
/// [`MIN_QUERY_VERSION`]..=[`PROTOCOL_VERSION`]), [`NetError::Protocol`]
/// on frame violations, [`NetError::Io`] on socket failures.
pub fn serve_fabric_connection(
    mut stream: TcpStream,
    fabric: &QueryFabric,
    scratch: &mut FrameScratch,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16384];
    let hello = read_frame(&mut stream, &mut reader, &mut buf)?;
    let Frame::Hello { version, .. } = hello else {
        return Err(NetError::Handshake(format!(
            "expected HELLO, got {hello:?}"
        )));
    };
    if !(MIN_QUERY_VERSION..=PROTOCOL_VERSION).contains(&version) {
        let refusal = Frame::Error {
            message: format!(
                "protocol version mismatch: client speaks {version}, server accepts \
                 {MIN_QUERY_VERSION}..={PROTOCOL_VERSION}"
            ),
        };
        stream.write_all(&refusal.encode()?)?;
        return Err(NetError::Handshake("client version mismatch".to_string()));
    }
    stream.write_all(
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            topology_hash: 0,
            process: QUERY_CLIENT_ID,
        }
        .encode()?,
    )?;
    loop {
        scratch.out.clear();
        let open = pump_frames(&mut reader, fabric, scratch)?;
        if !scratch.out.is_empty() {
            stream.write_all(&scratch.out)?;
        }
        if !open {
            return Ok(());
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        reader.feed(&buf[..n]);
    }
}

/// Answers every complete frame buffered in `reader`, appending the reply
/// bytes to `scratch.out` (the caller flushes them in one write). Returns
/// `false` when the connection should close after the flush — an
/// unexpected frame type was answered with a final ERROR frame.
///
/// This is the serving hot path: QUERY3 frames are decoded as borrowed
/// [`QueryBatchView`]s straight out of the receive buffer and answered
/// via [`answer_query_into`] into the scratch arena, so in steady state
/// (warm buffers, no rejected queries) the whole pump performs **zero
/// heap allocations per query** — `crates/net/tests/zero_alloc.rs` counts
/// them. A QUERY3 whose trace id does not resolve answers ANSWER3 with
/// every entry carrying the resolution error, keeping the correlation id
/// (a bare ERROR frame would not say *which* in-flight batch failed).
///
/// # Errors
///
/// [`NetError::Protocol`] on frame violations (framing is lost; the
/// caller should drop the connection without flushing further replies).
pub fn pump_frames(
    reader: &mut FrameReader,
    fabric: &QueryFabric,
    scratch: &mut FrameScratch,
) -> Result<bool, NetError> {
    loop {
        // Fast path: answer a pipelined batch without materialising a
        // Frame. Everything else falls back to the owned decode below.
        if let Some((TYPE_QUERY_PIPELINED, body)) = reader.peek_frame()? {
            if body.len() < 4 {
                return Err(NetError::Protocol(
                    "QUERY3 body too short for correlation id".to_string(),
                ));
            }
            let corr = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            let view = QueryBatchView::parse(&body[4..])?;
            let FrameScratch {
                out, body: arena, ..
            } = scratch;
            let start = begin_frame(out, TYPE_ANSWER_PIPELINED);
            out.extend_from_slice(&corr.to_le_bytes());
            out.extend_from_slice(&(view.count() as u32).to_le_bytes());
            match fabric.resolve(view.trace()) {
                Ok(stamps) => {
                    for q in view.queries() {
                        arena.clear();
                        let status = match answer_query_into(&stamps, q.kind, q.m1, q.m2, arena) {
                            Ok(()) => 0u8,
                            Err(e) => {
                                let detail = match e {
                                    NetError::Query(detail) => detail,
                                    other => other.to_string(),
                                };
                                arena.clear();
                                arena.extend_from_slice(detail.as_bytes());
                                1
                            }
                        };
                        out.push(status);
                        out.extend_from_slice(&(arena.len() as u32).to_le_bytes());
                        out.extend_from_slice(arena);
                    }
                }
                Err(e) => {
                    let detail = match e {
                        NetError::Query(detail) => detail,
                        other => other.to_string(),
                    };
                    for _ in 0..view.count() {
                        out.push(1);
                        out.extend_from_slice(&(detail.len() as u32).to_le_bytes());
                        out.extend_from_slice(detail.as_bytes());
                    }
                }
            }
            end_frame(out, start);
            reader.consume_frame();
            continue;
        }
        let frame = match reader.next_frame()? {
            Some(f) => f,
            None => return Ok(true),
        };
        let reply = match frame {
            Frame::Query { kind, m1, m2 } => {
                // v1: resolve the default trace, answer one query.
                match fabric
                    .resolve("")
                    .and_then(|stamps| answer_query(&stamps, kind, m1, m2))
                {
                    Ok(body) => Frame::Answer { body },
                    // The wire carries the bare detail; the client re-wraps
                    // it in NetError::Query, which adds the "query
                    // rejected:" prefix.
                    Err(NetError::Query(detail)) => Frame::Error { message: detail },
                    Err(e) => Frame::Error {
                        message: e.to_string(),
                    },
                }
            }
            Frame::QueryBatch { trace, queries } => {
                // v2: one trace resolution, then every entry answered
                // independently.
                match fabric.answer_batch(&trace, &queries) {
                    Ok(entries) => Frame::AnswerBatch { entries },
                    Err(NetError::Query(detail)) => Frame::Error { message: detail },
                    Err(e) => Frame::Error {
                        message: e.to_string(),
                    },
                }
            }
            other => {
                Frame::Error {
                    message: format!("expected QUERY, QUERY2, or QUERY3, got {other:?}"),
                }
                .encode_into(&mut scratch.out)?;
                return Ok(false);
            }
        };
        reply.encode_into(&mut scratch.out)?;
    }
}

fn read_frame(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    buf: &mut [u8],
) -> Result<Frame, NetError> {
    loop {
        if let Some(frame) = reader.next_frame()? {
            return Ok(frame);
        }
        let n = stream.read(buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        reader.feed(&buf[..n]);
    }
}

/// A blocking query connection: one handshake, then sequential queries —
/// or up to W overlapping batches via [`QueryClient::pipeline`].
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    reader: FrameReader,
    scratch: FrameScratch,
}

impl QueryClient {
    /// Connects and handshakes with a query server.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connect failures, [`NetError::Handshake`] when
    /// the server refuses the protocol version.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                topology_hash: 0,
                process: QUERY_CLIENT_ID,
            }
            .encode()?,
        )?;
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 4096];
        match read_frame(&mut stream, &mut reader, &mut buf)? {
            Frame::Hello { .. } => Ok(QueryClient {
                stream,
                reader,
                scratch: FrameScratch::new(),
            }),
            Frame::Error { message } => Err(NetError::Handshake(message)),
            other => Err(NetError::Handshake(format!(
                "expected HELLO, got {other:?}"
            ))),
        }
    }

    fn ask(&mut self, kind: u8, m1: u32, m2: u32) -> Result<Vec<u8>, NetError> {
        self.stream
            .write_all(&Frame::Query { kind, m1, m2 }.encode()?)?;
        let mut buf = [0u8; 4096];
        match read_frame(&mut self.stream, &mut self.reader, &mut buf)? {
            Frame::Answer { body } => Ok(body),
            Frame::Error { message } => Err(NetError::Query(message)),
            other => Err(NetError::Protocol(format!(
                "expected ANSWER, got {other:?}"
            ))),
        }
    }

    fn ask_bool(&mut self, kind: u8, m1: u32, m2: u32) -> Result<bool, NetError> {
        let body = self.ask(kind, m1, m2)?;
        match body.as_slice() {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(NetError::Protocol(
                "boolean answer body is not a single 0/1 byte".to_string(),
            )),
        }
    }

    /// Does message `m1` synchronously precede `m2`? (0-based ids.)
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the server rejects the ids, transport
    /// errors otherwise.
    pub fn precedes(&mut self, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool(QUERY_PRECEDES, m1, m2)
    }

    /// Are messages `m1` and `m2` concurrent? (0-based ids.)
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes`].
    pub fn concurrent(&mut self, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool(QUERY_CONCURRENT, m1, m2)
    }

    /// Every message ordered with `m` (see the module docs), ascending.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes`].
    pub fn chain_of(&mut self, m: u32) -> Result<Vec<u32>, NetError> {
        let body = self.ask(QUERY_CHAIN_OF, m, 0)?;
        parse_chain_body(&body)
    }

    /// Sends one v2 batch of queries against a named trace of the server's
    /// catalog and returns the positionally matched entries. Batches
    /// larger than [`MAX_BATCH`] are split across frames transparently;
    /// the empty trace id targets the catalog's default trace.
    ///
    /// ```no_run
    /// use synctime_net::{BatchEntry, BatchQuery, QueryClient};
    ///
    /// # fn main() -> Result<(), synctime_net::NetError> {
    /// let mut client = QueryClient::connect("127.0.0.1:4100")?;
    /// // 3 precedence questions against trace "ring-a", one round trip.
    /// let queries: Vec<BatchQuery> = [(0, 1), (1, 2), (2, 0)]
    ///     .iter()
    ///     .map(|&(m1, m2)| BatchQuery { kind: 0, m1, m2 })
    ///     .collect();
    /// for (q, entry) in queries.iter().zip(client.batch("ring-a", &queries)?) {
    ///     match entry {
    ///         BatchEntry::Answer(body) => {
    ///             println!("m{} precedes m{}: {}", q.m1, q.m2, body == [1]);
    ///         }
    ///         BatchEntry::Error(why) => println!("rejected: {why}"),
    ///     }
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] when the trace id itself is rejected (the
    /// per-query failures come back as [`BatchEntry::Error`] entries
    /// instead), [`NetError::Protocol`] on a malformed or mismatched
    /// reply, transport errors otherwise.
    pub fn batch(
        &mut self,
        trace: &str,
        queries: &[BatchQuery],
    ) -> Result<Vec<BatchEntry>, NetError> {
        let mut entries = Vec::with_capacity(queries.len());
        // Explicit cursor instead of `chunks()`: an exact multiple of
        // MAX_BATCH sends exactly len/MAX_BATCH frames (no trailing empty
        // frame), and an empty batch still sends one frame so a bad trace
        // id surfaces as the error it is rather than silently succeeding.
        let mut sent = 0usize;
        loop {
            let chunk = &queries[sent..queries.len().min(sent + MAX_BATCH)];
            self.scratch.out.clear();
            encode_query_batch_into(&mut self.scratch.out, None, trace, chunk)?;
            self.stream.write_all(&self.scratch.out)?;
            let mut buf = [0u8; 65536];
            match read_frame(&mut self.stream, &mut self.reader, &mut buf)? {
                Frame::AnswerBatch { entries: got } => {
                    if got.len() != chunk.len() {
                        return Err(NetError::Protocol(format!(
                            "batch of {} queries answered with {} entries",
                            chunk.len(),
                            got.len()
                        )));
                    }
                    entries.extend(got);
                }
                Frame::Error { message } => return Err(NetError::Query(message)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected ANSWER2, got {other:?}"
                    )))
                }
            }
            sent += chunk.len();
            if sent >= queries.len() {
                return Ok(entries);
            }
        }
    }

    /// Batched `precedes`: one boolean per `(m1, m2)` pair, in order, via
    /// as few round trips as [`MAX_BATCH`] allows.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] if the trace id or *any* pair is rejected (use
    /// [`QueryClient::batch`] to observe per-query failures
    /// independently), transport errors otherwise.
    pub fn precedes_many(
        &mut self,
        trace: &str,
        pairs: &[(u32, u32)],
    ) -> Result<Vec<bool>, NetError> {
        let queries: Vec<BatchQuery> = pairs
            .iter()
            .map(|&(m1, m2)| BatchQuery {
                kind: QUERY_PRECEDES,
                m1,
                m2,
            })
            .collect();
        self.batch(trace, &queries)?
            .into_iter()
            .map(|entry| match entry {
                BatchEntry::Answer(body) => match body.as_slice() {
                    [0] => Ok(false),
                    [1] => Ok(true),
                    _ => Err(NetError::Protocol(
                        "boolean answer body is not a single 0/1 byte".to_string(),
                    )),
                },
                BatchEntry::Error(message) => Err(NetError::Query(message)),
            })
            .collect()
    }

    /// [`QueryClient::precedes`] against a named trace of a multi-trace
    /// catalog (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes_many`].
    pub fn precedes_on(&mut self, trace: &str, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool_on(trace, QUERY_PRECEDES, m1, m2)
    }

    /// [`QueryClient::concurrent`] against a named trace (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes_many`].
    pub fn concurrent_on(&mut self, trace: &str, m1: u32, m2: u32) -> Result<bool, NetError> {
        self.ask_bool_on(trace, QUERY_CONCURRENT, m1, m2)
    }

    /// [`QueryClient::chain_of`] against a named trace (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`QueryClient::precedes_many`].
    pub fn chain_of_on(&mut self, trace: &str, m: u32) -> Result<Vec<u32>, NetError> {
        let entry = self
            .batch(
                trace,
                &[BatchQuery {
                    kind: QUERY_CHAIN_OF,
                    m1: m,
                    m2: 0,
                }],
            )?
            .pop()
            .ok_or_else(|| NetError::Protocol("empty batch answer".to_string()))?;
        match entry {
            BatchEntry::Answer(body) => parse_chain_body(&body),
            BatchEntry::Error(message) => Err(NetError::Query(message)),
        }
    }

    fn ask_bool_on(&mut self, trace: &str, kind: u8, m1: u32, m2: u32) -> Result<bool, NetError> {
        let entry = self
            .batch(trace, &[BatchQuery { kind, m1, m2 }])?
            .pop()
            .ok_or_else(|| NetError::Protocol("empty batch answer".to_string()))?;
        match entry {
            BatchEntry::Answer(body) => match body.as_slice() {
                [0] => Ok(false),
                [1] => Ok(true),
                _ => Err(NetError::Protocol(
                    "boolean answer body is not a single 0/1 byte".to_string(),
                )),
            },
            BatchEntry::Error(message) => Err(NetError::Query(message)),
        }
    }

    /// Opens a pipelined (protocol v3) session on this connection: up to
    /// `window` batches stay in flight at once, each tagged with a
    /// correlation id the server echoes, so the wire never idles for a
    /// round trip between batches. Answers complete out of order; the
    /// [`Pipeline`] reassembles them by submission slot.
    ///
    /// Dropping a [`Pipeline`] with batches still in flight leaves their
    /// answers unread in the stream — call [`Pipeline::finish`] (or
    /// [`Pipeline::drain`]) before issuing non-pipelined queries on this
    /// client again.
    pub fn pipeline(&mut self, window: usize) -> Pipeline<'_> {
        self.pipeline_at(window, 0)
    }

    /// As [`QueryClient::pipeline`], but starting correlation ids at
    /// `first_corr` instead of 0. Correlation ids are a wrapping `u32`
    /// counter (skipping ids still in flight), so a session outliving
    /// 2^32 submissions keeps working; this seam lets tests start next to
    /// the wrap point instead of submitting 2^32 batches to reach it.
    pub fn pipeline_at(&mut self, window: usize, first_corr: u32) -> Pipeline<'_> {
        Pipeline {
            client: self,
            window: window.max(1),
            expected: Vec::new(),
            results: Vec::new(),
            outstanding: 0,
            next_corr: first_corr,
            inflight: HashMap::new(),
        }
    }

    /// Pipelined batched `precedes`: one boolean per `(m1, m2)` pair, in
    /// order, with the pairs split into `batch`-sized QUERY3 frames and up
    /// to `window` frames in flight at once. This is the fastest
    /// single-connection path: requests stream without waiting for
    /// answers, and answers are decoded as borrowed views without
    /// per-entry allocation.
    ///
    /// `batch` is clamped to `1..=`[`MAX_BATCH`]; `window` to at least 1
    /// (`window == 1` degenerates to [`QueryClient::precedes_many`]'s
    /// lock-step, still on v3 frames).
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] if the trace id or *any* pair is rejected,
    /// [`NetError::Correlation`] on an answer for no in-flight batch,
    /// [`NetError::Protocol`] on malformed replies, transport errors
    /// otherwise.
    pub fn precedes_many_pipelined(
        &mut self,
        trace: &str,
        pairs: &[(u32, u32)],
        batch: usize,
        window: usize,
    ) -> Result<Vec<bool>, NetError> {
        let batch = batch.clamp(1, MAX_BATCH);
        let window = window.max(1);
        let mut results = vec![false; pairs.len()];
        let chunk_count = pairs.len().div_ceil(batch);
        let mut done = vec![false; chunk_count];
        let mut buf = vec![0u8; 65536];
        let mut submitted = 0usize;
        let mut completed = 0usize;
        while completed < chunk_count {
            while submitted < chunk_count && submitted - completed < window {
                let lo = submitted * batch;
                let hi = pairs.len().min(lo + batch);
                self.scratch.queries.clear();
                self.scratch
                    .queries
                    .extend(pairs[lo..hi].iter().map(|&(m1, m2)| BatchQuery {
                        kind: QUERY_PRECEDES,
                        m1,
                        m2,
                    }));
                self.scratch.out.clear();
                encode_query_batch_into(
                    &mut self.scratch.out,
                    Some(submitted as u32),
                    trace,
                    &self.scratch.queries,
                )?;
                self.stream.write_all(&self.scratch.out)?;
                submitted += 1;
            }
            self.recv_pipelined_bools(batch, &mut results, &mut done, &mut buf)?;
            completed += 1;
        }
        Ok(results)
    }

    /// Receives one ANSWER3 frame and scatters its booleans into
    /// `results` at the slot its correlation id names. The borrowed-view
    /// decode path: nothing is allocated per entry.
    fn recv_pipelined_bools(
        &mut self,
        batch: usize,
        results: &mut [bool],
        done: &mut [bool],
        buf: &mut [u8],
    ) -> Result<(), NetError> {
        loop {
            if self.reader.peek_frame()?.is_some() {
                break;
            }
            let n = self.stream.read(buf)?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            self.reader.feed(&buf[..n]);
        }
        let Some((ty, body)) = self.reader.peek_frame()? else {
            return Err(NetError::Protocol("peeked frame vanished".to_string()));
        };
        if ty != TYPE_ANSWER_PIPELINED {
            // Cold path: owned decode for ERROR or stray frames.
            return match self.reader.next_frame()? {
                Some(Frame::Error { message }) => Err(NetError::Query(message)),
                Some(other) => Err(NetError::Protocol(format!(
                    "expected ANSWER3, got {other:?}"
                ))),
                None => Err(NetError::Protocol("peeked frame vanished".to_string())),
            };
        }
        if body.len() < 4 {
            return Err(NetError::Protocol(
                "ANSWER3 body too short for correlation id".to_string(),
            ));
        }
        let corr = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
        let view = AnswerBatchView::parse(&body[4..])?;
        let slot = corr as usize;
        // Resolve the slot before touching results; a stray or duplicate
        // correlation id consumes its frame and surfaces typed, leaving
        // the connection alive.
        let outcome: Result<(), NetError> = if slot >= done.len() || done[slot] {
            Err(NetError::Correlation(corr))
        } else {
            let lo = slot * batch;
            let hi = results.len().min(lo + batch);
            if view.count() != hi - lo {
                Err(NetError::Protocol(format!(
                    "batch of {} queries answered with {} entries",
                    hi - lo,
                    view.count()
                )))
            } else {
                let mut failure: Option<NetError> = None;
                for (i, (status, bytes)) in view.entries().enumerate() {
                    match (status, bytes) {
                        (0, [0]) => results[lo + i] = false,
                        (0, [1]) => results[lo + i] = true,
                        (0, _) => {
                            failure = Some(NetError::Protocol(
                                "boolean answer body is not a single 0/1 byte".to_string(),
                            ));
                            break;
                        }
                        (1, msg) => {
                            failure =
                                Some(NetError::Query(String::from_utf8_lossy(msg).into_owned()));
                            break;
                        }
                        (status, _) => {
                            failure = Some(NetError::Protocol(format!(
                                "ANSWER3 entry has unknown status {status}"
                            )));
                            break;
                        }
                    }
                }
                match failure {
                    Some(e) => Err(e),
                    None => {
                        done[slot] = true;
                        Ok(())
                    }
                }
            }
        };
        self.reader.consume_frame();
        outcome
    }
}

/// A pipelined (protocol v3) query session: keeps up to W batches in
/// flight on one connection, completing them out of order by correlation
/// id. Created by [`QueryClient::pipeline`].
///
/// [`Pipeline::submit`] blocks only when the window is full (it receives
/// one answer to make room); [`Pipeline::drain`] /[`Pipeline::finish`]
/// receive whatever is still in flight. Results are returned in
/// *submission* order regardless of the order answers arrived.
#[derive(Debug)]
pub struct Pipeline<'a> {
    client: &'a mut QueryClient,
    window: usize,
    /// Entry count each slot's answer must carry.
    expected: Vec<u32>,
    /// Slot-indexed answers; `None` until the slot's ANSWER3 arrives.
    results: Vec<Option<Vec<BatchEntry>>>,
    outstanding: usize,
    /// Next correlation id to try; wraps around `u32::MAX` (ids are a
    /// cursor, not a slot index — slots keep growing past 2^32).
    next_corr: u32,
    /// Correlation id → submission slot, for every unanswered batch. The
    /// map both routes answers and keeps a wrapped id from being reissued
    /// while its first use is still in flight.
    inflight: HashMap<u32, usize>,
}

impl Pipeline<'_> {
    /// Sends one batch (at most [`MAX_BATCH`] queries) against a named
    /// trace, returning its submission slot. Blocks receiving answers
    /// only while the window is full.
    ///
    /// # Errors
    ///
    /// [`NetError::Query`] on an oversized batch or trace id (or a
    /// server-rejected trace on the answer that made room),
    /// [`NetError::Correlation`] when an answer matches no in-flight
    /// batch, transport errors otherwise.
    pub fn submit(&mut self, trace: &str, queries: &[BatchQuery]) -> Result<usize, NetError> {
        while self.outstanding >= self.window {
            self.recv_one()?;
        }
        // The correlation id is a wrapping cursor, not the slot index: a
        // session past 2^32 submissions wraps around, and any id still in
        // flight (the window bounds these to a handful) is skipped so two
        // live batches can never share an id.
        let mut corr = self.next_corr;
        while self.inflight.contains_key(&corr) {
            corr = corr.wrapping_add(1);
        }
        self.next_corr = corr.wrapping_add(1);
        self.client.scratch.out.clear();
        encode_query_batch_into(&mut self.client.scratch.out, Some(corr), trace, queries)?;
        self.client.stream.write_all(&self.client.scratch.out)?;
        let slot = self.results.len();
        self.inflight.insert(corr, slot);
        self.results.push(None);
        self.expected.push(queries.len() as u32);
        self.outstanding += 1;
        Ok(slot)
    }

    /// Batches submitted but not yet answered.
    pub fn pending(&self) -> usize {
        self.outstanding
    }

    /// Receives answers until nothing is in flight. A
    /// [`NetError::Correlation`] return is recoverable: the stray frame
    /// has been consumed, and calling `drain` again resumes receiving the
    /// real answers.
    ///
    /// # Errors
    ///
    /// [`NetError::Correlation`] on an answer for no in-flight batch,
    /// [`NetError::Query`] when the server rejected a batch's trace,
    /// [`NetError::Protocol`] on malformed replies, transport errors
    /// otherwise.
    pub fn drain(&mut self) -> Result<(), NetError> {
        while self.outstanding > 0 {
            self.recv_one()?;
        }
        Ok(())
    }

    /// Drains the window and returns every batch's entries in submission
    /// order.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::drain`].
    pub fn finish(mut self) -> Result<Vec<Vec<BatchEntry>>, NetError> {
        self.drain()?;
        // A hole after a clean drain means an answer never arrived for
        // that submission. Fabricating an empty entry list would let the
        // caller zip results against queries and silently misattribute
        // every answer past the hole — surface the missing slot instead.
        let mut out = Vec::with_capacity(self.results.len());
        for (slot, result) in self.results.drain(..).enumerate() {
            match result {
                Some(entries) => out.push(entries),
                None => return Err(NetError::Incomplete { slot }),
            }
        }
        Ok(out)
    }

    fn recv_one(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; 65536];
        match read_frame(&mut self.client.stream, &mut self.client.reader, &mut buf)? {
            Frame::AnswerPipelined { corr, entries } => {
                match self.inflight.remove(&corr) {
                    Some(slot) => {
                        if entries.len() as u32 != self.expected[slot] {
                            return Err(NetError::Protocol(format!(
                                "batch of {} queries answered with {} entries",
                                self.expected[slot],
                                entries.len()
                            )));
                        }
                        self.results[slot] = Some(entries);
                        self.outstanding -= 1;
                        Ok(())
                    }
                    // Unknown or already-answered correlation id: the
                    // frame is consumed, framing is intact, the session
                    // continues.
                    None => Err(NetError::Correlation(corr)),
                }
            }
            Frame::Error { message } => Err(NetError::Query(message)),
            other => Err(NetError::Protocol(format!(
                "expected ANSWER3, got {other:?}"
            ))),
        }
    }
}

/// Parses a chain-of answer body: `u32` count, then the ids.
fn parse_chain_body(body: &[u8]) -> Result<Vec<u32>, NetError> {
    if body.len() < 4 {
        return Err(NetError::Protocol("truncated chain answer".to_string()));
    }
    let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
    if body.len() != 4 + 4 * count {
        return Err(NetError::Protocol(format!(
            "chain answer declares {count} ids but carries {} bytes",
            body.len()
        )));
    }
    Ok(body[4..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::VectorTime;

    fn diamond() -> QueryService {
        // m0 < m1, m0 < m2, m1 ∥ m2, m1 < m3, m2 < m3.
        QueryService::new(MessageTimestamps::new(vec![
            VectorTime::from(vec![1, 0]),
            VectorTime::from(vec![2, 0]),
            VectorTime::from(vec![1, 1]),
            VectorTime::from(vec![2, 2]),
        ]))
    }

    #[test]
    fn service_answers_all_kinds() {
        let svc = diamond();
        assert_eq!(svc.answer(QUERY_PRECEDES, 0, 1).unwrap(), vec![1]);
        assert_eq!(svc.answer(QUERY_PRECEDES, 1, 0).unwrap(), vec![0]);
        assert_eq!(svc.answer(QUERY_CONCURRENT, 1, 2).unwrap(), vec![1]);
        assert_eq!(svc.answer(QUERY_CONCURRENT, 0, 3).unwrap(), vec![0]);
        let chain = svc.answer(QUERY_CHAIN_OF, 1, 0).unwrap();
        // m1's ordered set: m0 < m1 < m3 (m2 is concurrent with m1).
        assert_eq!(chain[..4], 3u32.to_le_bytes());
        assert!(svc.answer(QUERY_PRECEDES, 0, 99).is_err());
        assert!(svc.answer(77, 0, 1).is_err());
    }

    #[test]
    fn server_and_client_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = serve(listener, diamond());
        });
        let mut client = QueryClient::connect(&addr.to_string()).unwrap();
        assert!(client.precedes(0, 3).unwrap());
        assert!(!client.precedes(3, 0).unwrap());
        assert!(client.concurrent(1, 2).unwrap());
        assert_eq!(client.chain_of(1).unwrap(), vec![0, 1, 3]);
        let err = client.precedes(0, 99).unwrap_err();
        assert!(matches!(err, NetError::Query(_)), "{err}");
        // The connection survives a rejected query.
        assert!(client.precedes(0, 1).unwrap());
    }

    /// A client whose stream nobody reads, for driving Pipeline
    /// bookkeeping without a server.
    fn inert_client() -> QueryClient {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (sink, _) = listener.accept().unwrap();
        // Keep the accepted end alive so writes never see a reset.
        std::mem::forget(sink);
        QueryClient {
            stream,
            reader: FrameReader::new(),
            scratch: FrameScratch::new(),
        }
    }

    #[test]
    fn submit_skips_correlation_ids_still_in_flight() {
        let mut client = inert_client();
        let mut pipeline = client.pipeline_at(16, 7);
        // Pretend ids 7 and 8 are still unanswered from before a full
        // wrap of the counter.
        pipeline.inflight.insert(7, 1000);
        pipeline.inflight.insert(8, 1001);
        let slot = pipeline.submit("", &[]).unwrap();
        assert_eq!(slot, 0);
        // The fresh submission landed on the first free id, 9.
        assert_eq!(pipeline.inflight.get(&9), Some(&slot));
        assert_eq!(pipeline.next_corr, 10);
    }

    #[test]
    fn finish_reports_a_hole_as_incomplete() {
        let mut client = inert_client();
        let mut pipeline = client.pipeline(4);
        // A slot whose answer never arrived, with nothing outstanding —
        // the defensive hole check must refuse to fabricate results.
        pipeline
            .results
            .push(Some(vec![BatchEntry::Answer(vec![1])]));
        pipeline.results.push(None);
        pipeline.expected.extend([1, 1]);
        match pipeline.finish() {
            Err(NetError::Incomplete { slot }) => assert_eq!(slot, 1),
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }
}
