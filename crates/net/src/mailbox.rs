//! Condvar mailboxes between a connection's reader thread and the
//! runtime's bounded polls.
//!
//! A connection's reader thread demultiplexes incoming frames into
//! per-purpose mailboxes (offers from the peer; answers to our offers).
//! The runtime's wait loops drain them through the same bounded-poll
//! contract as the in-process transport: a pop with `cap =
//! Some(Duration::ZERO)` is a pure check, any other cap waits at most that
//! long (backstopped) before reporting pending.
//!
//! Ordering invariant: a closed mailbox **drains queued items before
//! reporting the close**. The runtime's send path relies on it — an
//! acknowledgement the peer wrote before its socket closed must be
//! observable by the sender's final poll, or a completed rendezvous would
//! be reported failed on one side only, leaving logs that no longer
//! reconstruct.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use synctime_runtime::{Polled, TransportError};

/// How long one bounded wait may park when the caller gives no cap; the
/// caller re-runs its abort/liveness checks at least this often.
pub(crate) const POP_BACKSTOP: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    /// Set when the connection died: by the reader thread on EOF/error
    /// (with `error = None` for a clean close) or with the I/O failure.
    closed: bool,
    error: Option<String>,
}

/// A many-producer, many-consumer queue with bounded-poll draining.
#[derive(Debug)]
pub(crate) struct Mailbox<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
}

impl<T> Mailbox<T> {
    pub(crate) fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
                error: None,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueues an item and wakes any bounded poll.
    pub(crate) fn push(&self, item: T) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.queue.push_back(item);
        self.cond.notify_all();
    }

    /// Marks the connection dead (`detail = None` for a clean close) and
    /// wakes every waiter. Queued items stay poppable.
    pub(crate) fn close(&self, detail: Option<String>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if !inner.closed {
            inner.closed = true;
            inner.error = detail;
        }
        self.cond.notify_all();
    }

    /// One bounded poll: pops the next item if present, else waits at most
    /// `cap` (backstopped; `Some(Duration::ZERO)` is a pure check that
    /// never releases the lock) and re-checks once.
    ///
    /// Queued items are always delivered before a close is reported.
    pub(crate) fn pop(&self, cap: Option<Duration>) -> Result<Polled<T>, TransportError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let waits = usize::from(cap != Some(Duration::ZERO));
        for pass in 0..=waits {
            if let Some(item) = inner.queue.pop_front() {
                return Ok(Polled::Ready(item));
            }
            if inner.closed {
                return Err(match inner.error.clone() {
                    None => TransportError::Closed,
                    Some(detail) => TransportError::Io(detail),
                });
            }
            if pass < waits {
                let step = cap.map_or(POP_BACKSTOP, |c| c.min(POP_BACKSTOP));
                inner = self
                    .cond
                    .wait_timeout(inner, step)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
        Ok(Polled::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_drains_before_reporting_close() {
        let mb: Mailbox<u32> = Mailbox::new();
        mb.push(1);
        mb.push(2);
        mb.close(None);
        assert!(matches!(mb.pop(Some(Duration::ZERO)), Ok(Polled::Ready(1))));
        assert!(matches!(mb.pop(Some(Duration::ZERO)), Ok(Polled::Ready(2))));
        assert!(matches!(
            mb.pop(Some(Duration::ZERO)),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn zero_cap_is_a_pure_probe() {
        let mb: Mailbox<u32> = Mailbox::new();
        assert!(matches!(mb.pop(Some(Duration::ZERO)), Ok(Polled::Pending)));
        mb.push(9);
        assert!(matches!(mb.pop(Some(Duration::ZERO)), Ok(Polled::Ready(9))));
    }

    #[test]
    fn io_close_surfaces_detail() {
        let mb: Mailbox<u32> = Mailbox::new();
        mb.close(Some("reset".to_string()));
        assert!(matches!(
            mb.pop(Some(Duration::ZERO)),
            Err(TransportError::Io(d)) if d == "reset"
        ));
    }
}
