//! `synctime-net`: sockets for synchronous timestamping.
//!
//! Everything below the `Transport` seam in `synctime-runtime` is
//! location-transparent: a [`Behavior`] rendezvouses through `TxChannel` /
//! `RxChannel` objects and never learns whether its peer is a thread or
//! another machine. This crate supplies the *other* implementation of that
//! seam — per-peer TCP connections speaking a length-prefixed frame
//! protocol — plus a network query service over stamped traces:
//!
//! * [`frame`] — the wire protocol: `[u32 len][u8 type][body]` frames
//!   (HELLO, OFFER, ACK, RESYNC, QUERY, ANSWER, ERROR), an incremental
//!   [`FrameReader`], and [`topology_hash`] for handshake validation.
//!   OFFER/ACK/RESYNC byte layouts match `synctime-core`'s wire-cost
//!   model *exactly*, so [`RunStats`] wire accounting is identical
//!   whether a run is local or distributed.
//! * [`tcp`] — [`TcpMeshBuilder`] / [`TcpMesh`]: bind-then-establish
//!   peer meshes with deterministic dial direction (lower id dials), a
//!   reader thread per connection demultiplexing into bounded-poll
//!   mailboxes, and `TxChannel`/`RxChannel` adapters the runtime drives
//!   unmodified.
//! * [`query`] — the precedence-query server: Theorem 4 of the paper as
//!   a service ([`QueryService`], [`serve_queries`], [`QueryClient`]).
//! * [`report`] — [`NodeReport`], the JSON document each OS process
//!   prints so a launcher can merge a distributed run back into one
//!   trace and one [`RunStats`].
//!
//! The crate is std-only: no async runtime, no serialization framework —
//! blocking sockets, reader threads, and hand-framed bytes, in keeping
//! with the workspace's no-external-dependency rule.
//!
//! [`Behavior`]: synctime_runtime::Behavior
//! [`RunStats`]: synctime_obs::RunStats
//! [`QueryService`]: query::QueryService
//! [`QueryClient`]: query::QueryClient
//! [`serve_queries`]: query::serve
//! [`NodeReport`]: report::NodeReport
//! [`FrameReader`]: frame::FrameReader
//! [`topology_hash`]: frame::topology_hash
//! [`TcpMeshBuilder`]: tcp::TcpMeshBuilder
//! [`TcpMesh`]: tcp::TcpMesh

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod frame;
mod mailbox;
pub mod query;
pub mod report;
pub mod tcp;

pub use error::NetError;
pub use frame::{
    topology_hash, topology_hash_of, Frame, FrameReader, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use query::{QueryClient, QueryService};
pub use report::{NodeReport, NODE_REPORT_SCHEMA};
pub use tcp::{TcpMesh, TcpMeshBuilder};
