//! `synctime-net`: sockets for synchronous timestamping.
//!
//! Everything below the `Transport` seam in `synctime-runtime` is
//! location-transparent: a [`Behavior`] rendezvouses through `TxChannel` /
//! `RxChannel` objects and never learns whether its peer is a thread or
//! another machine. This crate supplies the *other* implementation of that
//! seam — per-peer TCP connections speaking a length-prefixed frame
//! protocol — plus a network query service over stamped traces:
//!
//! * [`frame`] — the wire protocol: `[u32 len][u8 type][body]` frames
//!   (HELLO, OFFER, ACK, RESYNC, QUERY, ANSWER, ERROR, the batched
//!   QUERY2/ANSWER2 pair, the correlation-tagged pipelined
//!   QUERY3/ANSWER3 pair, and the RECONFIGURE/RECONFIG_ACK control
//!   pair), an incremental [`FrameReader`] with
//!   zero-copy [`peek_frame`](frame::FrameReader::peek_frame) access,
//!   borrowed batch views, reusable [`FrameScratch`] buffers, and
//!   [`topology_hash`] for handshake validation. OFFER/ACK/RESYNC and
//!   QUERY/ANSWER byte layouts match `synctime-core`'s wire-cost model
//!   *exactly*, so [`RunStats`] wire accounting is identical whether a
//!   run is local or distributed.
//! * [`tcp`] — [`TcpMeshBuilder`] / [`TcpMesh`]: bind-then-establish
//!   peer meshes with deterministic dial direction (lower id dials), a
//!   reader thread per connection demultiplexing into bounded-poll
//!   mailboxes, and `TxChannel`/`RxChannel` adapters the runtime drives
//!   unmodified.
//! * [`reconfig`] — the live reconfiguration control plane: a
//!   coordinator ships epoch-numbered topology edits (RECONFIGURE
//!   prepare) to every node's [`IncrementalDecomposition`] replica,
//!   collects rebased clocks (RECONFIG_ACK, with epoch-mismatch refusal
//!   and straggler resync), and commits one max-merged baseline vector
//!   all processes restart the new epoch from — keeping post-change
//!   stamps order-isomorphic with an uninterrupted reference run.
//! * [`catalog`] — the multi-trace query fabric: [`QueryFabric`] holds
//!   shared immutable [`Arc`](std::sync::Arc) snapshots of stamped
//!   traces, keyed by trace id and spread across in-process shards by a
//!   consistent-hash [`ShardRing`]; re-stamping publishes copy-on-write
//!   so in-flight readers are never blocked.
//! * [`pool`] — [`serve_fabric`], the fixed-size worker pool that
//!   replaced PR 5's thread-per-connection accept loop.
//! * [`query`] — the precedence-query protocol: Theorem 4 of the paper
//!   as a service ([`QueryService`], [`serve_queries`],
//!   [`QueryClient`] with single, batched, multi-trace, and pipelined
//!   calls — [`Pipeline`] keeps a window of batches in flight on one
//!   connection, completing out of order by correlation id).
//! * [`report`] — [`NodeReport`], the JSON document each OS process
//!   prints so a launcher can merge a distributed run back into one
//!   trace and one [`RunStats`].
//!
//! The crate is std-only: no async runtime, no serialization framework —
//! blocking sockets, reader threads, and hand-framed bytes, in keeping
//! with the workspace's no-external-dependency rule.
//!
//! [`Behavior`]: synctime_runtime::Behavior
//! [`RunStats`]: synctime_obs::RunStats
//! [`QueryService`]: query::QueryService
//! [`QueryClient`]: query::QueryClient
//! [`serve_queries`]: query::serve
//! [`QueryFabric`]: catalog::QueryFabric
//! [`ShardRing`]: catalog::ShardRing
//! [`serve_fabric`]: pool::serve_fabric
//! [`NodeReport`]: report::NodeReport
//! [`FrameReader`]: frame::FrameReader
//! [`FrameScratch`]: frame::FrameScratch
//! [`Pipeline`]: query::Pipeline
//! [`topology_hash`]: frame::topology_hash
//! [`TcpMeshBuilder`]: tcp::TcpMeshBuilder
//! [`TcpMesh`]: tcp::TcpMesh
//! [`IncrementalDecomposition`]: synctime_graph::IncrementalDecomposition

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod error;
pub mod frame;
mod mailbox;
pub mod pool;
pub mod query;
pub mod reconfig;
pub mod report;
pub mod tcp;

pub use catalog::{QueryFabric, ShardRing, VnodeTable, DEFAULT_SHARDS};
pub use error::NetError;
pub use frame::{
    encode_ack_into, encode_offer_into, encode_query_batch_into, encode_resync_into, topology_hash,
    topology_hash_of, AnswerBatchView, BatchEntry, BatchQuery, Frame, FrameReader, FrameScratch,
    QueryBatchView, MAX_BATCH, MAX_FRAME_LEN, MAX_TRACE_NAME, MIN_QUERY_VERSION, PROTOCOL_VERSION,
};
pub use pool::{default_pool_size, serve_fabric};
pub use query::{
    answer_query, answer_query_into, pump_frames, Pipeline, QueryClient, QueryService,
    DEFAULT_TRACE_NAME,
};
pub use reconfig::{
    coordinate_reconfigure, follow_reconfigure, remap_vector, ReconfigAckFrame, ReconfigCommit,
    ReconfigFrame, ReconfigOutcome, ReconfigPrepare, ReconfigSession, ReconfigStatus,
};
pub use report::{NodeReport, NODE_REPORT_SCHEMA};
pub use tcp::{TcpMesh, TcpMeshBuilder};
