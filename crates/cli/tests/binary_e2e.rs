//! End-to-end tests of the built `synctime` binary via std::process.

use std::process::Command;

fn synctime(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_synctime"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_and_errors() {
    let (stdout, _, ok) = synctime(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    let (_, stderr, ok) = synctime(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn decompose_pipeline() {
    let (stdout, _, ok) = synctime(&["decompose", "--topology", "clients:3x12", "--cover"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("timestamp dimension: 3"));
    assert!(stdout.contains("Fidge-Mattern would use 15"));
}

#[test]
fn generate_stamp_query_roundtrip() {
    let dir = std::env::temp_dir().join("synctime-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.json");

    let (json, _, ok) = synctime(&[
        "generate",
        "--topology",
        "star:4",
        "--messages",
        "8",
        "--seed",
        "3",
    ]);
    assert!(ok);
    std::fs::write(&trace, &json).unwrap();

    let t = trace.to_str().unwrap();
    let (stamped, _, ok) = synctime(&["stamp", "--topology", "star:4", "--trace", t]);
    assert!(ok, "{stamped}");
    assert!(stamped.contains("online (d = 1)"), "{stamped}");

    let (verdict, _, ok) = synctime(&[
        "query",
        "--topology",
        "star:4",
        "--trace",
        t,
        "--m1",
        "1",
        "--m2",
        "8",
    ]);
    assert!(ok);
    // Star topologies are totally ordered (Lemma 1).
    assert!(
        verdict.contains("m1 synchronously precedes m2"),
        "{verdict}"
    );

    let (diagram, _, ok) = synctime(&["diagram", "--trace", t]);
    assert!(ok);
    assert!(diagram.contains("m8"));
}

#[test]
fn simulate_binary() {
    let dir = std::env::temp_dir().join("synctime-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let progs = dir.join("p.json");
    std::fs::write(
        &progs,
        r#"{"programs": [[{"send_to": 1}], [{"receive_from": 0}, {"send_to": 2}], ["receive_any"]]}"#,
    )
    .unwrap();
    let (json, _, ok) = synctime(&["simulate", "--programs", progs.to_str().unwrap()]);
    assert!(ok, "{json}");
    assert!(json.contains("\"processes\": 3"));
    assert_eq!(json.matches("message").count(), 2);
}
