//! End-to-end tests of the built `synctime` binary via std::process.

use std::process::Command;

fn synctime(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_synctime"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_and_errors() {
    let (stdout, _, ok) = synctime(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    let (_, stderr, ok) = synctime(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn decompose_pipeline() {
    let (stdout, _, ok) = synctime(&["decompose", "--topology", "clients:3x12", "--cover"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("timestamp dimension: 3"));
    assert!(stdout.contains("Fidge-Mattern would use 15"));
}

#[test]
fn generate_stamp_query_roundtrip() {
    let dir = std::env::temp_dir().join("synctime-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.json");

    let (json, _, ok) = synctime(&[
        "generate",
        "--topology",
        "star:4",
        "--messages",
        "8",
        "--seed",
        "3",
    ]);
    assert!(ok);
    std::fs::write(&trace, &json).unwrap();

    let t = trace.to_str().unwrap();
    let (stamped, _, ok) = synctime(&["stamp", "--topology", "star:4", "--trace", t]);
    assert!(ok, "{stamped}");
    assert!(stamped.contains("online (d = 1)"), "{stamped}");

    let (verdict, _, ok) = synctime(&[
        "query",
        "--topology",
        "star:4",
        "--trace",
        t,
        "--m1",
        "1",
        "--m2",
        "8",
    ]);
    assert!(ok);
    // Star topologies are totally ordered (Lemma 1).
    assert!(
        verdict.contains("m1 synchronously precedes m2"),
        "{verdict}"
    );

    let (diagram, _, ok) = synctime(&["diagram", "--trace", t]);
    assert!(ok);
    assert!(diagram.contains("m8"));
}

/// The tentpole end-to-end: `launch --transport tcp` spawns one OS process
/// per synchronous process, meshes them over loopback TCP, and merges
/// their node reports into a trace byte-identical to the in-process run.
#[test]
fn launch_tcp_matches_run_local() {
    let (local, stderr, ok) = synctime(&["run", "--ring", "5", "--rounds", "2"]);
    assert!(ok, "{stderr}");
    let (tcp, stderr, ok) = synctime(&["launch", "--ring", "5", "--rounds", "2"]);
    assert!(ok, "{stderr}");
    assert_eq!(local, tcp);
    assert!(tcp.contains("\"processes\": 5"), "{tcp}");
}

/// `serve-query` + `query --connect`: start the server on an ephemeral
/// port, scrape the announced address, and ask it the fixture's three
/// known answers over TCP.
#[test]
fn serve_query_binary_roundtrip() {
    use std::io::{BufRead as _, BufReader};

    let dir = std::env::temp_dir().join("synctime-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("q.json");
    std::fs::write(
        &trace,
        r#"{"processes": 4, "events": [
            {"message": [2, 0]}, {"message": [3, 1]}, {"message": [2, 1]}
        ]}"#,
    )
    .unwrap();
    let mut server = Command::new(env!("CARGO_BIN_EXE_synctime"))
        .args([
            "serve-query",
            "--topology",
            "clients:2x2",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut line = String::new();
    BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("announce line")
        .to_string();

    let (verdict, _, ok) = synctime(&["query", "--connect", &addr, "--m1", "1", "--m2", "2"]);
    assert!(ok);
    assert_eq!(verdict, "m1 and m2 are concurrent\n");
    let (verdict, _, ok) = synctime(&["query", "--connect", &addr, "--m1", "2", "--m2", "3"]);
    assert!(ok);
    assert_eq!(verdict, "m1 synchronously precedes m2\n");
    let (chain, _, ok) = synctime(&["query", "--connect", &addr, "--chain", "3"]);
    assert!(ok);
    assert_eq!(chain, "chain of m3: m1 m2 m3\n");

    server.kill().ok();
    server.wait().ok();
}

/// The reconfiguration control plane end-to-end: `launch --churn-plan`
/// spawns one OS process per universe slot, the nodes drive RECONFIGURE
/// rounds over loopback TCP at every boundary, and the final-epoch trace
/// is byte-identical to the same plan run in-process by the sim engine.
#[test]
fn launch_churn_tcp_matches_local() {
    let dir = std::env::temp_dir().join("synctime-bin-e2e-churn");
    std::fs::create_dir_all(&dir).unwrap();
    let plan_path = dir.join("plan.json");
    let (plan, stderr, ok) = synctime(&[
        "churn",
        "--universe",
        "5",
        "--boundaries",
        "2",
        "--mean-rounds",
        "2",
        "--seed",
        "4",
    ]);
    assert!(ok, "{stderr}");
    std::fs::write(&plan_path, &plan).unwrap();
    let p = plan_path.to_str().unwrap();

    let (local, stderr, ok) = synctime(&["launch", "--transport", "local", "--churn-plan", p]);
    assert!(ok, "{stderr}");
    let (tcp, stderr, ok) = synctime(&["launch", "--churn-plan", p]);
    assert!(ok, "{stderr}");
    assert_eq!(local, tcp, "distributed churn diverged from the sim engine");
    assert!(tcp.contains("\"processes\": 5"), "{tcp}");
}

/// Persist a distributed churn run, then serve it: `serve-query
/// --store-dir` recovers the store, materialises the latest epoch, and
/// answers precedence queries over it.
#[test]
fn churn_store_serves_latest_epoch() {
    use std::io::{BufRead as _, BufReader};

    let dir = std::env::temp_dir().join("synctime-bin-e2e-churn-store");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let plan_path = dir.join("plan.json");
    std::fs::write(
        &plan_path,
        r#"{
            "universe": 4,
            "initial": [0, 1, 2, 3],
            "events": [{"after_rounds": 2, "kind": {"leave": {"process": 1}}}],
            "tail_rounds": 3
        }"#,
    )
    .unwrap();
    let root = dir.join("store");
    let (_, stderr, ok) = synctime(&[
        "launch",
        "--churn-plan",
        plan_path.to_str().unwrap(),
        "--persist",
        root.to_str().unwrap(),
        "--trace-name",
        "churn",
    ]);
    assert!(ok, "{stderr}");

    let mut server = Command::new(env!("CARGO_BIN_EXE_synctime"))
        .args(["serve-query", "--store-dir", root.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut reader = BufReader::new(server.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("announce line")
        .to_string();

    // The final epoch is a 3-ring for 3 rounds: 9 messages, and the ring
    // token chain makes m1 precede m9.
    let (verdict, _, ok) = synctime(&[
        "query",
        "--connect",
        &addr,
        "--trace",
        "churn",
        "--m1",
        "1",
        "--m2",
        "9",
    ]);
    assert!(ok, "{verdict}");
    assert_eq!(verdict, "m1 synchronously precedes m2\n");

    server.kill().ok();
    server.wait().ok();
}

#[test]
fn simulate_binary() {
    let dir = std::env::temp_dir().join("synctime-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let progs = dir.join("p.json");
    std::fs::write(
        &progs,
        r#"{"programs": [[{"send_to": 1}], [{"receive_from": 0}, {"send_to": 2}], ["receive_any"]]}"#,
    )
    .unwrap();
    let (json, _, ok) = synctime(&["simulate", "--programs", progs.to_str().unwrap()]);
    assert!(ok, "{json}");
    assert!(json.contains("\"processes\": 3"));
    assert_eq!(json.matches("message").count(), 2);
}
