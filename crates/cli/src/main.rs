//! `synctime` — timestamp synchronous computations from the command line.
//!
//! ```text
//! synctime decompose --topology star:8
//! synctime decompose --topology topo.json --optimal
//! synctime stamp --topology clients:3x20 --trace trace.json [--algorithm online|offline|fm|lamport]
//! synctime diagram --trace trace.json
//! synctime query --topology topo.json --trace trace.json --m1 2 --m2 7
//! synctime run --ring 4 --rounds 5 --stats
//! synctime run --programs programs.json [--watchdog-ms 2000]
//! ```
//!
//! `run` executes programs on real OS threads with rendezvous channels (the
//! Figure 5 protocol); `--stats` prints a JSON observability summary and a
//! watchdog turns stalls into a diagnosed deadlock error.
//!
//! Topology specs: `star:L`, `triangle`, `complete:N`, `clients:SxC`,
//! `tree:BxD`, `cycle:N`, `path:N`, `grid:RxC`, or a JSON file
//! `{"nodes": N, "edges": [[u, v], ...]}`.
//!
//! Trace files: `{"processes": N, "events": [{"message": [s, r]},
//! {"internal": p}, ...]}` in rendezvous order.

use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
