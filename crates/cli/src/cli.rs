//! Argument parsing and command dispatch (std-only, no CLI framework).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Deserialize;
use synctime_core::clock::{ClockBackend, FixedArray16, TreeClock};
use synctime_core::online::{stamp_computation_as, OnlineStamper};
use synctime_core::{fm, lamport, offline, MessageTimestamps};
use synctime_graph::{cover, decompose, topology, Graph};
use synctime_trace::{diagram, MessageId, Oracle, SyncComputation};

/// Runs a parsed command line, returning what to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(usage());
    };
    let opts = parse_flags(rest)?;
    match command.as_str() {
        "decompose" => cmd_decompose(&opts),
        "stamp" => cmd_stamp(&opts),
        "diagram" => cmd_diagram(&opts),
        "query" => cmd_query(&opts),
        "generate" => cmd_generate(&opts),
        "simulate" => cmd_simulate(&opts),
        "run" => cmd_run(&opts),
        "serve-node" => cmd_serve_node(&opts),
        "launch" => cmd_launch(&opts),
        "serve-query" => cmd_serve_query(&opts),
        "faultplan" => cmd_faultplan(&opts),
        "churn" => cmd_churn(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command `{other}`; try `synctime help`")),
    }
}

fn usage() -> String {
    "\
synctime — timestamp synchronous computations (Garg & Skawratananond, ICDCS 2002)

USAGE:
  synctime decompose --topology <SPEC> [--optimal] [--cover]
  synctime stamp     --topology <SPEC> --trace <FILE> [--algorithm <ALG>]
                     [--engine dense|sparse] [--clock dense|tree|fixed|auto]
  synctime diagram   --trace <FILE>
  synctime query     (--topology <SPEC> --trace <FILE> | --connect <ADDR>)
                     (--m1 <K> --m2 <K> | --chain <K> | --batch <K:K,K:K,..>)
                     [--trace <NAME>] [--window <W>]
                     (with --connect: trace name, not file)
  synctime generate  --topology <SPEC> --messages <M> [--internals <I>] [--seed <S>]
  synctime simulate  --programs <FILE> [--topology <SPEC>] [--seed <S>]
  synctime run       (--programs <FILE> | --ring <N> | --gossip <N> [--rounds <R>])
                     [--topology <SPEC>] [--stats] [--watchdog-ms <MS>]
                     [--matcher parking|polling] [--fault-plan <FILE>]
                     [--rendezvous-timeout <MS>] [--rendezvous-retries <K>]
                     [--clock dense|tree|fixed|auto] [--seed <S>]
                     [--persist <DIR> [--trace-name <NAME>]]
  synctime faultplan --processes <N> --max-op <M> [--crashes <K>]
                     [--desyncs <D>] [--seed <S>]
  synctime churn     --universe <N> --boundaries <B> [--mean-rounds <R>]
                     [--seed <S>]
  synctime launch    (--programs <FILE> | --ring <N> | --gossip <N> [--rounds <R>]
                      | --churn-plan <FILE>)
                     [--transport tcp|local] [--stats] [--seed <S>]
                     [--topology <SPEC>] [--establish-timeout-ms <MS>]
                     [--persist <DIR> [--trace-name <NAME>]]
  synctime serve-node --process <P> (--programs <FILE> | --ring <N> | --gossip <N>
                      | --churn-plan <FILE>)
                     [--peers <A0,A1,..>] [--topology <SPEC>] [--rounds <R>]
                     [--seed <S>] [--establish-timeout-ms <MS>]
  synctime serve-query (--topology <SPEC> --trace <FILE>
                       | --traces-dir <DIR> [--topology <SPEC>] [--shards <S>]
                       | --store-dir <DIR> [--poll-ms <MS>] [--shards <S>])
                     [--listen <ADDR>] [--pool <W>]

TOPOLOGY SPECS:
  star:L  triangle  complete:N  clients:SxC  tree:BxD  cycle:N  path:N
  grid:RxC  fig2b  fig4  or a JSON file {\"nodes\": N, \"edges\": [[u,v],..]}

TRACE FILE:
  {\"processes\": N, \"events\": [{\"message\": [s, r]}, {\"internal\": p}, ...]}

PROGRAMS FILE:
  {\"programs\": [[{\"send_to\": 1}, {\"receive_from\": 2}, \"internal\",
                 \"receive_any\"], ...]}  (one op list per process)

ALGORITHMS: online (default), offline, fm, lamport
  `offline` picks its engine with --engine: `dense` (default; minimum chain
  cover, width-dimensional vectors, O(M^2) memory) or `sparse` (per-sender
  chains + chain-merge reachability, scales to millions of messages).
  `--clock` selects the clock *representation* for online and offline
  stamping: `dense` (default, a plain vector), `tree` (segment-tree clock,
  sublinear delta merges), `fixed` (16-lane fixed array, small dimensions
  only), or `auto` (fixed when the dimension fits, else dense). Every
  backend computes byte-identical stamps — only merge cost differs.

RUN:
  Executes programs on real OS threads (one per process) with the Figure 5
  rendezvous protocol; a watchdog aborts stalled runs with a wait-for-graph
  diagnosis. `--ring N` is a built-in token-ring workload over cycle:N.
  `--stats` prints the run's observability summary as JSON (message counts,
  p50/p99 ack and rendezvous-wakeup latency, wire bytes, max vector
  component) instead of the reconstructed trace. `--matcher` selects how
  blocked endpoints wait: `parking` (default; park on the channel slot's
  condvar, zero idle CPU) or `polling` (re-poll the slot, the benchmark
  baseline). `--gossip N` runs a seeded random pairwise-gossip workload
  over complete:N. `--fault-plan FILE` injects a deterministic fault
  schedule (see `faultplan`); the run then tolerates per-process failures
  and prints {\"stats\": .., \"outcomes\": [null | \"error\", ..]} instead
  of a trace — the process exits 0 because typed failures are the expected
  result. `--rendezvous-timeout MS` bounds every blocking rendezvous, with
  `--rendezvous-retries K` backoff re-arms before giving up. `--clock`
  selects the per-process clock backend (see ALGORITHMS); the stamped
  trace is identical under every backend, and `launch`/`serve-node`
  forward the flag to distributed nodes.

FAULTPLAN:
  Generates a random fault schedule as JSON for `run --fault-plan`:
  `--crashes K` distinct processes crash and `--desyncs D` delta-stream
  desyncs land at operation indices drawn from 0..M. Same seed, same plan.

CHURN:
  Generates a random reconfiguration script as JSON for `launch
  --churn-plan`: `--boundaries B` join/leave/swap events over a fixed
  `--universe N` process pool, with exponential gaps of mean
  `--mean-rounds` token laps between events (Poisson churn arrivals).
  Same seed, same plan. `launch --churn-plan plan.json` then runs the
  multi-epoch workload: every epoch is a token ring over the plan's
  active set, and every boundary ships a RECONFIGURE prepare/commit round
  through the coordinator (process 0) — in-flight traffic quiesces at the
  epoch boundary, every node rebases its clock through the group remap,
  and the committed max-merged baseline keeps post-change stamps
  order-isomorphic with an uninterrupted run over the new topology. The
  command prints the FINAL epoch's reconstructed trace (byte-identical to
  an uninterrupted reference run over the post-churn topology); with
  `--persist DIR` the boundaries are stored as reconfiguration records so
  `serve-query --store-dir` serves the latest epoch across restarts.

DISTRIBUTED:
  `launch --transport tcp` runs the same workload as `run`, but as one OS
  process per synchronous process, meshed over loopback TCP: it spawns
  `serve-node` children on ephemeral ports, hands each the full peer list,
  and merges their node reports back into one trace (or one `--stats`
  summary). `serve-node --peers a0,a1,..` runs a single node standalone —
  one terminal per process, every terminal given the same address list.
  `serve-query` stamps a trace and serves precedence queries over the same
  frame protocol; `query --connect HOST:PORT` asks it `--m1/--m2` (which
  precedes, or concurrent) or `--chain K` (every message comparable with
  message K). Message numbers are 1-based, as in the local `query`.

QUERY FABRIC:
  `serve-query --traces-dir DIR` loads every `DIR/*.json` trace into a
  sharded catalog (trace id = file stem, consistent-hashed over `--shards`
  in-process shards, default 4) and serves them from a fixed pool of
  `--pool` workers (default: available parallelism, min 4). With
  `--topology` the traces are online-stamped; without it the sparse
  offline engine stamps them, no topology needed. `query --connect` then
  targets one trace with `--trace NAME` and asks many questions per round
  trip with `--batch \"1:2,3:4\"` (pairs of 1-based message numbers; each
  line answers whether the first synchronously precedes the second).
  `--window W` pipelines the batch over protocol v3: up to W frames stay
  in flight on the one connection, so the wire never idles for a round
  trip. Answers (and output) are identical to the unpipelined batch.
"
    .to_string()
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}` (flags start with --)"));
        };
        if name.is_empty() {
            return Err("empty flag `--`".to_string());
        }
        // Boolean flags take no value.
        if matches!(name, "optimal" | "cover" | "json" | "stats" | "epochs") {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} expects a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn require<'a>(opts: &'a BTreeMap<String, String>, name: &str) -> Result<&'a str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

// ---------------------------------------------------------------- topology

/// Parses a topology spec or JSON file.
pub fn parse_topology(spec: &str) -> Result<Graph, String> {
    if let Some((kind, params)) = spec.split_once(':') {
        return build_spec(kind, params);
    }
    match spec {
        "triangle" => return Ok(topology::triangle()),
        "fig2b" => return Ok(topology::figure2b()),
        "fig4" => return Ok(topology::figure4_tree()),
        _ => {}
    }
    // Otherwise a JSON file.
    let text =
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read topology `{spec}`: {e}"))?;
    parse_topology_json(&text)
}

fn build_spec(kind: &str, params: &str) -> Result<Graph, String> {
    let nums = || -> Result<Vec<usize>, String> {
        params
            .split('x')
            .map(|p| {
                p.parse::<usize>()
                    .map_err(|_| format!("bad number `{p}` in spec"))
            })
            .collect()
    };
    let one = || -> Result<usize, String> {
        let v = nums()?;
        (v.len() == 1)
            .then(|| v[0])
            .ok_or_else(|| format!("spec `{kind}` takes one number"))
    };
    let two = || -> Result<(usize, usize), String> {
        let v = nums()?;
        (v.len() == 2)
            .then(|| (v[0], v[1]))
            .ok_or_else(|| format!("spec `{kind}` takes AxB"))
    };
    match kind {
        "star" => Ok(topology::star(one()?)),
        "complete" => Ok(topology::complete(one()?)),
        "cycle" => Ok(topology::cycle(one()?)),
        "path" => Ok(topology::path(one()?)),
        "clients" => {
            let (s, c) = two()?;
            Ok(topology::client_server(s, c))
        }
        "tree" => {
            let (b, d) = two()?;
            Ok(topology::balanced_tree(b, d))
        }
        "grid" => {
            let (r, c) = two()?;
            Ok(topology::grid(r, c))
        }
        other => Err(format!("unknown topology kind `{other}`")),
    }
}

#[derive(Deserialize)]
struct TopologyFile {
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

fn parse_topology_json(text: &str) -> Result<Graph, String> {
    let file: TopologyFile =
        serde_json::from_str(text).map_err(|e| format!("bad topology JSON: {e}"))?;
    Graph::from_edges(file.nodes, file.edges).map_err(|e| format!("bad topology: {e}"))
}

// ------------------------------------------------------------------- trace

/// Parses a trace file against an optional topology.
pub fn parse_trace(text: &str, topo: Option<&Graph>) -> Result<SyncComputation, String> {
    synctime_trace::json::from_json_str(text, topo).map_err(|e| e.to_string())
}

fn load_trace(
    opts: &BTreeMap<String, String>,
    topo: Option<&Graph>,
) -> Result<SyncComputation, String> {
    let path = require(opts, "trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    parse_trace(&text, topo)
}

// ---------------------------------------------------------------- commands

fn cmd_decompose(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let topo = parse_topology(require(opts, "topology")?)?;
    let mut out = String::new();
    writeln!(
        out,
        "topology: {} nodes, {} edges",
        topo.node_count(),
        topo.edge_count()
    )
    .unwrap();
    let best = decompose::best_known(&topo);
    writeln!(out, "best-known decomposition ({} groups):", best.len()).unwrap();
    for (i, g) in best.groups().iter().enumerate() {
        writeln!(out, "  E{} = {g}", i + 1).unwrap();
    }
    let greedy = decompose::greedy(&topo);
    writeln!(out, "greedy (Figure 7): {} groups", greedy.len()).unwrap();
    if opts.contains_key("cover") {
        let c = if topo.node_count() <= 24 || cover::bipartition(&topo).is_some() {
            cover::exact_min(&topo)
        } else {
            cover::greedy_max_degree(&topo)
        };
        writeln!(out, "vertex cover ({} nodes): {c:?}", c.len()).unwrap();
    }
    if opts.contains_key("optimal") {
        if topo.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT {
            writeln!(out, "optimal: {} groups", decompose::alpha(&topo)).unwrap();
        } else {
            writeln!(
                out,
                "optimal: skipped (graph has {} edges > limit {})",
                topo.edge_count(),
                decompose::OPTIMAL_EDGE_LIMIT
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "timestamp dimension: {} (Fidge-Mattern would use {})",
        best.len(),
        topo.node_count()
    )
    .unwrap();
    Ok(out)
}

/// Parses `--clock` into a backend selection (`dense` when absent).
fn parse_clock(opts: &BTreeMap<String, String>) -> Result<ClockBackend, String> {
    opts.get("clock")
        .map_or(Ok(ClockBackend::Dense), |s| s.parse::<ClockBackend>())
}

fn stamp_with(
    algorithm: &str,
    engine: &str,
    clock: ClockBackend,
    comp: &SyncComputation,
    topo: &Graph,
) -> Result<(String, Option<MessageTimestamps>), String> {
    if engine != "dense" && algorithm != "offline" {
        return Err(format!(
            "--engine {engine} only applies to --algorithm offline"
        ));
    }
    if clock != ClockBackend::Dense && !matches!(algorithm, "online" | "offline") {
        return Err(format!(
            "--clock {clock} only applies to --algorithm online or offline"
        ));
    }
    // The backend changes the cost of each merge, never a stamp: the
    // selections below all produce byte-identical vectors, which `cmd_stamp`
    // cross-checks against the poset oracle before printing.
    match algorithm {
        "online" => {
            let dec = decompose::best_known(topo);
            let resolved = clock.resolve(dec.len()).map_err(|e| e.to_string())?;
            let stamps = match resolved {
                ClockBackend::Tree => stamp_computation_as::<TreeClock>(&dec, comp),
                ClockBackend::Fixed => stamp_computation_as::<FixedArray16>(&dec, comp),
                _ => OnlineStamper::new(&dec).stamp_computation(comp),
            }
            .map_err(|e| e.to_string())?;
            let label = if resolved == ClockBackend::Dense {
                format!("online (d = {})", stamps.dim())
            } else {
                format!("online/{resolved} (d = {})", stamps.dim())
            };
            Ok((label, Some(stamps)))
        }
        "offline" => {
            let via_clock = |stamps: Result<MessageTimestamps, synctime_core::CoreError>| {
                stamps.map_err(|e| e.to_string())
            };
            match engine {
                "dense" => {
                    let stamps = match clock {
                        ClockBackend::Tree => {
                            via_clock(offline::stamp_computation_as::<TreeClock>(comp))?
                        }
                        ClockBackend::Fixed => {
                            via_clock(offline::stamp_computation_as::<FixedArray16>(comp))?
                        }
                        _ => offline::stamp_computation(comp),
                    };
                    Ok((format!("offline (width = {})", stamps.dim()), Some(stamps)))
                }
                "sparse" => {
                    let stamps = match clock {
                        ClockBackend::Tree => {
                            via_clock(offline::stamp_computation_sparse_as::<TreeClock>(comp))?
                        }
                        ClockBackend::Fixed => {
                            via_clock(offline::stamp_computation_sparse_as::<FixedArray16>(comp))?
                        }
                        _ => offline::stamp_computation_sparse(comp),
                    };
                    Ok((
                        format!("offline/sparse (chains = {})", stamps.dim()),
                        Some(stamps),
                    ))
                }
                other => Err(format!("unknown engine `{other}` (dense|sparse)")),
            }
        }
        "fm" => {
            let stamps = fm::stamp_messages(comp);
            Ok((
                format!("fidge-mattern (N = {})", stamps.dim()),
                Some(stamps),
            ))
        }
        "lamport" => Ok(("lamport (scalar)".to_string(), None)),
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

fn cmd_stamp(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let topo = parse_topology(require(opts, "topology")?)?;
    let comp = load_trace(opts, Some(&topo))?;
    let algorithm = opts.get("algorithm").map_or("online", String::as_str);
    let engine = opts.get("engine").map_or("dense", String::as_str);
    let clock = parse_clock(opts)?;
    let (label, stamps) = stamp_with(algorithm, engine, clock, &comp, &topo)?;
    let mut out = String::new();
    writeln!(out, "algorithm: {label}").unwrap();
    match stamps {
        Some(stamps) => {
            // Cross-check against ground truth before printing.
            if !stamps.encodes(&Oracle::new(&comp)) {
                return Err("internal error: stamps do not encode the poset".to_string());
            }
            for m in comp.messages() {
                writeln!(
                    out,
                    "  m{}: P{} -> P{}  v = {}",
                    m.id.index() + 1,
                    m.sender + 1,
                    m.receiver + 1,
                    stamps.vector(m.id)
                )
                .unwrap();
            }
        }
        None => {
            for (m, t) in comp.messages().iter().zip(lamport::stamp_messages(&comp)) {
                writeln!(
                    out,
                    "  m{}: P{} -> P{}  L = {}",
                    m.id.index() + 1,
                    m.sender + 1,
                    m.receiver + 1,
                    t
                )
                .unwrap();
            }
        }
    }
    Ok(out)
}

fn cmd_diagram(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let topo = opts
        .get("topology")
        .map(|s| parse_topology(s))
        .transpose()?;
    let comp = load_trace(opts, topo.as_ref())?;
    Ok(diagram::render(&comp))
}

fn cmd_query(opts: &BTreeMap<String, String>) -> Result<String, String> {
    if opts.contains_key("connect") {
        return cmd_query_remote(opts);
    }
    let topo = parse_topology(require(opts, "topology")?)?;
    let comp = load_trace(opts, Some(&topo))?;
    let parse_m = |name: &str| -> Result<MessageId, String> {
        let k: usize = require(opts, name)?
            .parse()
            .map_err(|_| format!("--{name} expects a message number (1-based)"))?;
        if k == 0 || k > comp.message_count() {
            return Err(format!(
                "--{name} out of range (trace has {} messages)",
                comp.message_count()
            ));
        }
        Ok(MessageId(k - 1))
    };
    let dec = decompose::best_known(&topo);
    let stamps = OnlineStamper::new(&dec)
        .stamp_computation(&comp)
        .map_err(|e| e.to_string())?;
    if opts.contains_key("chain") {
        let m = parse_m("chain")?;
        let chain: Vec<String> = (0..comp.message_count())
            .map(MessageId)
            .filter(|&o| o == m || stamps.precedes(o, m) || stamps.precedes(m, o))
            .map(|o| format!("m{}", o.0 + 1))
            .collect();
        return Ok(format!("chain of m{}: {}\n", m.0 + 1, chain.join(" ")));
    }
    let (m1, m2) = (parse_m("m1")?, parse_m("m2")?);
    let verdict = if stamps.precedes(m1, m2) {
        "m1 synchronously precedes m2"
    } else if stamps.precedes(m2, m1) {
        "m2 synchronously precedes m1"
    } else {
        "m1 and m2 are concurrent"
    };
    Ok(format!(
        "v(m1) = {}\nv(m2) = {}\n{verdict}\n",
        stamps.vector(m1),
        stamps.vector(m2)
    ))
}

/// `query --connect HOST:PORT`: ask a running `serve-query` instead of
/// stamping locally. Message numbers stay 1-based on the command line; the
/// wire protocol is 0-based. `--trace NAME` targets one trace of a
/// multi-trace catalog (routed over v2 batch frames); `--batch` asks many
/// precedence questions in one round trip, and `--window W` pipelines
/// them over correlation-tagged v3 frames with W in flight.
fn cmd_query_remote(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let addr = require(opts, "connect")?;
    let mut client = synctime_net::QueryClient::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let parse_1based = |name: &str, text: &str| -> Result<u32, String> {
        let k: u32 = text
            .parse()
            .map_err(|_| format!("--{name} expects a message number (1-based)"))?;
        if k == 0 {
            return Err(format!("--{name} expects a 1-based message number"));
        }
        Ok(k - 1)
    };
    let parse_m = |name: &str| -> Result<u32, String> { parse_1based(name, require(opts, name)?) };
    // Empty trace id = the server's default trace (v1-compatible).
    let trace = opts.get("trace").map(String::as_str).unwrap_or("");
    if let Some(spec) = opts.get("batch") {
        let pairs: Vec<(u32, u32)> = spec
            .split(',')
            .map(|pair| {
                let (a, b) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("--batch expects `m1:m2,m1:m2,..`, got `{pair}`"))?;
                Ok((parse_1based("batch", a)?, parse_1based("batch", b)?))
            })
            .collect::<Result<_, String>>()?;
        let verdicts = match opts.get("window") {
            Some(w) => {
                let window: usize = w
                    .parse()
                    .ok()
                    .filter(|&w| w > 0)
                    .ok_or_else(|| "--window expects a positive number".to_string())?;
                // One pair per v3 frame, `window` frames in flight: the
                // answers are byte-identical to the v2 batch, only the
                // wire schedule changes.
                client
                    .precedes_many_pipelined(trace, &pairs, 1, window)
                    .map_err(|e| e.to_string())?
            }
            None => client
                .precedes_many(trace, &pairs)
                .map_err(|e| e.to_string())?,
        };
        let mut out = String::new();
        for (&(a, b), verdict) in pairs.iter().zip(verdicts) {
            writeln!(
                out,
                "m{} -> m{}: {}",
                a + 1,
                b + 1,
                if verdict { "yes" } else { "no" }
            )
            .unwrap();
        }
        return Ok(out);
    }
    if opts.contains_key("chain") {
        let m = parse_m("chain")?;
        let ids = if trace.is_empty() {
            client.chain_of(m)
        } else {
            client.chain_of_on(trace, m)
        };
        let chain: Vec<String> = ids
            .map_err(|e| e.to_string())?
            .iter()
            .map(|id| format!("m{}", id + 1))
            .collect();
        return Ok(format!("chain of m{}: {}\n", m + 1, chain.join(" ")));
    }
    let (m1, m2) = (parse_m("m1")?, parse_m("m2")?);
    let (forward, backward) = if trace.is_empty() {
        (
            client.precedes(m1, m2).map_err(|e| e.to_string())?,
            client.precedes(m2, m1).map_err(|e| e.to_string())?,
        )
    } else {
        // One round trip for both directions over a v2 batch.
        let verdicts = client
            .precedes_many(trace, &[(m1, m2), (m2, m1)])
            .map_err(|e| e.to_string())?;
        (verdicts[0], verdicts[1])
    };
    let verdict = if forward {
        "m1 synchronously precedes m2"
    } else if backward {
        "m2 synchronously precedes m1"
    } else {
        "m1 and m2 are concurrent"
    };
    Ok(format!("{verdict}\n"))
}

// ----------------------------------------------------- generate / simulate

fn cmd_generate(opts: &BTreeMap<String, String>) -> Result<String, String> {
    use rand::SeedableRng;
    let topo = parse_topology(require(opts, "topology")?)?;
    let messages: usize = require(opts, "messages")?
        .parse()
        .map_err(|_| "--messages expects a number".to_string())?;
    let internals: usize = opts
        .get("internals")
        .map(|s| {
            s.parse()
                .map_err(|_| "--internals expects a number".to_string())
        })
        .transpose()?
        .unwrap_or(0);
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed expects a number".to_string()))
        .transpose()?
        .unwrap_or(0);
    if topo.edge_count() == 0 && messages > 0 {
        return Err("topology has no channels to send messages over".to_string());
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let comp = synctime_sim::workload::RandomWorkload::messages(messages)
        .with_internal_events(internals)
        .generate(&topo, &mut rng);
    Ok(synctime_trace::json::to_json_string(&comp))
}

#[derive(Deserialize)]
struct ProgramsFile {
    programs: Vec<Vec<ProgramOp>>,
}

#[derive(Deserialize)]
enum ProgramOp {
    #[serde(rename = "send_to")]
    SendTo(usize),
    #[serde(rename = "receive_from")]
    ReceiveFrom(usize),
    #[serde(rename = "internal")]
    Internal,
    #[serde(rename = "receive_any")]
    ReceiveAny,
}

fn cmd_simulate(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let path = require(opts, "programs")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read programs `{path}`: {e}"))?;
    let file: ProgramsFile =
        serde_json::from_str(&text).map_err(|e| format!("bad programs JSON: {e}"))?;
    let programs: Vec<synctime_sim::Program> = file
        .programs
        .iter()
        .map(|ops| {
            let mut p = synctime_sim::Program::new();
            for op in ops {
                p = match op {
                    ProgramOp::SendTo(q) => p.send_to(*q),
                    ProgramOp::ReceiveFrom(q) => p.receive_from(*q),
                    ProgramOp::Internal => p.internal(),
                    ProgramOp::ReceiveAny => p.receive_any(),
                };
            }
            p
        })
        .collect();
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed expects a number".to_string()))
        .transpose()?
        .unwrap_or(0);
    let mut simulator = synctime_sim::Simulator::new().with_seed(seed);
    if let Some(spec) = opts.get("topology") {
        simulator = simulator.with_topology(&parse_topology(spec)?);
    }
    let comp = simulator.run(&programs).map_err(|e| e.to_string())?;
    Ok(synctime_trace::json::to_json_string(&comp))
}

// --------------------------------------------------------------------- run

/// Loads program op lists for `run`: from a `--programs` file, or the
/// built-in `--ring N` token-ring workload (`--rounds R` trips around a
/// `cycle:N` topology).
fn run_programs(opts: &BTreeMap<String, String>) -> Result<Vec<Vec<ProgramOp>>, String> {
    if let Some(path) = opts.get("programs") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read programs `{path}`: {e}"))?;
        let file: ProgramsFile =
            serde_json::from_str(&text).map_err(|e| format!("bad programs JSON: {e}"))?;
        return Ok(file.programs);
    }
    if let Some(n_str) = opts.get("ring") {
        let n: usize = n_str
            .parse()
            .map_err(|_| "--ring expects a process count".to_string())?;
        if n < 3 {
            return Err("--ring needs at least 3 processes (cycle topology)".to_string());
        }
        let rounds: usize = opts
            .get("rounds")
            .map(|s| {
                s.parse()
                    .map_err(|_| "--rounds expects a number".to_string())
            })
            .transpose()?
            .unwrap_or(1);
        // Process 0 injects the token each round; everyone else forwards it.
        let programs = (0..n)
            .map(|p| {
                let mut ops = Vec::with_capacity(2 * rounds);
                for _ in 0..rounds {
                    if p == 0 {
                        ops.push(ProgramOp::SendTo(1));
                        ops.push(ProgramOp::ReceiveFrom(n - 1));
                    } else {
                        ops.push(ProgramOp::ReceiveFrom(p - 1));
                        ops.push(ProgramOp::SendTo((p + 1) % n));
                    }
                }
                ops
            })
            .collect();
        return Ok(programs);
    }
    if let Some(n_str) = opts.get("gossip") {
        use rand::SeedableRng;
        let n: usize = n_str
            .parse()
            .map_err(|_| "--gossip expects a process count".to_string())?;
        if n < 2 {
            return Err("--gossip needs at least 2 processes".to_string());
        }
        let rounds: usize = opts
            .get("rounds")
            .map(|s| {
                s.parse()
                    .map_err(|_| "--rounds expects a number".to_string())
            })
            .transpose()?
            .unwrap_or(1);
        let seed: u64 = opts
            .get("seed")
            .map(|s| s.parse().map_err(|_| "--seed expects a number".to_string()))
            .transpose()?
            .unwrap_or(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scenario = synctime_sim::scenarios::gossip(n, rounds.max(1), &mut rng);
        // Gossip computations are confluent, so their extracted scripts
        // replay deadlock-free on the threaded runtime.
        let programs = synctime_sim::programs::from_computation(&scenario.computation)
            .iter()
            .map(|prog| {
                prog.ops()
                    .iter()
                    .map(|op| match op {
                        synctime_sim::Op::SendTo(q) => ProgramOp::SendTo(*q),
                        synctime_sim::Op::ReceiveFrom(q) => ProgramOp::ReceiveFrom(*q),
                        synctime_sim::Op::Internal => ProgramOp::Internal,
                        synctime_sim::Op::ReceiveAny => ProgramOp::ReceiveAny,
                    })
                    .collect()
            })
            .collect();
        return Ok(programs);
    }
    Err("run needs --programs <FILE>, --ring <N>, or --gossip <N>".to_string())
}

/// Rejects op lists the threaded runtime cannot execute.
fn reject_receive_any(programs: &[Vec<ProgramOp>]) -> Result<(), String> {
    if programs
        .iter()
        .flatten()
        .any(|op| matches!(op, ProgramOp::ReceiveAny))
    {
        return Err(
            "receive_any is only supported by `simulate` (the threaded runtime needs a \
             concrete peer per receive)"
                .to_string(),
        );
    }
    Ok(())
}

/// The topology a set of programs runs over: `--topology SPEC`, or
/// inferred from the channels the programs use.
fn run_topology(
    programs: &[Vec<ProgramOp>],
    opts: &BTreeMap<String, String>,
) -> Result<Graph, String> {
    let n = programs.len();
    let topo = match opts.get("topology") {
        Some(spec) => parse_topology(spec)?,
        None => {
            // Infer the topology from the channels the programs use.
            let mut edges = std::collections::BTreeSet::new();
            for (p, ops) in programs.iter().enumerate() {
                for op in ops {
                    match op {
                        ProgramOp::SendTo(q) | ProgramOp::ReceiveFrom(q) => {
                            edges.insert((p.min(*q), p.max(*q)));
                        }
                        _ => {}
                    }
                }
            }
            Graph::from_edges(n, edges).map_err(|e| format!("bad inferred topology: {e}"))?
        }
    };
    if topo.node_count() != n {
        return Err(format!(
            "topology has {} nodes but {} programs were given",
            topo.node_count(),
            n
        ));
    }
    Ok(topo)
}

/// Applies the runtime tuning flags shared by `run` and `serve-node`.
fn configure_runtime(
    mut rt: synctime_runtime::Runtime,
    opts: &BTreeMap<String, String>,
) -> Result<synctime_runtime::Runtime, String> {
    if let Some(ms) = opts.get("watchdog-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "--watchdog-ms expects milliseconds".to_string())?;
        rt = rt.with_watchdog(std::time::Duration::from_millis(ms));
    }
    if let Some(matcher) = opts.get("matcher") {
        rt = rt.with_matcher(match matcher.as_str() {
            "parking" => synctime_runtime::Matcher::Parking,
            "polling" => synctime_runtime::Matcher::Polling,
            other => {
                return Err(format!(
                    "--matcher expects `parking` or `polling`, got `{other}`"
                ))
            }
        });
    }
    if let Some(ms) = opts.get("rendezvous-timeout") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "--rendezvous-timeout expects milliseconds".to_string())?;
        rt = rt.with_rendezvous_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(k) = opts.get("rendezvous-retries") {
        let k: u32 = k
            .parse()
            .map_err(|_| "--rendezvous-retries expects a count".to_string())?;
        rt = rt.with_rendezvous_retries(k);
    }
    if opts.contains_key("clock") {
        let backend = parse_clock(opts)?;
        rt = rt.with_clock(backend).map_err(|e| e.to_string())?;
    }
    Ok(rt)
}

/// One process's ops as a runtime behavior. The payload convention (the op
/// index) matches between `run` and `serve-node`, so local and distributed
/// executions of the same programs are comparable rendezvous-for-rendezvous.
fn op_behavior(ops: Vec<ProgramOp>) -> synctime_runtime::Behavior {
    Box::new(move |ctx| {
        for (i, op) in ops.iter().enumerate() {
            match op {
                ProgramOp::SendTo(q) => {
                    ctx.send(*q, i as u64)?;
                }
                ProgramOp::ReceiveFrom(q) => {
                    ctx.receive_from(*q)?;
                }
                ProgramOp::Internal => ctx.internal(),
                ProgramOp::ReceiveAny => unreachable!("rejected before running"),
            }
        }
        Ok(())
    })
}

/// The trace id a persisted run is stored under when `--trace-name` is
/// not given.
const DEFAULT_PERSIST_TRACE: &str = "run";

/// Opens the durable-ingestion writer when `--persist DIR` was given:
/// returns the sink to install on the runtime and the handle that seals
/// the store once every sender is gone.
fn persist_writer(
    opts: &BTreeMap<String, String>,
    process_count: usize,
) -> Result<
    Option<(
        std::sync::mpsc::Sender<Vec<synctime_store::PersistEvent>>,
        synctime_store::StoreWriter,
    )>,
    String,
> {
    let Some(root) = opts.get("persist") else {
        return Ok(None);
    };
    let trace = opts
        .get("trace-name")
        .map(String::as_str)
        .unwrap_or(DEFAULT_PERSIST_TRACE);
    let (tx, writer) =
        synctime_store::spawn_writer(std::path::Path::new(root), trace, process_count)
            .map_err(|e| format!("cannot open the stamp store under `{root}`: {e}"))?;
    Ok(Some((tx, writer)))
}

/// Joins the store writer after a persisted run. Every sender must be
/// dropped first (the runtime holds one until it is dropped), or the
/// join blocks forever. Reports where the sealed trace landed on stderr
/// so stdout stays reserved for the command's JSON output.
fn seal_store(writer: Option<synctime_store::StoreWriter>) -> Result<(), String> {
    let Some(writer) = writer else {
        return Ok(());
    };
    let store = writer
        .finish()
        .map_err(|e| format!("stamp store writer failed: {e}"))?;
    eprintln!("persisted trace to {}", store.dir().display());
    Ok(())
}

fn cmd_run(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let programs = run_programs(opts)?;
    reject_receive_any(&programs)?;
    let topo = run_topology(&programs, opts)?;
    let dec = decompose::best_known(&topo);
    let mut rt = configure_runtime(synctime_runtime::Runtime::new(&topo, &dec), opts)?;
    let mut store_writer = None;
    if let Some((tx, writer)) = persist_writer(opts, topo.node_count())? {
        rt = rt.with_log_sink(tx);
        store_writer = Some(writer);
    }
    let fault_plan = opts
        .get("fault-plan")
        .map(|path| -> Result<synctime_sim::FaultPlan, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fault plan `{path}`: {e}"))?;
            synctime_sim::FaultPlan::from_json(&text)
                .map_err(|e| format!("bad fault plan JSON: {e}"))
        })
        .transpose()?;
    let behaviors: Vec<synctime_runtime::Behavior> =
        programs.into_iter().map(op_behavior).collect();
    if let Some(plan) = fault_plan {
        // Under injected faults, per-process failures are the *expected*
        // outcome: run fault-tolerantly and report every process's typed
        // verdict alongside the stats, succeeding as a command.
        rt = rt.with_fault_injector(std::sync::Arc::new(plan));
        let run = rt.run_tolerant(behaviors);
        drop(rt); // release the store sink so the writer can seal
        seal_store(store_writer)?;
        let outcomes: Vec<String> = run
            .outcomes()
            .iter()
            .map(|o| match o {
                None => "null".to_string(),
                Some(e) => {
                    serde_json::to_string(&e.to_string()).expect("strings serialise infallibly")
                }
            })
            .collect();
        return Ok(format!(
            "{{\n  \"stats\": {},\n  \"outcomes\": [{}]\n}}\n",
            run.stats().to_json(),
            outcomes.join(", ")
        ));
    }
    let run = rt.run(behaviors).map_err(|e| e.to_string())?;
    drop(rt); // release the store sink so the writer can seal
    seal_store(store_writer)?;
    if opts.contains_key("stats") {
        let mut out = run.stats().to_json();
        out.push('\n');
        return Ok(out);
    }
    let (comp, _stamps) = run
        .reconstruct()
        .map_err(|e| format!("internal error reconstructing the run: {e}"))?;
    Ok(synctime_trace::json::to_json_string(&comp))
}

// ------------------------------------------- distributed (serve-node etc.)

/// Parses a `--peers` comma-separated address list of exactly `n` entries.
fn parse_addr_list(list: &str, n: usize) -> Result<Vec<std::net::SocketAddr>, String> {
    let addrs: Vec<std::net::SocketAddr> = list
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad socket address `{}` in peer list", s.trim()))
        })
        .collect::<Result<_, _>>()?;
    if addrs.len() != n {
        return Err(format!(
            "peer list has {} addresses but the workload has {n} processes",
            addrs.len()
        ));
    }
    Ok(addrs)
}

fn establish_timeout(opts: &BTreeMap<String, String>) -> Result<std::time::Duration, String> {
    let ms: u64 = opts
        .get("establish-timeout-ms")
        .map(|s| {
            s.parse()
                .map_err(|_| "--establish-timeout-ms expects milliseconds".to_string())
        })
        .transpose()?
        .unwrap_or(10_000);
    Ok(std::time::Duration::from_millis(ms))
}

/// `serve-node`: run ONE process of the workload over TCP. With `--peers`
/// the address list is fixed up front (one terminal per process); without
/// it the node binds an ephemeral port, announces `listening on ADDR` on
/// stdout, and reads the comma-separated peer list from stdin — the
/// contract `launch --transport tcp` drives. Prints a node report.
fn cmd_serve_node(opts: &BTreeMap<String, String>) -> Result<String, String> {
    if opts.contains_key("churn-plan") {
        return cmd_serve_churn_node(opts);
    }
    let programs = run_programs(opts)?;
    reject_receive_any(&programs)?;
    let n = programs.len();
    let process = node_process(opts, n)?;
    let topo = run_topology(&programs, opts)?;
    let dec = decompose::best_known(&topo);
    let hash = synctime_net::topology_hash_of(n, &dec);
    let neighbors: Vec<usize> = topo.neighbors(process).collect();
    let mesh = node_mesh(opts, process, n, &neighbors, hash)?;
    let (tx, rx) = mesh.channels();
    let rt = configure_runtime(synctime_runtime::Runtime::new(&topo, &dec), opts)?;
    let behavior = op_behavior(programs.into_iter().nth(process).expect("index checked"));
    let run = rt.run_process(process, behavior, tx, rx);
    drop(mesh); // close peer sockets before reporting
    let (p, log, outcome, stats) = run.into_parts();
    let report = synctime_net::NodeReport {
        process: p,
        outcome: outcome.map(|e| e.to_string()),
        log,
        cuts: Vec::new(),
        stats,
    };
    Ok(report.to_json() + "\n")
}

/// Parses and range-checks `--process` against the workload size.
fn node_process(opts: &BTreeMap<String, String>, n: usize) -> Result<usize, String> {
    let process: usize = require(opts, "process")?
        .parse()
        .map_err(|_| "--process expects a process index".to_string())?;
    if process >= n {
        return Err(format!(
            "--process {process} out of range (workload has {n} processes)"
        ));
    }
    Ok(process)
}

/// Binds this node's socket, exchanges the peer address list (fixed via
/// `--peers`, or the announce-on-stdout / list-on-stdin contract `launch`
/// drives), and establishes the mesh over `neighbors`.
fn node_mesh(
    opts: &BTreeMap<String, String>,
    process: usize,
    n: usize,
    neighbors: &[usize],
    hash: u64,
) -> Result<synctime_net::TcpMesh, String> {
    use std::io::Write as _;
    let timeout = establish_timeout(opts)?;
    let (builder, addrs) = match opts.get("peers") {
        Some(list) => {
            let addrs = parse_addr_list(list, n)?;
            let own = addrs[process];
            let builder = synctime_net::TcpMeshBuilder::bind(&own.to_string())
                .map_err(|e| format!("cannot bind {own}: {e}"))?;
            (builder, addrs)
        }
        None => {
            let builder = synctime_net::TcpMeshBuilder::bind("127.0.0.1:0")
                .map_err(|e| format!("cannot bind loopback: {e}"))?;
            println!("listening on {}", builder.local_addr());
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            let mut line = String::new();
            std::io::stdin()
                .read_line(&mut line)
                .map_err(|e| format!("cannot read the peer list from stdin: {e}"))?;
            if line.trim().is_empty() {
                return Err("launcher closed stdin before sending the peer list".to_string());
            }
            (builder, parse_addr_list(line.trim(), n)?)
        }
    };
    builder
        .establish(process, &addrs, neighbors, hash, timeout)
        .map_err(|e| format!("mesh establishment failed: {e}"))
}

/// Reads and validates the `--churn-plan` JSON file.
fn load_churn_plan(opts: &BTreeMap<String, String>) -> Result<synctime_sim::ChurnPlan, String> {
    let path = require(opts, "churn-plan")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read churn plan `{path}`: {e}"))?;
    let plan = synctime_sim::ChurnPlan::from_json(&text)
        .map_err(|e| format!("bad churn plan JSON: {e}"))?;
    plan.validate().map_err(|e| e.to_string())?;
    Ok(plan)
}

/// The mesh neighbors of one process in a churn run: its union-topology
/// neighbors plus the control-star edge to the coordinator (process 0
/// connects to everyone), so RECONFIGURE rounds always have a socket even
/// when an epoch's ring does not touch the coordinator.
fn churn_neighbors(union: &Graph, process: usize, n: usize) -> Vec<usize> {
    let mut nb: std::collections::BTreeSet<usize> = union.neighbors(process).collect();
    if process == 0 {
        nb.extend(1..n);
    } else {
        nb.insert(0);
    }
    nb.remove(&process);
    nb.into_iter().collect()
}

/// `serve-node --churn-plan`: one process of a multi-epoch churn run.
/// Establishes the mesh over the plan's *union* topology (plus control
/// star), then alternates epoch execution with reconfiguration rounds:
/// the coordinator drives `coordinate_reconfigure`, everyone else
/// `follow_reconfigure`, and each node applies the committed epoch to its
/// own runtime. The report carries the concatenated log and the
/// per-boundary cuts the launcher persists as reconfiguration records.
fn cmd_serve_churn_node(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let plan = load_churn_plan(opts)?;
    let actives = plan.active_sets().map_err(|e| e.to_string())?;
    let n = plan.universe;
    let process = node_process(opts, n)?;
    let union = plan.union_topology().map_err(|e| e.to_string())?;
    let union_dec = decompose::best_known(&union);
    let hash = synctime_net::topology_hash_of(n, &union_dec);
    let neighbors = churn_neighbors(&union, process, n);
    let mesh = node_mesh(opts, process, n, &neighbors, hash)?;
    let reconfig_timeout = establish_timeout(opts)?;

    let epoch0 = synctime_sim::churn::epoch_topology(n, &actives[0]).map_err(|e| e.to_string())?;
    let mut session = synctime_net::ReconfigSession::new(&epoch0);
    let mut rt = configure_runtime(
        synctime_runtime::Runtime::new(session.graph(), session.decomposition()),
        opts,
    )?;

    let mut log: Vec<synctime_runtime::LogEntry> = Vec::new();
    let mut cuts: Vec<u64> = Vec::new();
    let mut stats_parts = Vec::new();
    let mut outcome: Option<String> = None;
    for (e, active) in actives.iter().enumerate() {
        let rounds = match plan.events.get(e) {
            Some(ev) => ev.after_rounds,
            None => plan.tail_rounds,
        };
        let behavior = synctime_sim::ring_behavior(active, process, rounds);
        let (tx, rx) = mesh.channels();
        let run = rt.run_process(process, behavior, tx, rx);
        let final_clock = run.final_clock().clone();
        let (_, epoch_log, epoch_outcome, stats) = run.into_parts();
        log.extend(epoch_log);
        stats_parts.push(stats);
        if outcome.is_none() {
            outcome = epoch_outcome.map(|err| format!("epoch {e}: {err}"));
        }
        if e + 1 < actives.len() {
            let ops = synctime_sim::churn::edge_ops(active, &actives[e + 1]);
            let committed = if process == 0 {
                let peers: Vec<usize> = (1..n).collect();
                synctime_net::coordinate_reconfigure(
                    &mesh,
                    &mut session,
                    &peers,
                    &ops,
                    &final_clock,
                    reconfig_timeout,
                )
            } else {
                synctime_net::follow_reconfigure(
                    &mesh,
                    &mut session,
                    0,
                    process as u32,
                    &final_clock,
                    reconfig_timeout,
                )
            }
            .map_err(|err| format!("reconfiguration into epoch {}: {err}", e + 1))?;
            let applied = synctime_runtime::AppliedReconfigure {
                epoch: committed.epoch,
                topology: session.graph().clone(),
                decomposition: session.decomposition().clone(),
                remap: committed.remap,
                baseline: committed.baseline,
            };
            rt.apply_reconfigure(&applied)
                .map_err(|err| format!("applying epoch {}: {err}", e + 1))?;
            cuts.push(log.len() as u64);
        }
    }
    drop(mesh); // close peer sockets before reporting
    let report = synctime_net::NodeReport {
        process,
        outcome,
        log,
        cuts,
        stats: synctime_obs::RunStats::merged(&stats_parts),
    };
    Ok(report.to_json() + "\n")
}

/// `launch`: the whole workload, one OS process per synchronous process.
/// `--transport local` is an alias for `run`; `--transport tcp` (default)
/// spawns `serve-node` children, wires them into a loopback mesh, and
/// merges their reports into the same outputs `run` produces.
fn cmd_launch(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let churn = opts.contains_key("churn-plan");
    match opts.get("transport").map(String::as_str).unwrap_or("tcp") {
        "local" => {
            return if churn {
                cmd_launch_churn_local(opts)
            } else {
                cmd_run(opts)
            }
        }
        "tcp" => {}
        other => {
            return Err(format!(
                "--transport expects `tcp` or `local`, got `{other}`"
            ))
        }
    }
    if churn {
        return cmd_launch_churn_tcp(opts);
    }
    let programs = run_programs(opts)?;
    reject_receive_any(&programs)?;
    // Validate the topology before spawning anything.
    let _ = run_topology(&programs, opts)?;
    let n = programs.len();
    const FORWARDED: [&str; 10] = [
        "programs",
        "ring",
        "gossip",
        "rounds",
        "seed",
        "topology",
        "clock",
        "rendezvous-timeout",
        "rendezvous-retries",
        "establish-timeout-ms",
    ];
    let reports = launch_nodes(opts, n, &FORWARDED)?;
    let mut logs = Vec::with_capacity(n);
    let mut stats_parts = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    for report in reports {
        logs.push(report.log);
        stats_parts.push(report.stats);
        outcomes.push(report.outcome);
    }
    if let Some(root) = opts.get("persist") {
        // The launcher persists the *merged* logs after the fact: node
        // children stream nothing durably themselves, so a single sealed
        // store appears atomically once every report is in. Recovery
        // trims any partial per-process suffix to a consistent prefix.
        let trace = opts
            .get("trace-name")
            .map(String::as_str)
            .unwrap_or(DEFAULT_PERSIST_TRACE);
        let store = synctime_store::persist_logs(std::path::Path::new(root), trace, &logs)
            .map_err(|e| format!("cannot persist the run under `{root}`: {e}"))?;
        eprintln!("persisted trace to {}", store.dir().display());
    }
    let stats = synctime_obs::RunStats::merged(&stats_parts);
    if outcomes.iter().any(Option::is_some) {
        // Mirror `run --fault-plan`: typed per-process failures are a
        // reportable result, not a launcher error.
        let rendered: Vec<String> = outcomes
            .iter()
            .map(|o| match o {
                None => "null".to_string(),
                Some(e) => serde_json::to_string(e).expect("strings serialise infallibly"),
            })
            .collect();
        return Ok(format!(
            "{{\n  \"stats\": {},\n  \"outcomes\": [{}]\n}}\n",
            stats.to_json(),
            rendered.join(", ")
        ));
    }
    if opts.contains_key("stats") {
        let mut out = stats.to_json();
        out.push('\n');
        return Ok(out);
    }
    let (comp, _stamps) = synctime_runtime::reconstruct_from_logs(&logs)
        .map_err(|e| format!("cannot reconstruct the distributed run: {e}"))?;
    Ok(synctime_trace::json::to_json_string(&comp))
}

/// Spawns `n` `serve-node` children (forwarding the named flags), drives
/// the three-phase bootstrap — scrape each node's announced address, hand
/// everyone the full peer list, collect one JSON report per process — and
/// waits for every child to exit cleanly.
fn launch_nodes(
    opts: &BTreeMap<String, String>,
    n: usize,
    forwarded: &[&str],
) -> Result<Vec<synctime_net::NodeReport>, String> {
    use std::io::{BufRead as _, Read as _, Write as _};
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let mut children = Vec::with_capacity(n);
    for p in 0..n {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve-node").arg("--process").arg(p.to_string());
        for name in forwarded {
            if let Some(value) = opts.get(*name) {
                cmd.arg(format!("--{name}")).arg(value);
            }
        }
        cmd.stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped());
        children.push(
            cmd.spawn()
                .map_err(|e| format!("cannot spawn node {p}: {e}"))?,
        );
    }
    // Phase 1: every node announces the ephemeral address it bound.
    let mut outs = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for (p, child) in children.iter_mut().enumerate() {
        let mut reader = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        loop {
            line.clear();
            let read = reader
                .read_line(&mut line)
                .map_err(|e| format!("node {p}: {e}"))?;
            if read == 0 {
                return Err(format!("node {p} exited before announcing its address"));
            }
            if let Some(addr) = line.trim().strip_prefix("listening on ") {
                addrs.push(addr.to_string());
                break;
            }
        }
        outs.push(reader);
    }
    // Phase 2: hand every node the full list; the mesh forms peer-to-peer.
    let list = addrs.join(",");
    for (p, child) in children.iter_mut().enumerate() {
        let mut stdin = child.stdin.take().expect("stdin piped");
        writeln!(stdin, "{list}").map_err(|e| format!("node {p}: cannot send peer list: {e}"))?;
    }
    // Phase 3: collect one report per process.
    let mut reports: Vec<Option<synctime_net::NodeReport>> = (0..n).map(|_| None).collect();
    for (p, mut reader) in outs.into_iter().enumerate() {
        let mut text = String::new();
        reader
            .read_to_string(&mut text)
            .map_err(|e| format!("node {p}: {e}"))?;
        let report = synctime_net::NodeReport::from_json(text.trim())
            .map_err(|e| format!("node {p} produced a bad report: {e}"))?;
        let slot = report.process;
        if slot >= n || reports[slot].is_some() {
            return Err(format!("node {p} reported as process {slot} unexpectedly"));
        }
        reports[slot] = Some(report);
    }
    for (p, child) in children.iter_mut().enumerate() {
        let status = child.wait().map_err(|e| format!("node {p}: {e}"))?;
        if !status.success() {
            return Err(format!("node {p} exited with {status}"));
        }
    }
    Ok(reports
        .into_iter()
        .map(|r| r.expect("one report per slot"))
        .collect())
}

/// Persists a multi-epoch run and returns the final-epoch trace JSON (or
/// the merged stats / per-process outcomes, mirroring plain `launch`).
/// Shared tail of the local and distributed churn launch paths.
fn churn_output(
    opts: &BTreeMap<String, String>,
    logs: Vec<Vec<synctime_runtime::LogEntry>>,
    records: Vec<synctime_store::ReconfigRecord>,
    stats: synctime_obs::RunStats,
    outcomes: Vec<Option<String>>,
) -> Result<String, String> {
    if let Some(root) = opts.get("persist") {
        let trace = opts
            .get("trace-name")
            .map(String::as_str)
            .unwrap_or(DEFAULT_PERSIST_TRACE);
        let store = synctime_store::persist_logs_with_reconfigs(
            std::path::Path::new(root),
            trace,
            &logs,
            &records,
        )
        .map_err(|e| format!("cannot persist the run under `{root}`: {e}"))?;
        eprintln!("persisted trace to {}", store.dir().display());
    }
    if outcomes.iter().any(Option::is_some) {
        let rendered: Vec<String> = outcomes
            .iter()
            .map(|o| match o {
                None => "null".to_string(),
                Some(e) => serde_json::to_string(e).expect("strings serialise infallibly"),
            })
            .collect();
        return Ok(format!(
            "{{\n  \"stats\": {},\n  \"outcomes\": [{}]\n}}\n",
            stats.to_json(),
            rendered.join(", ")
        ));
    }
    if opts.contains_key("stats") {
        let mut out = stats.to_json();
        out.push('\n');
        return Ok(out);
    }
    // Only the final epoch reconstructs whole (earlier epochs recycle
    // message keys and live in other dimensions); that is exactly the
    // post-churn trace a fresh run over the final topology would produce.
    let final_logs: Vec<Vec<synctime_runtime::LogEntry>> = match records.last() {
        None => logs,
        Some(last) => logs
            .iter()
            .zip(&last.cuts)
            .map(|(log, &cut)| log.get(cut as usize..).unwrap_or(&[]).to_vec())
            .collect(),
    };
    let (comp, _stamps) = synctime_runtime::reconstruct_from_logs(&final_logs)
        .map_err(|e| format!("cannot reconstruct the final epoch: {e}"))?;
    Ok(synctime_trace::json::to_json_string(&comp))
}

/// `launch --transport local --churn-plan`: the whole multi-epoch run in
/// this OS process via the sim engine — same epochs, same boundaries, same
/// final-epoch trace as the distributed path, byte for byte.
fn cmd_launch_churn_local(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let plan = load_churn_plan(opts)?;
    let mut cfg = synctime_sim::ChurnConfig::default();
    if opts.contains_key("clock") {
        cfg.backend = parse_clock(opts)?;
    }
    if let Some(path) = opts.get("fault-plan") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fault plan `{path}`: {e}"))?;
        cfg.fault = synctime_sim::FaultPlan::from_json(&text)
            .map_err(|e| format!("bad fault plan JSON: {e}"))?;
    }
    let run = synctime_sim::run_churn(&plan, &cfg).map_err(|e| e.to_string())?;
    let records: Vec<synctime_store::ReconfigRecord> = run
        .boundaries
        .iter()
        .map(|b| synctime_store::ReconfigRecord {
            epoch: b.epoch,
            cuts: b.cuts.clone(),
            ops: b.ops.clone(),
        })
        .collect();
    if opts.contains_key("epochs") {
        return Ok(render_epoch_reports(&run.epochs));
    }
    churn_output(opts, run.logs, records, run.stats, run.outcomes)
}

/// Renders `--epochs` output: one JSON object per epoch with its active
/// set, stamp dimension, reconfiguration latency, and survivor count.
fn render_epoch_reports(epochs: &[synctime_sim::EpochReport]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in epochs.iter().enumerate() {
        let active: Vec<String> = e.active.iter().map(ToString::to_string).collect();
        let _ = write!(
            out,
            "  {{\"epoch\": {}, \"active\": [{}], \"dim\": {}, \"reconfigure_micros\": {}, \"survivors\": {}}}{}\n",
            e.epoch,
            active.join(", "),
            e.dim,
            e.reconfigure_micros,
            e.survivors,
            if i + 1 < epochs.len() { "," } else { "" }
        );
    }
    out.push_str("]\n");
    out
}

/// `launch --churn-plan` over TCP: spawns one `serve-node --churn-plan`
/// per process in the plan's universe, lets the nodes drive the
/// RECONFIGURE rounds among themselves, then assembles the per-node cuts
/// into the store's reconfiguration records.
fn cmd_launch_churn_tcp(opts: &BTreeMap<String, String>) -> Result<String, String> {
    let plan = load_churn_plan(opts)?;
    let actives = plan.active_sets().map_err(|e| e.to_string())?;
    let n = plan.universe;
    const FORWARDED: [&str; 6] = [
        "churn-plan",
        "clock",
        "rendezvous-timeout",
        "rendezvous-retries",
        "establish-timeout-ms",
        "watchdog-ms",
    ];
    let reports = launch_nodes(opts, n, &FORWARDED)?;
    let boundaries = plan.events.len();
    for report in &reports {
        if report.cuts.len() != boundaries {
            return Err(format!(
                "process {} reported {} cuts, expected {boundaries}",
                report.process,
                report.cuts.len()
            ));
        }
    }
    let records: Vec<synctime_store::ReconfigRecord> = (0..boundaries)
        .map(|b| synctime_store::ReconfigRecord {
            epoch: (b + 1) as u64,
            cuts: reports.iter().map(|r| r.cuts[b]).collect(),
            ops: synctime_sim::churn::edge_ops(&actives[b], &actives[b + 1])
                .iter()
                .map(|op| match *op {
                    synctime_graph::EdgeOp::Insert(u, v) => (0u8, u as u64, v as u64),
                    synctime_graph::EdgeOp::Remove(u, v) => (1u8, u as u64, v as u64),
                })
                .collect(),
        })
        .collect();
    let mut logs = Vec::with_capacity(n);
    let mut stats_parts = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    for report in reports {
        logs.push(report.log);
        stats_parts.push(report.stats);
        outcomes.push(report.outcome);
    }
    churn_output(
        opts,
        logs,
        records,
        synctime_obs::RunStats::merged(&stats_parts),
        outcomes,
    )
}

/// `serve-query`: stamp one trace (`--trace`) or a whole directory of
/// traces (`--traces-dir`) once, then serve precedence queries over TCP
/// until killed. The bound address is announced as `listening on ADDR` so
/// scripts can scrape an ephemeral port; a catalog run also announces each
/// trace and the shard it hashed to.
fn cmd_serve_query(opts: &BTreeMap<String, String>) -> Result<String, String> {
    use std::io::Write as _;
    let pool = opts
        .get("pool")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "--pool expects a worker count".to_string())
        })
        .transpose()?
        .unwrap_or_else(synctime_net::default_pool_size);
    let shards = opts
        .get("shards")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "--shards expects a shard count".to_string())
        })
        .transpose()?
        .unwrap_or(synctime_net::DEFAULT_SHARDS);
    if shards == 0 {
        return Err("--shards expects at least 1".to_string());
    }
    let poll_ms: u64 = opts
        .get("poll-ms")
        .map(|s| {
            s.parse()
                .map_err(|_| "--poll-ms expects milliseconds".to_string())
        })
        .transpose()?
        .unwrap_or(100);
    let store_dir = opts.get("store-dir");
    let is_catalog = opts.contains_key("traces-dir") || store_dir.is_some();
    let fabric = if let Some(root) = store_dir {
        if opts.contains_key("trace") || opts.contains_key("traces-dir") {
            return Err(
                "--store-dir is mutually exclusive with --trace and --traces-dir".to_string(),
            );
        }
        load_store_catalog(root, shards)?
    } else if let Some(dir) = opts.get("traces-dir") {
        if opts.contains_key("trace") {
            return Err("--trace and --traces-dir are mutually exclusive".to_string());
        }
        load_trace_catalog(dir, opts.get("topology").map(String::as_str), shards)?
    } else {
        let topo = parse_topology(require(opts, "topology")?)?;
        let comp = load_trace(opts, Some(&topo))?;
        let dec = decompose::best_known(&topo);
        let stamps = OnlineStamper::new(&dec)
            .stamp_computation(&comp)
            .map_err(|e| e.to_string())?;
        synctime_net::QueryFabric::single(synctime_net::DEFAULT_TRACE_NAME, stamps)
    };
    let listen = opts
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // The announce line stays first: scripts scrape it for the port.
    println!("listening on {addr}");
    if is_catalog {
        println!(
            "catalog: {} trace(s) across {} shard(s), {pool} worker(s)",
            fabric.trace_count(),
            fabric.shard_count()
        );
        for name in fabric.trace_names() {
            println!("  trace {name} -> shard {}", fabric.shard_of(&name));
        }
    }
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let fabric = std::sync::Arc::new(fabric);
    if let Some(root) = store_dir {
        spawn_store_tailer(
            std::path::PathBuf::from(root),
            std::sync::Arc::clone(&fabric),
            std::time::Duration::from_millis(poll_ms),
        );
    }
    synctime_net::serve_fabric(listener, fabric, pool)
        .map_err(|e| format!("query server failed: {e}"))?;
    Ok(String::new())
}

/// Recovers every trace directory under a `synctime-store` root and
/// publishes the reconstructible prefix of each into a fresh fabric.
/// Per-trace failures are warnings, not errors: a trace being written
/// *right now* may be momentarily torn, and the tailer republishes it on
/// a later poll. An empty root is fine — traces appear as runs persist
/// them.
fn load_store_catalog(root: &str, shards: usize) -> Result<synctime_net::QueryFabric, String> {
    // A server may come up before the first persisted run: create the
    // root so an empty store is servable and the tailer picks up traces
    // as they appear.
    std::fs::create_dir_all(root)
        .map_err(|e| format!("cannot create --store-dir `{root}`: {e}"))?;
    let dirs = synctime_store::trace_dirs(std::path::Path::new(root))
        .map_err(|e| format!("cannot read --store-dir `{root}`: {e}"))?;
    let fabric = synctime_net::QueryFabric::new(shards);
    for (name, dir) in dirs {
        match publish_store_trace(&fabric, &name, &dir) {
            Ok(()) => {}
            Err(e) => eprintln!("warning: trace `{name}` not yet servable: {e}"),
        }
    }
    Ok(fabric)
}

/// Recovers one store trace directory and publishes its stamps under
/// `name` (copy-on-write: in-flight queries keep the old snapshot).
fn publish_store_trace(
    fabric: &synctime_net::QueryFabric,
    name: &str,
    dir: &std::path::Path,
) -> Result<(), String> {
    let rec = synctime_store::read_trace_dir(dir).map_err(|e| e.to_string())?;
    publish_recovered(fabric, name, &rec)
}

/// Publishes the queryable view of a recovered trace: its **latest
/// epoch**. For a single-epoch trace that is the whole run; for a churn
/// trace it is the segment past the newest reconfiguration boundary — the
/// only segment whose stamps share a dimension and whose keys are unique.
fn publish_recovered(
    fabric: &synctime_net::QueryFabric,
    name: &str,
    rec: &synctime_store::RecoveredTrace,
) -> Result<(), String> {
    let (_epoch, _comp, stamps) =
        synctime_store::materialize_latest_epoch(rec).map_err(|e| e.to_string())?;
    fabric.publish(name, stamps);
    Ok(())
}

/// Watches a store root and republishes any trace whose on-disk bytes
/// grew since the last poll, so a serving node follows live ingestion.
/// Fingerprints are (snapshot len, log len) pairs — both files are
/// append-only between snapshots, and a snapshot changes both lengths,
/// so growth is always visible. A changed trace is re-read through its
/// per-trace [`synctime_store::TraceTailReader`], which replays only the
/// appended suffix instead of rescanning the whole log. Failed recoveries
/// (a torn in-progress write) leave the fingerprint unrecorded and retry
/// next poll.
fn spawn_store_tailer(
    root: std::path::PathBuf,
    fabric: std::sync::Arc<synctime_net::QueryFabric>,
    poll: std::time::Duration,
) {
    let file_len = |path: std::path::PathBuf| std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    std::thread::spawn(move || {
        let mut seen: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut readers: BTreeMap<String, synctime_store::TraceTailReader> = BTreeMap::new();
        loop {
            std::thread::sleep(poll);
            let Ok(dirs) = synctime_store::trace_dirs(&root) else {
                continue; // root may not exist yet; a run can create it later
            };
            for (name, dir) in dirs {
                let fp = (
                    file_len(dir.join(synctime_store::SNAPSHOT_FILE)),
                    file_len(dir.join(synctime_store::LOG_FILE)),
                );
                if seen.get(&name) == Some(&fp) {
                    continue;
                }
                let reader = readers
                    .entry(name.clone())
                    .or_insert_with(|| synctime_store::TraceTailReader::new(&dir));
                let Ok(rec) = reader.poll() else {
                    continue;
                };
                if publish_recovered(&fabric, &name, &rec).is_ok() {
                    seen.insert(name, fp);
                }
            }
        }
    });
}

/// Loads every `*.json` trace under `dir` into a sharded catalog; the
/// trace id is the file stem. With a topology the traces are online-stamped
/// against it; without one they are stamped by the sparse offline engine,
/// which needs no topology (both encode the same synchronous order, so
/// precedence verdicts are identical).
fn load_trace_catalog(
    dir: &str,
    topology: Option<&str>,
    shards: usize,
) -> Result<synctime_net::QueryFabric, String> {
    let topo = topology.map(parse_topology).transpose()?;
    let mut entries: Vec<(String, std::path::PathBuf)> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read --traces-dir `{dir}`: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .filter_map(|p| {
            let stem = p.file_stem()?.to_str()?.to_string();
            Some((stem, p))
        })
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("--traces-dir `{dir}` contains no .json traces"));
    }
    let fabric = synctime_net::QueryFabric::new(shards);
    for (name, path) in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read trace `{}`: {e}", path.display()))?;
        let comp = parse_trace(&text, topo.as_ref())
            .map_err(|e| format!("trace `{}`: {e}", path.display()))?;
        let stamps = match &topo {
            Some(topo) => OnlineStamper::new(&decompose::best_known(topo))
                .stamp_computation(&comp)
                .map_err(|e| format!("trace `{}`: {e}", path.display()))?,
            None => offline::stamp_computation_sparse(&comp),
        };
        fabric.publish(&name, stamps);
    }
    Ok(fabric)
}

fn cmd_faultplan(opts: &BTreeMap<String, String>) -> Result<String, String> {
    use rand::SeedableRng;
    let processes: usize = require(opts, "processes")?
        .parse()
        .map_err(|_| "--processes expects a count".to_string())?;
    let max_op: u64 = require(opts, "max-op")?
        .parse()
        .map_err(|_| "--max-op expects a number".to_string())?;
    let num = |name: &str| -> Result<usize, String> {
        opts.get(name)
            .map(|s| s.parse().map_err(|_| format!("--{name} expects a count")))
            .transpose()
            .map(|v| v.unwrap_or(0))
    };
    let crashes = num("crashes")?;
    let desyncs = num("desyncs")?;
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed expects a number".to_string()))
        .transpose()?
        .unwrap_or(0);
    if crashes >= processes && crashes > 0 {
        return Err(format!(
            "--crashes {crashes} would kill all {processes} processes; leave survivors"
        ));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let plan = synctime_sim::FaultPlan::random(processes, max_op, crashes, desyncs, &mut rng);
    let mut out = plan.to_json();
    out.push('\n');
    Ok(out)
}

fn cmd_churn(opts: &BTreeMap<String, String>) -> Result<String, String> {
    use rand::SeedableRng;
    let universe: usize = require(opts, "universe")?
        .parse()
        .map_err(|_| "--universe expects a process count".to_string())?;
    let boundaries: usize = require(opts, "boundaries")?
        .parse()
        .map_err(|_| "--boundaries expects a count".to_string())?;
    let mean_rounds: u64 = opts
        .get("mean-rounds")
        .map(|s| {
            s.parse()
                .map_err(|_| "--mean-rounds expects a round count".to_string())
        })
        .transpose()?
        .unwrap_or(3);
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed expects a number".to_string()))
        .transpose()?
        .unwrap_or(0);
    if universe < 3 {
        return Err("--universe expects at least 3 (joins and leaves need headroom)".to_string());
    }
    if mean_rounds == 0 {
        return Err("--mean-rounds expects at least 1".to_string());
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let plan = synctime_sim::ChurnPlan::random(universe, boundaries, mean_rounds, &mut rng);
    let mut out = plan.to_json();
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn usage_on_no_args_and_help() {
        assert!(run_strs(&[]).unwrap().contains("USAGE"));
        assert!(run_strs(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_strs(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(parse_topology("star:5").unwrap().node_count(), 6);
        assert_eq!(parse_topology("triangle").unwrap().edge_count(), 3);
        assert_eq!(parse_topology("clients:2x3").unwrap().node_count(), 5);
        assert_eq!(parse_topology("grid:2x3").unwrap().node_count(), 6);
        assert_eq!(parse_topology("fig4").unwrap().node_count(), 20);
        assert!(parse_topology("star:x").is_err());
        assert!(parse_topology("clients:3").is_err());
        assert!(parse_topology("wat:3").is_err());
        assert!(parse_topology("/nonexistent.json")
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn topology_json_parsing() {
        let g = parse_topology_json(r#"{"nodes": 3, "edges": [[0,1],[1,2]]}"#).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(parse_topology_json("{}").is_err());
        assert!(parse_topology_json(r#"{"nodes": 2, "edges": [[0,5]]}"#).is_err());
    }

    #[test]
    fn trace_parsing_and_validation() {
        let text = r#"{"processes": 3, "events": [
            {"message": [0, 1]}, {"internal": 1}, {"message": [1, 2]}
        ]}"#;
        let comp = parse_trace(text, None).unwrap();
        assert_eq!(comp.message_count(), 2);
        assert_eq!(comp.events().count(), 5);
        // Topology violations are reported with the event index.
        let topo = topology::path(3);
        let bad = r#"{"processes": 3, "events": [{"message": [0, 2]}]}"#;
        assert!(parse_trace(bad, Some(&topo))
            .unwrap_err()
            .contains("event 0"));
    }

    #[test]
    fn decompose_command_end_to_end() {
        let out = run_strs(&[
            "decompose",
            "--topology",
            "clients:3x8",
            "--cover",
            "--optimal",
        ])
        .unwrap();
        assert!(out.contains("timestamp dimension: 3"));
        assert!(out.contains("vertex cover (3 nodes)"));
    }

    #[test]
    fn stamp_and_query_commands() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        std::fs::write(
            &trace,
            r#"{"processes": 4, "events": [
                {"message": [2, 0]}, {"message": [3, 1]}, {"message": [2, 1]}
            ]}"#,
        )
        .unwrap();
        let t = trace.to_str().unwrap();
        for alg in ["online", "offline", "fm", "lamport"] {
            let out = run_strs(&[
                "stamp",
                "--topology",
                "clients:2x2",
                "--trace",
                t,
                "--algorithm",
                alg,
            ])
            .unwrap();
            assert!(out.contains("m1"), "{alg}: {out}");
        }
        // The offline algorithm's sparse engine stamps the same trace; the
        // engine flag is rejected elsewhere.
        let out = run_strs(&[
            "stamp",
            "--topology",
            "clients:2x2",
            "--trace",
            t,
            "--algorithm",
            "offline",
            "--engine",
            "sparse",
        ])
        .unwrap();
        assert!(out.contains("offline/sparse"), "{out}");
        assert!(out.contains("m1"), "{out}");
        let err = run_strs(&[
            "stamp",
            "--topology",
            "clients:2x2",
            "--trace",
            t,
            "--algorithm",
            "fm",
            "--engine",
            "sparse",
        ])
        .unwrap_err();
        assert!(err.contains("only applies"), "{err}");
        let out = run_strs(&[
            "query",
            "--topology",
            "clients:2x2",
            "--trace",
            t,
            "--m1",
            "1",
            "--m2",
            "2",
        ])
        .unwrap();
        assert!(out.contains("concurrent"), "{out}");
        let out = run_strs(&[
            "query",
            "--topology",
            "clients:2x2",
            "--trace",
            t,
            "--m1",
            "2",
            "--m2",
            "3",
        ])
        .unwrap();
        assert!(out.contains("m1 synchronously precedes m2"), "{out}");
        // Out-of-range message number.
        assert!(run_strs(&[
            "query",
            "--topology",
            "clients:2x2",
            "--trace",
            t,
            "--m1",
            "9",
            "--m2",
            "1",
        ])
        .is_err());
    }

    #[test]
    fn diagram_command() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("diagram.json");
        std::fs::write(
            &trace,
            r#"{"processes": 2, "events": [{"message": [0, 1]}, {"internal": 0}]}"#,
        )
        .unwrap();
        let out = run_strs(&["diagram", "--trace", trace.to_str().unwrap()]).unwrap();
        assert!(out.contains("m1"));
        assert!(out.contains("P2"));
    }

    #[test]
    fn generate_emits_valid_trace() {
        let out = run_strs(&[
            "generate",
            "--topology",
            "complete:4",
            "--messages",
            "12",
            "--internals",
            "3",
            "--seed",
            "9",
        ])
        .unwrap();
        // The emitted JSON parses back into an equivalent computation.
        let comp = parse_trace(&out, Some(&topology::complete(4))).unwrap();
        assert_eq!(comp.message_count(), 12);
        assert_eq!(comp.events().count(), 27);
        // Determinism: same seed, same output.
        let again = run_strs(&[
            "generate",
            "--topology",
            "complete:4",
            "--messages",
            "12",
            "--internals",
            "3",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(out, again);
        // Edgeless topologies are rejected up front.
        assert!(run_strs(&["generate", "--topology", "path:2", "--messages", "0"]).is_ok());
    }

    #[test]
    fn simulate_runs_programs() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let progs = dir.join("programs.json");
        std::fs::write(
            &progs,
            r#"{"programs": [
                [{"send_to": 1}, "internal"],
                [{"receive_from": 0}, {"send_to": 2}],
                ["receive_any"]
            ]}"#,
        )
        .unwrap();
        let out = run_strs(&["simulate", "--programs", progs.to_str().unwrap()]).unwrap();
        let comp = parse_trace(&out, None).unwrap();
        assert_eq!(comp.message_count(), 2);
        // Deadlocking scripts surface the simulator's diagnosis.
        let bad = dir.join("deadlock.json");
        std::fs::write(
            &bad,
            r#"{"programs": [[{"send_to": 1}], [{"send_to": 0}]]}"#,
        )
        .unwrap();
        let err = run_strs(&["simulate", "--programs", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn generate_pipes_into_stamp() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = run_strs(&[
            "generate",
            "--topology",
            "clients:2x3",
            "--messages",
            "10",
            "--seed",
            "1",
        ])
        .unwrap();
        let trace = dir.join("gen.json");
        std::fs::write(&trace, &out).unwrap();
        let stamped = run_strs(&[
            "stamp",
            "--topology",
            "clients:2x3",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(stamped.contains("online (d = 2)"), "{stamped}");
    }

    #[test]
    fn stamp_clock_backends_print_identical_vectors() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = run_strs(&[
            "generate",
            "--topology",
            "cycle:6",
            "--messages",
            "20",
            "--seed",
            "4",
        ])
        .unwrap();
        let trace = dir.join("clock-gen.json");
        std::fs::write(&trace, &out).unwrap();
        let trace = trace.to_str().unwrap();
        // Strip the algorithm label line; the stamped vectors must be
        // byte-identical across every backend and both engines.
        let body = |s: String| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        let dense = run_strs(&["stamp", "--topology", "cycle:6", "--trace", trace]).unwrap();
        for clock in ["tree", "fixed", "auto"] {
            let alt = run_strs(&[
                "stamp",
                "--topology",
                "cycle:6",
                "--trace",
                trace,
                "--clock",
                clock,
            ])
            .unwrap();
            assert_eq!(body(alt), body(dense.clone()), "--clock {clock}");
        }
        let off = run_strs(&[
            "stamp",
            "--topology",
            "cycle:6",
            "--trace",
            trace,
            "--algorithm",
            "offline",
        ])
        .unwrap();
        let off_tree = run_strs(&[
            "stamp",
            "--topology",
            "cycle:6",
            "--trace",
            trace,
            "--algorithm",
            "offline",
            "--clock",
            "tree",
        ])
        .unwrap();
        assert_eq!(body(off_tree), body(off));
        // A backend that cannot hold the dimension is a typed CLI error.
        let err = run_strs(&[
            "stamp",
            "--topology",
            "complete:20",
            "--trace",
            trace,
            "--clock",
            "fixed",
        ])
        .unwrap_err();
        assert!(err.contains("at most"), "{err}");
    }

    #[test]
    fn run_clock_backends_reconstruct_identically() {
        let dense = run_strs(&["run", "--ring", "4", "--rounds", "3"]).unwrap();
        for clock in ["tree", "fixed", "auto"] {
            let alt = run_strs(&["run", "--ring", "4", "--rounds", "3", "--clock", clock]).unwrap();
            assert_eq!(alt, dense, "--clock {clock}");
        }
        // Unknown backends are rejected at flag parse time.
        let err = run_strs(&["run", "--ring", "4", "--clock", "warp"]).unwrap_err();
        assert!(err.contains("unknown clock backend"), "{err}");
    }

    #[test]
    fn run_ring_emits_stats_json() {
        let out = run_strs(&["run", "--ring", "4", "--rounds", "5", "--stats"]).unwrap();
        let stats = synctime_obs::RunStats::from_json(&out).expect("stats output parses");
        assert_eq!(stats.process_count, 4);
        // 4 hops per round x 5 rounds.
        assert_eq!(stats.messages, 20);
        assert_eq!(stats.receives, 20);
        assert!(stats.ack_latency_p50_ns > 0, "{out}");
        assert!(stats.ack_latency_p99_ns >= stats.ack_latency_p50_ns);
        assert!(stats.total_wire_bytes > 0);
        assert!(stats.max_vector_component > 0);
    }

    #[test]
    fn run_matcher_flag_selects_strategy() {
        // The parking matcher (default) reports wakeups in --stats; the
        // polling baseline is selectable and produces the same counters.
        let parked = run_strs(&["run", "--ring", "3", "--rounds", "4", "--stats"]).unwrap();
        let parked = synctime_obs::RunStats::from_json(&parked).unwrap();
        assert!(parked.wakeups > 0, "parking matcher should park threads");
        assert!(parked.wakeup_max_ns >= parked.wakeup_p50_ns);
        let polled = run_strs(&[
            "run",
            "--ring",
            "3",
            "--rounds",
            "4",
            "--matcher",
            "polling",
            "--stats",
        ])
        .unwrap();
        let polled = synctime_obs::RunStats::from_json(&polled).unwrap();
        assert_eq!(polled.messages, parked.messages);
        let err = run_strs(&["run", "--ring", "3", "--matcher", "spinning"]).unwrap_err();
        assert!(err.contains("--matcher"), "{err}");
    }

    /// The combined output `run --fault-plan` prints: stats plus one typed
    /// verdict (null = survived) per process.
    #[derive(Deserialize)]
    struct FaultRunOutput {
        stats: synctime_obs::RunStats,
        outcomes: Vec<Option<String>>,
    }

    #[test]
    fn run_with_crash_plan_reports_typed_outcomes() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("crash-plan.json");
        std::fs::write(
            &plan,
            r#"{"faults": [{"process": 1, "at_op": 0, "kind": "crash"}]}"#,
        )
        .unwrap();
        let out = run_strs(&[
            "run",
            "--ring",
            "4",
            "--rounds",
            "3",
            "--fault-plan",
            plan.to_str().unwrap(),
            "--watchdog-ms",
            "200",
        ])
        .expect("faulted runs still succeed as commands");
        let parsed: FaultRunOutput = serde_json::from_str(&out).expect("combined JSON parses");
        assert_eq!(parsed.outcomes.len(), 4);
        assert!(
            parsed.outcomes[1]
                .as_deref()
                .is_some_and(|e| e.contains("injected fault")),
            "{out}"
        );
        assert_eq!(parsed.stats.faults_injected, 1);
        // Every verdict is typed — the crash cascades as PeerTerminated,
        // never as a panic or a deadlock misdiagnosis.
        for o in parsed.outcomes.iter().flatten() {
            assert!(
                o.contains("injected fault") || o.contains("terminated"),
                "unexpected outcome: {o}"
            );
        }
    }

    #[test]
    fn run_with_desync_plan_recovers_with_resync_frames() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("desync-plan.json");
        std::fs::write(
            &plan,
            r#"{"faults": [{"process": 0, "at_op": 2, "kind": "desync"}]}"#,
        )
        .unwrap();
        let out = run_strs(&[
            "run",
            "--ring",
            "3",
            "--rounds",
            "4",
            "--fault-plan",
            plan.to_str().unwrap(),
        ])
        .unwrap();
        let parsed: FaultRunOutput = serde_json::from_str(&out).unwrap();
        assert!(
            parsed.outcomes.iter().all(Option::is_none),
            "a desync must degrade, not fail: {out}"
        );
        assert_eq!(parsed.stats.faults_injected, 1, "{out}");
        assert!(parsed.stats.resync_frames >= 1, "{out}");
        assert_eq!(parsed.stats.messages, 12);
    }

    #[test]
    fn run_gossip_workload() {
        let out = run_strs(&[
            "run", "--gossip", "4", "--rounds", "2", "--seed", "3", "--stats",
        ])
        .unwrap();
        let stats = synctime_obs::RunStats::from_json(&out).unwrap();
        assert_eq!(stats.process_count, 4);
        // Each round pairs all 4 processes into 2 couples, 2 messages each.
        assert_eq!(stats.messages, 8);
        assert!(run_strs(&["run", "--gossip", "1"])
            .unwrap_err()
            .contains("at least 2"));
    }

    #[test]
    fn rendezvous_timeout_flags_parse_and_clean_runs_pass() {
        let out = run_strs(&[
            "run",
            "--ring",
            "3",
            "--rounds",
            "2",
            "--rendezvous-timeout",
            "5000",
            "--rendezvous-retries",
            "2",
            "--stats",
        ])
        .unwrap();
        let stats = synctime_obs::RunStats::from_json(&out).unwrap();
        assert_eq!(stats.messages, 6);
        assert!(
            run_strs(&["run", "--ring", "3", "--rendezvous-timeout", "soon"])
                .unwrap_err()
                .contains("milliseconds")
        );
    }

    #[test]
    fn faultplan_generator_is_seeded() {
        let args = [
            "faultplan",
            "--processes",
            "5",
            "--max-op",
            "10",
            "--crashes",
            "2",
            "--desyncs",
            "1",
            "--seed",
            "7",
        ];
        let a = run_strs(&args).unwrap();
        assert_eq!(a, run_strs(&args).unwrap(), "same seed, same plan");
        let plan = synctime_sim::FaultPlan::from_json(&a).unwrap();
        assert_eq!(plan.faults.len(), 3);
        // Killing every process is rejected up front.
        let err = run_strs(&[
            "faultplan",
            "--processes",
            "3",
            "--max-op",
            "5",
            "--crashes",
            "3",
        ])
        .unwrap_err();
        assert!(err.contains("survivors"), "{err}");
    }

    #[test]
    fn run_without_stats_emits_trace() {
        let out = run_strs(&["run", "--ring", "3", "--rounds", "2"]).unwrap();
        let comp = parse_trace(&out, Some(&topology::cycle(3))).unwrap();
        assert_eq!(comp.message_count(), 6);
    }

    #[test]
    fn run_executes_program_files_on_threads() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let progs = dir.join("run-programs.json");
        std::fs::write(
            &progs,
            r#"{"programs": [
                [{"send_to": 1}, "internal"],
                [{"receive_from": 0}, {"send_to": 2}],
                [{"receive_from": 1}]
            ]}"#,
        )
        .unwrap();
        let out = run_strs(&["run", "--programs", progs.to_str().unwrap()]).unwrap();
        let comp = parse_trace(&out, None).unwrap();
        assert_eq!(comp.message_count(), 2);
        // receive_any is a simulator-only construct.
        let any = dir.join("run-any.json");
        std::fs::write(&any, r#"{"programs": [["receive_any"], [{"send_to": 0}]]}"#).unwrap();
        let err = run_strs(&["run", "--programs", any.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("receive_any"), "{err}");
    }

    #[test]
    fn run_diagnoses_deadlock_instead_of_hanging() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("run-deadlock.json");
        std::fs::write(
            &bad,
            r#"{"programs": [[{"receive_from": 1}], [{"receive_from": 0}]]}"#,
        )
        .unwrap();
        let err = run_strs(&[
            "run",
            "--programs",
            bad.to_str().unwrap(),
            "--watchdog-ms",
            "100",
        ])
        .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
        assert!(err.contains("P0 -> P1 -> P0"), "{err}");
    }

    #[test]
    fn run_flag_validation() {
        assert!(run_strs(&["run"]).unwrap_err().contains("--programs"));
        assert!(run_strs(&["run", "--ring", "2"])
            .unwrap_err()
            .contains("at least 3"));
        // Mismatched topology is rejected before spawning threads.
        let err = run_strs(&["run", "--ring", "4", "--topology", "cycle:5"]).unwrap_err();
        assert!(err.contains("5 nodes"), "{err}");
    }

    #[test]
    fn flag_errors() {
        assert!(run_strs(&["stamp", "positional"])
            .unwrap_err()
            .contains("unexpected argument"));
        assert!(run_strs(&["stamp", "--trace"])
            .unwrap_err()
            .contains("expects a value"));
        assert!(run_strs(&["stamp"])
            .unwrap_err()
            .contains("missing required flag"));
    }

    #[test]
    fn query_chain_local() {
        let dir = std::env::temp_dir().join("synctime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("chain.json");
        std::fs::write(
            &trace,
            r#"{"processes": 4, "events": [
                {"message": [2, 0]}, {"message": [3, 1]}, {"message": [2, 1]}
            ]}"#,
        )
        .unwrap();
        let out = run_strs(&[
            "query",
            "--topology",
            "clients:2x2",
            "--trace",
            trace.to_str().unwrap(),
            "--chain",
            "3",
        ])
        .unwrap();
        // m1 and m3 share process 2, m2 and m3 share process 1; m2 alone is
        // concurrent with m1 but every message is comparable with m3.
        assert_eq!(out, "chain of m3: m1 m2 m3\n");
    }

    /// The network query client against an in-process server: the same
    /// three answers the local `query` gives on this fixture.
    #[test]
    fn query_connect_end_to_end() {
        let comp = parse_trace(
            r#"{"processes": 4, "events": [
                {"message": [2, 0]}, {"message": [3, 1]}, {"message": [2, 1]}
            ]}"#,
            None,
        )
        .unwrap();
        let topo = parse_topology("clients:2x2").unwrap();
        let dec = decompose::best_known(&topo);
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = synctime_net::query::serve(listener, synctime_net::QueryService::new(stamps));
        });
        let out = run_strs(&["query", "--connect", &addr, "--m1", "1", "--m2", "2"]).unwrap();
        assert_eq!(out, "m1 and m2 are concurrent\n");
        let out = run_strs(&["query", "--connect", &addr, "--m1", "2", "--m2", "3"]).unwrap();
        assert_eq!(out, "m1 synchronously precedes m2\n");
        let out = run_strs(&["query", "--connect", &addr, "--chain", "3"]).unwrap();
        assert_eq!(out, "chain of m3: m1 m2 m3\n");
        // Out-of-range numbers come back as server-side query errors
        // without killing the connection for later clients.
        let err = run_strs(&["query", "--connect", &addr, "--m1", "9", "--m2", "1"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = run_strs(&["query", "--connect", &addr, "--m1", "0", "--m2", "1"]).unwrap_err();
        assert!(err.contains("1-based"), "{err}");
    }

    /// A two-trace catalog loaded from a directory, served over the
    /// fabric, queried by name and in batches through the CLI client.
    #[test]
    fn query_connect_catalog_end_to_end() {
        let dir = std::env::temp_dir().join("synctime-cli-catalog-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Trace `web`: the clients:2x2 fixture from the tests above.
        std::fs::write(
            dir.join("web.json"),
            r#"{"processes": 4, "events": [
                {"message": [2, 0]}, {"message": [3, 1]}, {"message": [2, 1]}
            ]}"#,
        )
        .unwrap();
        // Trace `ring`: a fully sequential 2-process ping-pong.
        std::fs::write(
            dir.join("ring.json"),
            r#"{"processes": 2, "events": [
                {"message": [0, 1]}, {"message": [1, 0]}, {"message": [0, 1]}
            ]}"#,
        )
        .unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a trace").unwrap();
        // No topology: the sparse offline engine stamps the catalog.
        let fabric = load_trace_catalog(dir.to_str().unwrap(), None, 4).unwrap();
        assert_eq!(fabric.trace_names(), vec!["ring", "web"]);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = synctime_net::serve_fabric(listener, std::sync::Arc::new(fabric), 2);
        });
        // Named-trace single queries give the fixture verdicts.
        let out = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "web",
            "--m1",
            "1",
            "--m2",
            "2",
        ])
        .unwrap();
        assert_eq!(out, "m1 and m2 are concurrent\n");
        let out = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "web",
            "--chain",
            "3",
        ])
        .unwrap();
        assert_eq!(out, "chain of m3: m1 m2 m3\n");
        // The `ring` trace is fully ordered, unlike `web`.
        let out = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "ring",
            "--m1",
            "1",
            "--m2",
            "2",
        ])
        .unwrap();
        assert_eq!(out, "m1 synchronously precedes m2\n");
        // A batch answers every pair in one round trip, positionally.
        let out = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "ring",
            "--batch",
            "1:2,2:1,1:3",
        ])
        .unwrap();
        assert_eq!(out, "m1 -> m2: yes\nm2 -> m1: no\nm1 -> m3: yes\n");
        // The pipelined (v3, --window) batch prints the identical output.
        let piped = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "ring",
            "--batch",
            "1:2,2:1,1:3",
            "--window",
            "16",
        ])
        .unwrap();
        assert_eq!(piped, out);
        // A window must be a positive number.
        let err = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "ring",
            "--batch",
            "1:2",
            "--window",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("--window"), "{err}");
        // An unnamed query against a 2-trace catalog is ambiguous.
        let err = run_strs(&["query", "--connect", &addr, "--m1", "1", "--m2", "2"]).unwrap_err();
        assert!(err.contains("2 traces"), "{err}");
        // Unknown trace names fail with a diagnostic, not a hang.
        let err = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "nope",
            "--m1",
            "1",
            "--m2",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("unknown trace"), "{err}");
        // Malformed batch specs are rejected client-side.
        let err = run_strs(&[
            "query",
            "--connect",
            &addr,
            "--trace",
            "ring",
            "--batch",
            "1-2",
        ])
        .unwrap_err();
        assert!(err.contains("m1:m2"), "{err}");
    }

    #[test]
    fn serve_query_catalog_flag_validation() {
        let dir = std::env::temp_dir().join("synctime-cli-catalog-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_strs(&[
            "serve-query",
            "--traces-dir",
            dir.to_str().unwrap(),
            "--trace",
            "x.json",
        ])
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run_strs(&["serve-query", "--traces-dir", dir.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("no .json traces"), "{err}");
        let err = run_strs(&[
            "serve-query",
            "--traces-dir",
            dir.to_str().unwrap(),
            "--shards",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn distributed_flag_validation() {
        // serve-node validates the process index against the workload.
        let err = run_strs(&["serve-node", "--process", "9", "--ring", "3"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(run_strs(&["serve-node", "--ring", "3"])
            .unwrap_err()
            .contains("--process"));
        // launch rejects unknown transports before spawning anything.
        let err =
            run_strs(&["launch", "--ring", "3", "--transport", "carrier-pigeon"]).unwrap_err();
        assert!(err.contains("tcp"), "{err}");
        // A malformed or wrong-arity peer list is rejected up front.
        let err = run_strs(&[
            "serve-node",
            "--process",
            "0",
            "--ring",
            "3",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
        ])
        .unwrap_err();
        assert!(err.contains("3 processes"), "{err}");
        let err = run_strs(&[
            "serve-node",
            "--process",
            "0",
            "--ring",
            "3",
            "--peers",
            "not-an-addr,127.0.0.1:1,127.0.0.1:2",
        ])
        .unwrap_err();
        assert!(err.contains("bad socket address"), "{err}");
    }

    #[test]
    fn churn_generator_is_seeded() {
        let args = [
            "churn",
            "--universe",
            "6",
            "--boundaries",
            "3",
            "--mean-rounds",
            "2",
            "--seed",
            "11",
        ];
        let a = run_strs(&args).unwrap();
        assert_eq!(a, run_strs(&args).unwrap(), "same seed, same plan");
        let plan = synctime_sim::ChurnPlan::from_json(&a).unwrap();
        assert_eq!(plan.universe, 6);
        assert_eq!(plan.events.len(), 3);
        plan.validate().unwrap();
        // A universe too small for joins and leaves is rejected up front.
        let err = run_strs(&["churn", "--universe", "2", "--boundaries", "1"]).unwrap_err();
        assert!(err.contains("at least 3"), "{err}");
    }

    const CHURN_PLAN_FIXTURE: &str = r#"{
        "universe": 5,
        "initial": [0, 1, 2],
        "events": [
            {"after_rounds": 2, "kind": {"join": {"process": 3}}},
            {"after_rounds": 2, "kind": {"leave": {"process": 1}}}
        ],
        "tail_rounds": 2
    }"#;

    /// `launch --transport local --churn-plan` emits the final epoch's
    /// trace: the post-churn active set's ring, reconstructed from the log
    /// suffix past the last boundary.
    #[test]
    fn launch_churn_local_emits_final_epoch_trace() {
        let dir = std::env::temp_dir().join("synctime-cli-churn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("plan.json");
        std::fs::write(&plan, CHURN_PLAN_FIXTURE).unwrap();
        let out = run_strs(&[
            "launch",
            "--transport",
            "local",
            "--churn-plan",
            plan.to_str().unwrap(),
        ])
        .unwrap();
        let comp = parse_trace(&out, None).unwrap();
        // Final active set {0, 2, 3}: a 3-ring run for 2 rounds.
        assert_eq!(comp.process_count(), 5);
        assert_eq!(comp.message_count(), 6);
        // --epochs surfaces the per-epoch dimension/latency reports instead.
        let epochs = run_strs(&[
            "launch",
            "--transport",
            "local",
            "--churn-plan",
            plan.to_str().unwrap(),
            "--epochs",
        ])
        .unwrap();
        assert_eq!(epochs.matches("\"epoch\"").count(), 3, "{epochs}");
        assert!(epochs.contains("\"reconfigure_micros\""), "{epochs}");
    }

    /// `--persist` on a churn launch stores the boundary records; recovery
    /// serves the latest epoch.
    #[test]
    fn launch_churn_local_persists_reconfig_records() {
        let dir = std::env::temp_dir().join("synctime-cli-churn-persist");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("plan.json");
        std::fs::write(&plan, CHURN_PLAN_FIXTURE).unwrap();
        let root = dir.join("store");
        run_strs(&[
            "launch",
            "--transport",
            "local",
            "--churn-plan",
            plan.to_str().unwrap(),
            "--persist",
            root.to_str().unwrap(),
            "--trace-name",
            "churn",
        ])
        .unwrap();
        let rec = synctime_store::read_trace_dir(&root.join("churn")).unwrap();
        assert_eq!(rec.reconfigs.len(), 2);
        assert_eq!(rec.reconfigs.last().unwrap().epoch, 2);
        let (epoch, comp, _stamps) = synctime_store::materialize_latest_epoch(&rec).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(comp.message_count(), 6);
    }

    /// `launch --transport local` is `run` by another name.
    #[test]
    fn launch_local_matches_run() {
        let run_out = run_strs(&["run", "--ring", "3", "--rounds", "2"]).unwrap();
        let launch_out = run_strs(&[
            "launch",
            "--ring",
            "3",
            "--rounds",
            "2",
            "--transport",
            "local",
        ])
        .unwrap();
        assert_eq!(run_out, launch_out);
    }
}
