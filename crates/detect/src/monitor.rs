//! An online monitoring service — the "distributed monitoring systems"
//! application of the paper's introduction (POET, XPVM, Object-Level
//! Trace).
//!
//! A [`Monitor`] ingests timestamped message notifications from the system
//! under observation, **in any arrival order** (observation channels are
//! not causally ordered), and answers order queries incrementally:
//! precedence, concurrency, the current frontier (maximal messages so
//! far), causal history sizes, and a running count of concurrent pairs.
//! Everything is derived purely from the vector timestamps — the monitor
//! never sees the topology or the schedule, which is exactly the point of
//! encoding timestamps (Theorem 4).

use std::collections::BTreeMap;

use synctime_core::{VectorOrder, VectorTime};
use synctime_trace::MessageId;

/// One observed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The message's id in the observed computation.
    pub message: MessageId,
    /// Its vector timestamp (any Theorem 4 encoding; one fixed dimension
    /// per monitor).
    pub stamp: VectorTime,
}

/// Errors from feeding a monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MonitorError {
    /// A stamp's dimension differs from the monitor's.
    DimensionMismatch {
        /// The monitor's dimension.
        expected: usize,
        /// The observation's dimension.
        got: usize,
    },
    /// The same message id was observed twice with different stamps.
    ConflictingObservation {
        /// The offending message.
        message: MessageId,
    },
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "stamp dimension {got} differs from monitor dimension {expected}"
                )
            }
            MonitorError::ConflictingObservation { message } => {
                write!(f, "message {message} observed twice with different stamps")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

/// The incremental observation store. All queries are timestamp
/// comparisons of the monitor's dimension `d`.
///
/// ```
/// use synctime_core::VectorTime;
/// use synctime_detect::monitor::{Monitor, Observation};
/// use synctime_trace::MessageId;
///
/// let mut mon = Monitor::new(2);
/// // Observations may arrive in any order.
/// mon.observe(Observation { message: MessageId(1), stamp: VectorTime::from(vec![2, 0]) })?;
/// mon.observe(Observation { message: MessageId(0), stamp: VectorTime::from(vec![1, 0]) })?;
/// assert_eq!(mon.precedes(MessageId(0), MessageId(1)), Some(true));
/// assert_eq!(mon.frontier(), vec![MessageId(1)]);
/// # Ok::<(), synctime_detect::monitor::MonitorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    dim: usize,
    stamps: BTreeMap<MessageId, VectorTime>,
    /// Current maximal (frontier) messages, kept incrementally.
    frontier: Vec<MessageId>,
    concurrent_pairs: u64,
}

impl Monitor {
    /// A monitor for stamps of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Monitor {
            dim,
            stamps: BTreeMap::new(),
            frontier: Vec::new(),
            concurrent_pairs: 0,
        }
    }

    /// The stamp dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of messages observed so far.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Ingests one observation. Duplicate deliveries of the same
    /// observation are idempotent.
    ///
    /// # Errors
    ///
    /// [`MonitorError::DimensionMismatch`] or
    /// [`MonitorError::ConflictingObservation`].
    pub fn observe(&mut self, obs: Observation) -> Result<(), MonitorError> {
        if obs.stamp.dim() != self.dim {
            return Err(MonitorError::DimensionMismatch {
                expected: self.dim,
                got: obs.stamp.dim(),
            });
        }
        if let Some(existing) = self.stamps.get(&obs.message) {
            if *existing != obs.stamp {
                return Err(MonitorError::ConflictingObservation {
                    message: obs.message,
                });
            }
            return Ok(()); // duplicate delivery
        }
        // Maintain the frontier and the concurrent-pair counter.
        let mut dominated = false;
        for (_, s) in self.stamps.iter() {
            if matches!(
                obs.stamp.compare(s),
                VectorOrder::Concurrent | VectorOrder::Equal
            ) {
                self.concurrent_pairs += 1;
            }
        }
        self.frontier.retain(|m| {
            let cmp = self.stamps[m].compare(&obs.stamp);
            if cmp == VectorOrder::Greater {
                dominated = true;
            }
            cmp != VectorOrder::Less
        });
        if !dominated {
            self.frontier.push(obs.message);
        }
        self.stamps.insert(obs.message, obs.stamp);
        Ok(())
    }

    /// The stamp of an observed message.
    pub fn stamp(&self, m: MessageId) -> Option<&VectorTime> {
        self.stamps.get(&m)
    }

    /// Whether `a` synchronously precedes `b` (both must be observed).
    pub fn precedes(&self, a: MessageId, b: MessageId) -> Option<bool> {
        Some(self.stamps.get(&a)?.compare(self.stamps.get(&b)?) == VectorOrder::Less)
    }

    /// Whether `a` and `b` are concurrent (both must be observed).
    pub fn concurrent(&self, a: MessageId, b: MessageId) -> Option<bool> {
        if a == b {
            return Some(false);
        }
        let cmp = self.stamps.get(&a)?.compare(self.stamps.get(&b)?);
        Some(matches!(cmp, VectorOrder::Concurrent | VectorOrder::Equal))
    }

    /// The currently maximal messages, in id order. With complete
    /// observation this is the set of messages no other message follows —
    /// a consistent "latest state" of the computation.
    pub fn frontier(&self) -> Vec<MessageId> {
        let mut f = self.frontier.clone();
        f.sort_unstable();
        f
    }

    /// The observed causal history of `m`: all observed messages strictly
    /// below it, in id order.
    pub fn history_of(&self, m: MessageId) -> Option<Vec<MessageId>> {
        let target = self.stamps.get(&m)?;
        Some(
            self.stamps
                .iter()
                .filter(|(id, s)| **id != m && s.compare(target) == VectorOrder::Less)
                .map(|(id, _)| *id)
                .collect(),
        )
    }

    /// Running count of unordered pairs among the observations — a
    /// parallelism metric a profiler would chart over time.
    pub fn concurrent_pairs(&self) -> u64 {
        self.concurrent_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use synctime_core::online::OnlineStamper;
    use synctime_graph::{decompose, topology};
    use synctime_sim::workload::random_computation;
    use synctime_trace::Oracle;

    fn observed(seed: u64) -> (Monitor, synctime_trace::SyncComputation) {
        let topo = topology::client_server(2, 4);
        let dec = decompose::best_known(&topo);
        let mut rng = StdRng::seed_from_u64(seed);
        let comp = random_computation(&topo, 40, &mut rng);
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        // Deliver observations to the monitor in a SHUFFLED order.
        let mut order: Vec<usize> = (0..comp.message_count()).collect();
        order.shuffle(&mut rng);
        let mut mon = Monitor::new(dec.len());
        for i in order {
            mon.observe(Observation {
                message: MessageId(i),
                stamp: stamps.vector(MessageId(i)).clone(),
            })
            .unwrap();
        }
        (mon, comp)
    }

    #[test]
    fn queries_match_oracle_despite_out_of_order_delivery() {
        let (mon, comp) = observed(1);
        let oracle = Oracle::new(&comp);
        for i in 0..comp.message_count() {
            for j in 0..comp.message_count() {
                assert_eq!(
                    mon.precedes(MessageId(i), MessageId(j)).unwrap(),
                    oracle.synchronously_precedes(MessageId(i), MessageId(j))
                );
            }
        }
    }

    #[test]
    fn frontier_is_the_maximal_set() {
        let (mon, comp) = observed(2);
        let oracle = Oracle::new(&comp);
        let expected: Vec<MessageId> = (0..comp.message_count())
            .map(MessageId)
            .filter(|&m| {
                (0..comp.message_count()).all(|j| !oracle.synchronously_precedes(m, MessageId(j)))
            })
            .collect();
        assert_eq!(mon.frontier(), expected);
    }

    #[test]
    fn history_matches_oracle_downsets() {
        let (mon, comp) = observed(3);
        let oracle = Oracle::new(&comp);
        for i in 0..comp.message_count() {
            let hist = mon.history_of(MessageId(i)).unwrap();
            let expected: Vec<MessageId> = (0..comp.message_count())
                .map(MessageId)
                .filter(|&j| oracle.synchronously_precedes(j, MessageId(i)))
                .collect();
            assert_eq!(hist, expected, "history of m{}", i + 1);
        }
    }

    #[test]
    fn concurrent_pair_count_matches_oracle() {
        let (mon, comp) = observed(4);
        let oracle = Oracle::new(&comp);
        let mut expected = 0u64;
        for i in 0..comp.message_count() {
            for j in (i + 1)..comp.message_count() {
                expected += u64::from(oracle.concurrent(MessageId(i), MessageId(j)));
            }
        }
        assert_eq!(mon.concurrent_pairs(), expected);
    }

    #[test]
    fn duplicates_idempotent_conflicts_rejected() {
        let mut mon = Monitor::new(2);
        let obs = Observation {
            message: MessageId(0),
            stamp: VectorTime::from(vec![1, 0]),
        };
        mon.observe(obs.clone()).unwrap();
        mon.observe(obs).unwrap(); // duplicate ok
        assert_eq!(mon.len(), 1);
        let err = mon
            .observe(Observation {
                message: MessageId(0),
                stamp: VectorTime::from(vec![2, 0]),
            })
            .unwrap_err();
        assert!(matches!(err, MonitorError::ConflictingObservation { .. }));
        let err = mon
            .observe(Observation {
                message: MessageId(1),
                stamp: VectorTime::from(vec![1]),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MonitorError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn unknown_messages_yield_none() {
        let mon = Monitor::new(1);
        assert!(mon.is_empty());
        assert_eq!(mon.precedes(MessageId(0), MessageId(1)), None);
        assert_eq!(mon.concurrent(MessageId(0), MessageId(1)), None);
        assert_eq!(mon.history_of(MessageId(0)), None);
        assert_eq!(mon.stamp(MessageId(0)), None);
    }
}
