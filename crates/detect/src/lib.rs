//! Applications of synchronous-computation timestamps — the two uses the
//! paper's introduction leads with:
//!
//! * **global property evaluation** ([`wcp`]): detecting whether a weak
//!   conjunctive predicate — "every process's local predicate held
//!   simultaneously in some consistent observation" — *possibly* held, via
//!   the Garg–Waldecker queue algorithm driven purely by timestamp
//!   comparisons;
//! * **distributed monitoring** ([`monitor`]): an online observation
//!   service in the spirit of POET/XPVM — ingest timestamped message
//!   notifications in any arrival order, answer precedence/concurrency
//!   queries, track the frontier and a running parallelism metric;
//! * **fault tolerance** ([`orphans`]): after an optimistic-recovery
//!   rollback (Strom & Yemini), deciding which events are *orphans* —
//!   causally dependent on rolled-back events — and computing the
//!   recovery line, again from timestamps alone.
//!
//! Both consume any message timestamps satisfying the paper's Theorem 4
//! encoding property (online, offline, or Fidge–Mattern), through the
//! Section 5 event stamps.
//!
//! # Example
//!
//! ```
//! use synctime_core::events::stamp_events;
//! use synctime_core::online::OnlineStamper;
//! use synctime_detect::wcp;
//! use synctime_graph::{decompose, topology};
//! use synctime_trace::Builder;
//!
//! // Two workers hold their local predicate around concurrent events.
//! let topo = topology::star(2);
//! let mut b = Builder::with_topology(&topo);
//! b.message(1, 0)?;
//! let e1 = b.internal(1)?; // worker 1's predicate true here
//! let e2 = b.internal(2)?; // worker 2's predicate true here
//! b.message(2, 0)?;
//! let comp = b.build();
//!
//! let dec = decompose::best_known(&topo);
//! let msgs = OnlineStamper::new(&dec).stamp_computation(&comp)?;
//! let events = stamp_events(&comp, &msgs);
//! let witness = wcp::possibly(&events, &[vec![e1], vec![e2]]);
//! assert_eq!(witness, Some(vec![e1, e2]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monitor;
pub mod orphans;
pub mod wcp;
