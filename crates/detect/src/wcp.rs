//! Weak conjunctive predicate detection (Garg & Waldecker), driven by
//! timestamp comparisons.
//!
//! *Possibly(φ₁ ∧ … ∧ φₖ)* holds iff there is a consistent observation of
//! the computation in which every local predicate φᵢ holds — equivalently,
//! iff one can pick one φᵢ-event per slot such that the picks are pairwise
//! concurrent. The queue algorithm walks each slot's candidate list once:
//! whenever two current candidates are ordered (`e → f`), the earlier one
//! can never be concurrent with `f` **or any later candidate on `f`'s
//! process**, so it is discarded. Either the cursors stabilize on a
//! pairwise-concurrent witness, or some slot runs dry and the predicate
//! never possibly held.
//!
//! Total work is `O(k² · Σ|candidates|)` happened-before tests, each a
//! vector comparison of the paper's small dimension `d`.

use synctime_core::events::EventTimestamps;
use synctime_trace::EventId;

/// Searches for one event per slot, pairwise concurrent.
///
/// `candidates[i]` lists slot `i`'s φᵢ-true events in local order; all
/// events of one slot must belong to one process (the Garg–Waldecker
/// elimination argument needs each slot totally ordered).
///
/// Returns the first witness found (one event per slot, in slot order), or
/// `None` if no pairwise-concurrent selection exists. An empty candidate
/// list for any slot yields `None`; zero slots yield the empty witness.
///
/// # Panics
///
/// Panics if a slot mixes events from different processes.
pub fn possibly(stamps: &EventTimestamps, candidates: &[Vec<EventId>]) -> Option<Vec<EventId>> {
    for slot in candidates {
        assert!(
            slot.windows(2).all(|w| w[0].process == w[1].process),
            "a slot's candidates must all be on one process"
        );
    }
    let k = candidates.len();
    let mut cursor = vec![0usize; k];
    if candidates.iter().any(Vec::is_empty) {
        return None;
    }
    loop {
        // Find an ordered pair among the current candidates.
        let mut advanced = false;
        'scan: for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                let (ei, ej) = (candidates[i][cursor[i]], candidates[j][cursor[j]]);
                if stamps.happened_before(ei, ej) {
                    // ei precedes ej and hence every later candidate of
                    // slot j too; ei can never appear in a witness with
                    // anything slot j can still offer. Discard ei.
                    cursor[i] += 1;
                    if cursor[i] == candidates[i].len() {
                        return None;
                    }
                    advanced = true;
                    break 'scan;
                }
            }
        }
        if !advanced {
            return Some((0..k).map(|i| candidates[i][cursor[i]]).collect());
        }
    }
}

/// Convenience: whether *possibly(φ₁ ∧ … ∧ φₖ)* holds.
pub fn holds(stamps: &EventTimestamps, candidates: &[Vec<EventId>]) -> bool {
    possibly(stamps, candidates).is_some()
}

/// Global states (consistent cuts) of a rendezvous computation: one event
/// count per process, advancing over internal events singly and over a
/// message's two endpoints **atomically** (the endpoints are mutually
/// dependent, so no consistent cut separates them).
///
/// `φᵢ` is taken to hold on slot `i`'s process exactly in the local state
/// immediately following one of `candidates[i]`'s events.
mod lattice {
    use synctime_trace::{EventId, EventKind, SyncComputation};

    pub(super) struct CutSpace<'a> {
        comp: &'a SyncComputation,
        /// Per slot: process and the candidate flags per event index.
        slots: Vec<(usize, Vec<bool>)>,
    }

    impl<'a> CutSpace<'a> {
        pub(super) fn new(comp: &'a SyncComputation, candidates: &[Vec<EventId>]) -> Self {
            let slots = candidates
                .iter()
                .map(|slot| {
                    let p = slot.first().expect("non-empty slot").process;
                    let mut flags = vec![false; comp.history(p).len()];
                    for e in slot {
                        assert_eq!(e.process, p, "a slot's candidates must share a process");
                        flags[e.index] = true;
                    }
                    (p, flags)
                })
                .collect();
            CutSpace { comp, slots }
        }

        pub(super) fn initial(&self) -> Vec<usize> {
            vec![0; self.comp.process_count()]
        }

        pub(super) fn is_final(&self, cut: &[usize]) -> bool {
            (0..self.comp.process_count()).all(|p| cut[p] == self.comp.history(p).len())
        }

        /// Whether every slot's predicate holds in this global state.
        pub(super) fn all_hold(&self, cut: &[usize]) -> bool {
            self.slots
                .iter()
                .all(|(p, flags)| cut[*p] >= 1 && flags[cut[*p] - 1])
        }

        /// The consistent single-step successors of a cut.
        pub(super) fn successors(&self, cut: &[usize]) -> Vec<Vec<usize>> {
            let mut out = Vec::new();
            for p in 0..self.comp.process_count() {
                let idx = cut[p];
                if idx >= self.comp.history(p).len() {
                    continue;
                }
                match self.comp.history(p)[idx] {
                    EventKind::Internal => {
                        let mut next = cut.to_vec();
                        next[p] += 1;
                        out.push(next);
                    }
                    EventKind::Send(m) | EventKind::Receive(m) => {
                        // Advance both endpoints atomically, if the partner
                        // is also at this message.
                        let msg = self.comp.message(m);
                        let q = if msg.sender == p {
                            msg.receiver
                        } else {
                            msg.sender
                        };
                        if q < p {
                            continue; // counted once, from the smaller id
                        }
                        let (se, re) = self.comp.message_endpoints(m);
                        let (pi, qi) = if msg.sender == p {
                            (se.index, re.index)
                        } else {
                            (re.index, se.index)
                        };
                        if cut[p] == pi && cut[q] == qi {
                            let mut next = cut.to_vec();
                            next[p] += 1;
                            next[q] += 1;
                            out.push(next);
                        }
                    }
                }
            }
            out
        }
    }
}

/// *Definitely(φ₁ ∧ … ∧ φₖ)* (Cooper–Marzullo): every observation of the
/// computation passes through a global state in which all slot predicates
/// hold simultaneously. Decided by searching the cut lattice for a path
/// from the initial to the final cut that avoids all-φ states; if none
/// exists, φ definitely held.
///
/// Exponential in the worst case (the lattice can be large); intended for
/// the trace sizes a debugger inspects.
///
/// # Panics
///
/// Panics if a slot is empty or mixes processes.
pub fn definitely(
    computation: &synctime_trace::SyncComputation,
    candidates: &[Vec<EventId>],
) -> bool {
    if candidates.is_empty() {
        return true; // the empty conjunction holds everywhere
    }
    if candidates.iter().any(Vec::is_empty) {
        return false;
    }
    let space = lattice::CutSpace::new(computation, candidates);
    // BFS through non-φ cuts (the initial all-zero cut has no executed
    // events, so it never satisfies a non-empty conjunction).
    let start = space.initial();
    let mut visited = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::from([start.clone()]);
    visited.insert(start);
    while let Some(cut) = queue.pop_front() {
        if space.is_final(&cut) {
            return false; // an observation dodged every φ-state
        }
        for next in space.successors(&cut) {
            if !space.all_hold(&next) && visited.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    true
}

/// *Possibly* decided by exhaustive lattice search — exponential, used to
/// cross-validate the queue algorithm in tests.
///
/// State semantics treat a rendezvous as one joint transition, so for
/// slots holding the *two endpoints of the same message* this reports
/// `true` (both states coincide) while the event-based [`possibly`]
/// reports `false` (the endpoints are mutually ordered). For internal
/// candidate events — the intended use — the two notions agree.
pub fn possibly_by_lattice(
    computation: &synctime_trace::SyncComputation,
    candidates: &[Vec<EventId>],
) -> bool {
    if candidates.is_empty() {
        return true;
    }
    if candidates.iter().any(Vec::is_empty) {
        return false;
    }
    let space = lattice::CutSpace::new(computation, candidates);
    let start = space.initial();
    let mut visited = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::from([start.clone()]);
    visited.insert(start);
    while let Some(cut) = queue.pop_front() {
        if space.all_hold(&cut) {
            return true;
        }
        for next in space.successors(&cut) {
            if visited.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::events::stamp_events;
    use synctime_core::online::OnlineStamper;
    use synctime_graph::{decompose, topology, Graph};
    use synctime_trace::{Builder, Oracle, SyncComputation};

    fn stamps_for(comp: &SyncComputation, topo: &Graph) -> EventTimestamps {
        let dec = decompose::best_known(topo);
        let msgs = OnlineStamper::new(&dec).stamp_computation(comp).unwrap();
        stamp_events(comp, &msgs)
    }

    #[test]
    fn concurrent_witness_found() {
        let topo = topology::star(2);
        let mut b = Builder::with_topology(&topo);
        b.message(1, 0).unwrap();
        let e1 = b.internal(1).unwrap();
        let e2 = b.internal(2).unwrap();
        b.message(2, 0).unwrap();
        let comp = b.build();
        let st = stamps_for(&comp, &topo);
        assert_eq!(possibly(&st, &[vec![e1], vec![e2]]), Some(vec![e1, e2]));
    }

    #[test]
    fn ordered_candidates_are_skipped() {
        // P1's early predicate-true event is ordered before P2's only one,
        // but P1 has a later concurrent candidate: detection succeeds via
        // the later one.
        let topo = topology::path(3);
        let mut b = Builder::with_topology(&topo);
        let early = b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        b.message(1, 2).unwrap();
        let late0 = b.internal(0).unwrap();
        let e2 = b.internal(2).unwrap();
        let comp = b.build();
        let st = stamps_for(&comp, &topo);
        let witness = possibly(&st, &[vec![early, late0], vec![e2]]).unwrap();
        assert_eq!(witness, vec![late0, e2]);
    }

    #[test]
    fn impossible_when_always_ordered() {
        // On a star every pair of post-message internals on the hub and a
        // leaf straddling the same message is ordered.
        let topo = topology::star(1);
        let mut b = Builder::with_topology(&topo);
        let before = b.internal(1).unwrap();
        b.message(1, 0).unwrap();
        let after = b.internal(0).unwrap();
        let comp = b.build();
        let st = stamps_for(&comp, &topo);
        assert_eq!(possibly(&st, &[vec![before], vec![after]]), None);
        assert!(!holds(&st, &[vec![before], vec![after]]));
    }

    #[test]
    fn empty_slots_and_zero_slots() {
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        let e = b.internal(0).unwrap();
        let comp = b.build();
        let st = stamps_for(&comp, &topo);
        assert_eq!(possibly(&st, &[vec![e], vec![]]), None);
        assert_eq!(possibly(&st, &[]), Some(vec![]));
        assert_eq!(possibly(&st, &[vec![e]]), Some(vec![e]));
    }

    #[test]
    #[should_panic(expected = "one process")]
    fn mixed_process_slot_rejected() {
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        let a = b.internal(0).unwrap();
        let c = b.internal(1).unwrap();
        let comp = b.build();
        let st = stamps_for(&comp, &topo);
        let _ = possibly(&st, &[vec![a, c]]);
    }

    #[test]
    fn definitely_vs_possibly() {
        // A flag that is possibly-but-not-definitely up: whether both
        // workers' flags overlap depends on the observation.
        let topo = topology::star(2);
        let mut b = Builder::with_topology(&topo);
        b.message(1, 0).unwrap();
        let e1 = b.internal(1).unwrap(); // worker 1 flag
        let e2 = b.internal(2).unwrap(); // worker 2 flag
        b.message(2, 0).unwrap();
        let comp = b.build();
        let st = stamps_for(&comp, &topo);
        let slots = vec![vec![e1], vec![e2]];
        assert!(holds(&st, &slots));
        assert!(possibly_by_lattice(&comp, &slots));
        // Not definite: an observation can step worker 1 past e1 before
        // worker 2 reaches e2.
        assert!(!definitely(&comp, &slots));
    }

    #[test]
    fn definitely_holds_when_unavoidable() {
        // One process, one candidate internal event between two messages:
        // every observation passes through the state right after it...
        // with a second process whose predicate is the constant "after its
        // first event", sandwiched so that the overlap is forced.
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        let e0 = b.internal(0).unwrap();
        let e1 = b.internal(1).unwrap();
        b.message(0, 1).unwrap();
        let comp = b.build();
        // φ_0 true after e0 (until the send); φ_1 true after e1 (until the
        // receive). Every observation must execute both internals before
        // the rendezvous, so the state {e0 done, e1 done} is unavoidable.
        let slots = vec![vec![e0], vec![e1]];
        let st = stamps_for(&comp, &topo);
        assert!(holds(&st, &slots));
        assert!(definitely(&comp, &slots));
    }

    #[test]
    fn lattice_and_queue_possibly_agree_on_internal_candidates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(64);
        for trial in 0..20 {
            let topo = topology::complete(3);
            let mut b = Builder::with_topology(&topo);
            let mut internals: Vec<Vec<EventId>> = vec![Vec::new(); 3];
            for _ in 0..rng.gen_range(2..12) {
                if rng.gen_bool(0.55) {
                    let s = rng.gen_range(0..3);
                    let mut r = rng.gen_range(0..3);
                    while r == s {
                        r = rng.gen_range(0..3);
                    }
                    b.message(s, r).unwrap();
                } else {
                    let p = rng.gen_range(0..3);
                    internals[p].push(b.internal(p).unwrap());
                }
            }
            let comp = b.build();
            // Random sub-slots of the internal events.
            let slots: Vec<Vec<EventId>> = internals
                .iter()
                .filter(|v| !v.is_empty())
                .map(|v| {
                    let take = rng.gen_range(1..=v.len());
                    v[..take].to_vec()
                })
                .collect();
            if slots.len() < 2 {
                continue;
            }
            let st = stamps_for(&comp, &topo);
            assert_eq!(
                holds(&st, &slots),
                possibly_by_lattice(&comp, &slots),
                "trial {trial}"
            );
            // Definitely implies possibly.
            if definitely(&comp, &slots) {
                assert!(holds(&st, &slots), "trial {trial}: definitely w/o possibly");
            }
        }
    }

    #[test]
    fn definitely_trivial_cases() {
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        let e = b.internal(0).unwrap();
        let comp = b.build();
        assert!(definitely(&comp, &[]));
        assert!(!definitely(&comp, &[vec![]]));
        // A single slot whose event is the only event: unavoidable.
        assert!(definitely(&comp, &[vec![e]]));
    }

    #[test]
    fn agrees_with_brute_force_on_random_computations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..25 {
            let topo = topology::complete(4);
            let mut b = Builder::with_topology(&topo);
            let mut internals: Vec<Vec<EventId>> = vec![Vec::new(); 4];
            for _ in 0..rng.gen_range(2..14) {
                if rng.gen_bool(0.5) {
                    let s = rng.gen_range(0..4);
                    let mut r = rng.gen_range(0..4);
                    while r == s {
                        r = rng.gen_range(0..4);
                    }
                    b.message(s, r).unwrap();
                } else {
                    let p = rng.gen_range(0..4);
                    internals[p].push(b.internal(p).unwrap());
                }
            }
            let comp = b.build();
            // Slots: processes that have at least one internal event.
            let slots: Vec<Vec<EventId>> = internals
                .iter()
                .filter(|v| !v.is_empty())
                .cloned()
                .collect();
            if slots.len() < 2 {
                continue;
            }
            let st = stamps_for(&comp, &topo);
            let fast = possibly(&st, &slots).is_some();
            // Brute force over the cartesian product with the oracle.
            let oracle = Oracle::new(&comp);
            let mut found = false;
            let mut idx = vec![0usize; slots.len()];
            'outer: loop {
                let picks: Vec<EventId> = idx.iter().zip(&slots).map(|(&i, s)| s[i]).collect();
                let pairwise = picks.iter().enumerate().all(|(a, &ea)| {
                    picks[a + 1..]
                        .iter()
                        .all(|&eb| oracle.events_concurrent(&comp, ea, eb))
                });
                if pairwise {
                    found = true;
                    break;
                }
                // Next tuple.
                for s in (0..slots.len()).rev() {
                    idx[s] += 1;
                    if idx[s] < slots[s].len() {
                        continue 'outer;
                    }
                    idx[s] = 0;
                    if s == 0 {
                        break 'outer;
                    }
                }
            }
            assert_eq!(fast, found, "trial {trial}");
        }
    }
}
