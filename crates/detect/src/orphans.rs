//! Orphan detection and recovery lines for optimistic rollback recovery
//! (Strom & Yemini), evaluated from timestamps.
//!
//! When a process fails and rolls back, the events it "un-executes" may
//! already have influenced others; any event causally dependent on a
//! rolled-back event is an **orphan** and must roll back too. Because
//! orphan-hood is upward closed along `→`, the surviving prefix per
//! process — the **recovery line** — is the prefix before its first
//! orphan, and that cut is automatically consistent (with rendezvous
//! semantics the two endpoints of a message are mutually dependent, so
//! they survive or roll back together).

use synctime_core::events::EventTimestamps;
use synctime_trace::{EventId, ProcessId, SyncComputation};

/// One process's rollback: events `0..surviving_events` of its history
/// survive; everything at or after index `surviving_events` is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// The failed process.
    pub process: ProcessId,
    /// Length of the surviving local prefix.
    pub surviving_events: usize,
}

/// Whether event `f` is an orphan of the given failures: lost directly, or
/// causally dependent on a lost event.
pub fn is_orphan(
    computation: &SyncComputation,
    stamps: &EventTimestamps,
    failures: &[Failure],
    f: EventId,
) -> bool {
    failures.iter().any(|fail| {
        if f.process == fail.process && f.index >= fail.surviving_events {
            return true;
        }
        // The earliest lost event dominates all later ones, so testing it
        // suffices.
        let history_len = computation.history(fail.process).len();
        if fail.surviving_events >= history_len {
            return false; // nothing actually lost
        }
        let first_lost = EventId::new(fail.process, fail.surviving_events);
        stamps.happened_before(first_lost, f)
    })
}

/// All orphaned events, in process-major order.
pub fn orphan_events(
    computation: &SyncComputation,
    stamps: &EventTimestamps,
    failures: &[Failure],
) -> Vec<EventId> {
    computation
        .events()
        .filter(|&f| is_orphan(computation, stamps, failures, f))
        .collect()
}

/// The recovery line: for each process, the length of its longest
/// orphan-free prefix. The induced cut is consistent (see module docs).
pub fn recovery_line(
    computation: &SyncComputation,
    stamps: &EventTimestamps,
    failures: &[Failure],
) -> Vec<usize> {
    (0..computation.process_count())
        .map(|p| {
            let len = computation.history(p).len();
            (0..len)
                .find(|&i| is_orphan(computation, stamps, failures, EventId::new(p, i)))
                .unwrap_or(len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_core::events::stamp_events;
    use synctime_core::online::OnlineStamper;
    use synctime_graph::{decompose, topology, Graph};
    use synctime_trace::{Builder, Oracle};

    fn stamps_for(comp: &SyncComputation, topo: &Graph) -> EventTimestamps {
        let dec = decompose::best_known(topo);
        let msgs = OnlineStamper::new(&dec).stamp_computation(comp).unwrap();
        stamp_events(comp, &msgs)
    }

    /// P0 computes, tells P1; P1 tells P2; P2 computes independently first.
    fn chain() -> (SyncComputation, Graph) {
        let topo = topology::path(3);
        let mut b = Builder::with_topology(&topo);
        b.internal(2).unwrap(); // P2[0]: independent, never an orphan
        b.internal(0).unwrap(); // P0[0]
        b.message(0, 1).unwrap(); // P0[1] / P1[0]
        b.internal(1).unwrap(); // P1[1]
        b.message(1, 2).unwrap(); // P1[2] / P2[1]
        b.internal(2).unwrap(); // P2[2]
        (b.build(), topo)
    }

    #[test]
    fn rollback_propagates_downstream() {
        let (comp, topo) = chain();
        let st = stamps_for(&comp, &topo);
        // P0 loses everything from its send onwards.
        let failures = [Failure {
            process: 0,
            surviving_events: 1,
        }];
        let orphans = orphan_events(&comp, &st, &failures);
        // Lost: P0[1]; orphaned: all of P1, and P2's events after the
        // receive (P2[1], P2[2]) — but not P2[0] or P0[0].
        let expect: Vec<EventId> = vec![
            EventId::new(0, 1),
            EventId::new(1, 0),
            EventId::new(1, 1),
            EventId::new(1, 2),
            EventId::new(2, 1),
            EventId::new(2, 2),
        ];
        assert_eq!(orphans, expect);
        assert_eq!(recovery_line(&comp, &st, &failures), vec![1, 0, 1]);
    }

    #[test]
    fn downstream_failure_does_not_orphan_upstream() {
        let (comp, topo) = chain();
        let st = stamps_for(&comp, &topo);
        // P2 rolls back its last internal event only.
        let failures = [Failure {
            process: 2,
            surviving_events: 2,
        }];
        let orphans = orphan_events(&comp, &st, &failures);
        assert_eq!(orphans, vec![EventId::new(2, 2)]);
        assert_eq!(recovery_line(&comp, &st, &failures), vec![2, 3, 2]);
    }

    #[test]
    fn vacuous_failure_orphans_nothing() {
        let (comp, topo) = chain();
        let st = stamps_for(&comp, &topo);
        let failures = [Failure {
            process: 1,
            surviving_events: 3,
        }];
        assert!(orphan_events(&comp, &st, &failures).is_empty());
        assert_eq!(recovery_line(&comp, &st, &failures), vec![2, 3, 3]);
    }

    #[test]
    fn multiple_failures_union() {
        let (comp, topo) = chain();
        let st = stamps_for(&comp, &topo);
        let failures = [
            Failure {
                process: 2,
                surviving_events: 2,
            },
            Failure {
                process: 1,
                surviving_events: 1,
            },
        ];
        let line = recovery_line(&comp, &st, &failures);
        assert_eq!(line, vec![2, 1, 1]);
    }

    #[test]
    fn recovery_line_cut_is_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let topo = topology::complete(4);
            let mut b = Builder::with_topology(&topo);
            for _ in 0..rng.gen_range(1..20) {
                if rng.gen_bool(0.6) {
                    let s = rng.gen_range(0..4);
                    let mut r = rng.gen_range(0..4);
                    while r == s {
                        r = rng.gen_range(0..4);
                    }
                    b.message(s, r).unwrap();
                } else {
                    b.internal(rng.gen_range(0..4)).unwrap();
                }
            }
            let comp = b.build();
            let st = stamps_for(&comp, &topo);
            let p = rng.gen_range(0..4);
            let k = rng.gen_range(0..=comp.history(p).len());
            let failures = [Failure {
                process: p,
                surviving_events: k,
            }];
            let line = recovery_line(&comp, &st, &failures);
            // Consistency: no surviving event depends on a rolled-back one.
            let oracle = Oracle::new(&comp);
            for q in 0..4 {
                for i in 0..line[q] {
                    let f = EventId::new(q, i);
                    #[allow(clippy::needless_range_loop)]
                    for q2 in 0..4 {
                        for j in line[q2]..comp.history(q2).len() {
                            let e = EventId::new(q2, j);
                            assert!(
                                !oracle.happened_before(&comp, e, f),
                                "surviving {f} depends on rolled-back {e}"
                            );
                        }
                    }
                }
            }
        }
    }
}
