//! Wait-for-graph construction and cycle extraction for stalled runs.
//!
//! In a rendezvous runtime every blocked process waits on exactly **one**
//! peer (the target of its send, the source of its receive, or the ack it
//! has not yet been handed). The wait-for graph is therefore a functional
//! graph — out-degree at most one — and a stall in which every live process
//! is blocked always contains at least one directed cycle, found by walking
//! successor pointers until a node repeats.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The rendezvous operation a blocked process is stuck in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitOp {
    /// Blocked in `send`, waiting for the peer to start a matching receive.
    SendTo,
    /// Blocked in `receive_from`, waiting for the peer to send.
    ReceiveFrom,
    /// Message handed over; waiting for the peer's acknowledgement.
    AckFrom,
}

impl fmt::Display for WaitOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitOp::SendTo => write!(f, "send to"),
            WaitOp::ReceiveFrom => write!(f, "receive from"),
            WaitOp::AckFrom => write!(f, "await ack from"),
        }
    }
}

/// One edge of the wait-for graph: `process` is blocked on `peer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEdge {
    /// The blocked process.
    pub process: usize,
    /// What it is blocked doing.
    pub op: WaitOp,
    /// The process it is waiting on.
    pub peer: usize,
    /// How long it has been blocked, in milliseconds.
    pub blocked_ms: u64,
}

/// A diagnosed stall: the full wait-for graph plus one extracted cycle.
///
/// Built by the runtime watchdog when every live process has been blocked
/// beyond the configured timeout, and carried by the runtime's `Deadlock`
/// error so callers see *who* is waiting on *whom* instead of a hang.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockDiagnosis {
    /// Every blocked process and what it waits on.
    pub waiting: Vec<WaitEdge>,
    /// One directed cycle through the wait-for graph, in wait order; the
    /// first element is repeated implicitly (`cycle[last]` waits on
    /// `cycle[0]`). Empty only if no cycle exists among the edges — which a
    /// genuine all-blocked rendezvous stall cannot produce, but a snapshot
    /// taken mid-transition can.
    pub cycle: Vec<usize>,
    /// Processes whose threads had already terminated (finished, crashed,
    /// or were fault-injected) when the snapshot was taken. A wait on a
    /// terminated peer is *not* a deadlock edge — it resolves with
    /// `PeerTerminated` as soon as the waiter wakes — so these processes
    /// are excluded from cycle extraction and reported here instead.
    pub terminated: Vec<usize>,
}

impl DeadlockDiagnosis {
    /// Diagnoses a stall from the set of blocked processes.
    ///
    /// Walks successor pointers from each blocked process until either a
    /// repeat (cycle found) or a dead end (peer not blocked). The cycle is
    /// rotated so it starts at its smallest process id, making diagnoses
    /// deterministic for tests and log comparison.
    pub fn from_waiting(waiting: Vec<WaitEdge>) -> Self {
        DeadlockDiagnosis::from_waiting_filtered(waiting, Vec::new())
    }

    /// Diagnoses a stall, ignoring waits that involve terminated processes.
    ///
    /// An injected crash leaves its peers parked on a dead process for a
    /// moment; those waits look like deadlock edges to a naive snapshot but
    /// will resolve with `PeerTerminated` on their own. Dropping every edge
    /// whose process *or* peer is in `terminated` before walking for cycles
    /// keeps the watchdog from misreporting a crash as a deadlock. The full
    /// `waiting` snapshot is preserved for display either way.
    pub fn from_waiting_filtered(waiting: Vec<WaitEdge>, terminated: Vec<usize>) -> Self {
        let successor = |p: usize| -> Option<usize> {
            if terminated.contains(&p) {
                return None;
            }
            waiting
                .iter()
                .find(|e| e.process == p)
                .filter(|e| !terminated.contains(&e.peer))
                .map(|e| e.peer)
        };
        let mut cycle = Vec::new();
        for start in waiting.iter().map(|e| e.process) {
            let mut path = vec![start];
            let mut current = start;
            while let Some(next) = successor(current) {
                if let Some(pos) = path.iter().position(|&p| p == next) {
                    cycle = path[pos..].to_vec();
                    break;
                }
                path.push(next);
                current = next;
            }
            if !cycle.is_empty() {
                break;
            }
        }
        if let Some(min_pos) = cycle
            .iter()
            .enumerate()
            .min_by_key(|&(_, &p)| p)
            .map(|(i, _)| i)
        {
            cycle.rotate_left(min_pos);
        }
        DeadlockDiagnosis {
            waiting,
            cycle,
            terminated,
        }
    }
}

impl fmt::Display for DeadlockDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cycle.is_empty() {
            write!(f, "all processes blocked, no cycle snapshot")?;
        } else {
            write!(f, "cycle ")?;
            for p in &self.cycle {
                write!(f, "P{p} -> ")?;
            }
            write!(f, "P{}", self.cycle[0])?;
        }
        write!(f, "; waiting:")?;
        for e in &self.waiting {
            write!(
                f,
                " [P{} {} P{} for {}ms]",
                e.process, e.op, e.peer, e.blocked_ms
            )?;
        }
        if !self.terminated.is_empty() {
            write!(f, "; terminated:")?;
            for p in &self.terminated {
                write!(f, " P{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(process: usize, op: WaitOp, peer: usize) -> WaitEdge {
        WaitEdge {
            process,
            op,
            peer,
            blocked_ms: 100,
        }
    }

    #[test]
    fn two_process_mutual_receive_cycle() {
        let d = DeadlockDiagnosis::from_waiting(vec![
            edge(1, WaitOp::ReceiveFrom, 0),
            edge(0, WaitOp::ReceiveFrom, 1),
        ]);
        assert_eq!(d.cycle, vec![0, 1]);
        let text = d.to_string();
        assert!(text.contains("P0 -> P1 -> P0"), "got: {text}");
    }

    #[test]
    fn tail_leading_into_cycle_is_excluded() {
        // 0 waits on 1, 1 waits on 2, 2 waits on 1: cycle is {1, 2}.
        let d = DeadlockDiagnosis::from_waiting(vec![
            edge(0, WaitOp::SendTo, 1),
            edge(1, WaitOp::ReceiveFrom, 2),
            edge(2, WaitOp::ReceiveFrom, 1),
        ]);
        assert_eq!(d.cycle, vec![1, 2]);
    }

    #[test]
    fn cycle_starts_at_smallest_id() {
        let d = DeadlockDiagnosis::from_waiting(vec![
            edge(3, WaitOp::SendTo, 2),
            edge(2, WaitOp::SendTo, 3),
        ]);
        assert_eq!(d.cycle, vec![2, 3]);
    }

    #[test]
    fn no_cycle_yields_empty() {
        let d = DeadlockDiagnosis::from_waiting(vec![edge(0, WaitOp::SendTo, 1)]);
        assert!(d.cycle.is_empty());
        assert!(d.to_string().contains("no cycle"));
    }

    #[test]
    fn json_roundtrip() {
        let d = DeadlockDiagnosis::from_waiting(vec![
            edge(0, WaitOp::ReceiveFrom, 1),
            edge(1, WaitOp::AckFrom, 0),
        ]);
        let json = serde_json::to_string(&d).unwrap();
        let back: DeadlockDiagnosis = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn wait_on_terminated_peer_is_not_a_cycle() {
        // 0 and 1 would form a cycle, but 1's thread is already dead: 0's
        // wait resolves with PeerTerminated, so no deadlock is diagnosed.
        let d = DeadlockDiagnosis::from_waiting_filtered(
            vec![
                edge(0, WaitOp::ReceiveFrom, 1),
                edge(1, WaitOp::ReceiveFrom, 0),
            ],
            vec![1],
        );
        assert!(d.cycle.is_empty(), "crash misdiagnosed as deadlock: {d}");
        assert_eq!(d.terminated, vec![1]);
        assert!(d.to_string().contains("terminated: P1"), "got: {d}");
    }

    #[test]
    fn genuine_cycle_survives_unrelated_termination() {
        // 3 is dead and 0 waits on it, but {1, 2} still deadlock each other.
        let d = DeadlockDiagnosis::from_waiting_filtered(
            vec![
                edge(0, WaitOp::ReceiveFrom, 3),
                edge(1, WaitOp::SendTo, 2),
                edge(2, WaitOp::SendTo, 1),
            ],
            vec![3],
        );
        assert_eq!(d.cycle, vec![1, 2]);
    }
}
