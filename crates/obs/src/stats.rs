//! Aggregated run summaries, exportable as JSON.

use serde::{Deserialize, Serialize};

/// Counters for a single process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessStats {
    /// Process id.
    pub process: usize,
    /// Messages this process sent.
    pub sends: u64,
    /// Messages this process received.
    pub receives: u64,
    /// Wire bytes this process put on or took off its channels.
    pub wire_bytes: u64,
    /// Total nanoseconds spent blocked in rendezvous operations.
    pub blocked_ns: u64,
}

/// Summary of one timestamped run.
///
/// Produced by [`Recorder::finish`](crate::Recorder::finish); serialised to
/// JSON by `synctime run --stats` and the bench tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of processes in the run.
    pub process_count: usize,
    /// Total messages exchanged (counted once, at the sender).
    pub messages: u64,
    /// Total receives completed (equals `messages` in a clean run).
    pub receives: u64,
    /// Total bytes on the wire, counted at both endpoints: payload framing
    /// plus the piggybacked vector of dimension `d` on every message and its
    /// acknowledgement.
    pub total_wire_bytes: u64,
    /// Total nanoseconds processes spent blocked in rendezvous operations.
    pub total_blocked_ns: u64,
    /// Median acknowledgement round-trip latency, in nanoseconds.
    pub ack_latency_p50_ns: u64,
    /// 99th-percentile acknowledgement round-trip latency, in nanoseconds.
    pub ack_latency_p99_ns: u64,
    /// Worst observed acknowledgement round-trip latency, in nanoseconds.
    pub ack_latency_max_ns: u64,
    /// Times a parked rendezvous wait actually resumed after a peer's
    /// notification (zero under a matcher that never parks threads).
    pub wakeups: u64,
    /// Median rendezvous wakeup latency — nanoseconds between a peer making
    /// a parked thread's condition true and the thread observing it.
    pub wakeup_p50_ns: u64,
    /// 99th-percentile rendezvous wakeup latency, in nanoseconds.
    pub wakeup_p99_ns: u64,
    /// Worst observed rendezvous wakeup latency, in nanoseconds.
    pub wakeup_max_ns: u64,
    /// Send events that fell out of the bounded rings before aggregation;
    /// when nonzero, percentiles cover only the most recent sends (counters
    /// remain exact).
    pub latency_sample_dropped: u64,
    /// Largest component in any process's final vector — the paper's claim
    /// is that components track edge-group activity, so this bounds the
    /// per-component growth for the run.
    pub max_vector_component: u64,
    /// Per-process breakdown.
    pub per_process: Vec<ProcessStats>,
}

impl RunStats {
    /// Pretty-printed JSON rendering of the summary.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunStats serialises infallibly")
    }

    /// Parses a summary previously produced by [`RunStats::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            process_count: 2,
            messages: 5,
            receives: 5,
            total_wire_bytes: 240,
            total_blocked_ns: 9000,
            ack_latency_p50_ns: 400,
            ack_latency_p99_ns: 900,
            ack_latency_max_ns: 950,
            wakeups: 4,
            wakeup_p50_ns: 1200,
            wakeup_p99_ns: 2500,
            wakeup_max_ns: 2600,
            latency_sample_dropped: 0,
            max_vector_component: 5,
            per_process: vec![
                ProcessStats { process: 0, sends: 5, receives: 0, wire_bytes: 120, blocked_ns: 4000 },
                ProcessStats { process: 1, sends: 0, receives: 5, wire_bytes: 120, blocked_ns: 5000 },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let stats = sample();
        let json = stats.to_json();
        assert!(json.contains("\"ack_latency_p99_ns\": 900"));
        let back = RunStats::from_json(&json).unwrap();
        assert_eq!(back, stats);
    }
}
