//! Aggregated run summaries, exportable as JSON.

use serde::{Deserialize, Serialize};

/// Counters for a single process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessStats {
    /// Process id.
    pub process: usize,
    /// Messages this process sent.
    pub sends: u64,
    /// Messages this process received.
    pub receives: u64,
    /// Wire bytes this process put on or took off its channels (actual
    /// encoded bytes — per-channel deltas where the runtime uses them).
    pub wire_bytes: u64,
    /// What the same traffic would have cost with full fixed-width vectors
    /// on every message and acknowledgement — the before-deltas baseline.
    pub wire_bytes_full: u64,
    /// Total nanoseconds spent blocked in rendezvous operations.
    pub blocked_ns: u64,
}

/// Wire accounting for one directed channel.
///
/// Bytes follow the same convention as the aggregate counters: each
/// endpoint adds what it observed on the channel, so a channel both of
/// whose endpoints ran in this recorder counts every frame twice (once per
/// endpoint), exactly like [`RunStats::total_wire_bytes`]. `messages` is
/// counted once, at the sender.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Sending endpoint of the directed channel.
    pub from: usize,
    /// Receiving endpoint of the directed channel.
    pub to: usize,
    /// Messages sent on this channel (counted at the sender only).
    pub messages: u64,
    /// Actual frame bytes observed on this channel (offer + ack + resync
    /// frames, including frame headers), summed over both endpoints'
    /// observations.
    pub wire_bytes: u64,
    /// The same traffic priced at full fixed-width vectors.
    pub wire_bytes_full: u64,
    /// `wire_bytes / wire_bytes_full` for this channel (`1.0` when no
    /// bytes moved) — the per-channel delta-encoding savings.
    pub wire_savings_ratio: f64,
}

/// `actual / full`, reporting "no savings" (`1.0`) instead of dividing by
/// zero when nothing moved.
pub(crate) fn savings_ratio(actual: u64, full: u64) -> f64 {
    if full == 0 {
        return 1.0;
    }
    actual as f64 / full as f64
}

/// Summary of one timestamped run.
///
/// Produced by [`Recorder::finish`](crate::Recorder::finish); serialised to
/// JSON by `synctime run --stats` and the bench tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of processes in the run.
    pub process_count: usize,
    /// Total messages exchanged (counted once, at the sender).
    pub messages: u64,
    /// Total receives completed (equals `messages` in a clean run).
    pub receives: u64,
    /// Total bytes on the wire, counted at both endpoints: payload framing
    /// plus the piggybacked vector encoding on every message and its
    /// acknowledgement (the *actual* encoding — per-channel
    /// Singhal–Kshemkalyani deltas where the runtime uses them).
    pub total_wire_bytes: u64,
    /// The same traffic priced at full fixed-width vectors (8 bytes per
    /// component, both directions): the before-deltas baseline, so
    /// `total_wire_bytes / total_wire_bytes_full` is the on-wire savings of
    /// delta encoding.
    pub total_wire_bytes_full: u64,
    /// Total nanoseconds processes spent blocked in rendezvous operations.
    pub total_blocked_ns: u64,
    /// Median acknowledgement round-trip latency, in nanoseconds.
    pub ack_latency_p50_ns: u64,
    /// 99th-percentile acknowledgement round-trip latency, in nanoseconds.
    pub ack_latency_p99_ns: u64,
    /// Worst observed acknowledgement round-trip latency, in nanoseconds.
    pub ack_latency_max_ns: u64,
    /// Times a parked rendezvous wait actually resumed after a peer's
    /// notification (zero under a matcher that never parks threads).
    pub wakeups: u64,
    /// Median rendezvous wakeup latency — nanoseconds between a peer making
    /// a parked thread's condition true and the thread observing it.
    pub wakeup_p50_ns: u64,
    /// 99th-percentile rendezvous wakeup latency, in nanoseconds.
    pub wakeup_p99_ns: u64,
    /// Worst observed rendezvous wakeup latency, in nanoseconds.
    pub wakeup_max_ns: u64,
    /// Send events that fell out of the bounded rings before aggregation;
    /// when nonzero, percentiles cover only the most recent sends (counters
    /// remain exact).
    pub latency_sample_dropped: u64,
    /// Largest component in any process's final vector — the paper's claim
    /// is that components track edge-group activity, so this bounds the
    /// per-component growth for the run.
    pub max_vector_component: u64,
    /// Full-vector resync frames retransmitted after a detected
    /// delta-stream desynchronisation (zero in a fault-free run: the
    /// per-channel FIFO slots keep the streams in lock-step).
    pub resync_frames: u64,
    /// Fault-injector actions that actually fired during the run (crashes,
    /// delays, armed desyncs). Zero when no injector is configured.
    pub faults_injected: u64,
    /// `total_wire_bytes / total_wire_bytes_full` (`1.0` when no bytes
    /// moved): the aggregate on-wire savings of delta encoding.
    pub wire_savings_ratio: f64,
    /// Per-process breakdown.
    pub per_process: Vec<ProcessStats>,
    /// Per-directed-channel wire accounting, sorted by `(from, to)`.
    pub per_channel: Vec<ChannelStats>,
}

impl RunStats {
    /// Pretty-printed JSON rendering of the summary.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunStats serialises infallibly")
    }

    /// Parses a summary previously produced by [`RunStats::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Merges per-node summaries of one distributed run into a run-wide
    /// summary (the `synctime launch` path: each OS process records only
    /// its own side of every rendezvous and reports a [`RunStats`] sized
    /// for the whole run).
    ///
    /// Counters, per-process rows, and per-channel rows sum exactly; the
    /// savings ratios are recomputed from the summed byte counts;
    /// `max_vector_component` is the maximum over the parts. Latency
    /// *percentiles* cannot be merged from summaries alone, so each
    /// percentile field conservatively takes the maximum across the parts
    /// — an upper bound, not a true run-wide percentile.
    pub fn merged(parts: &[RunStats]) -> RunStats {
        let process_count = parts.iter().map(|p| p.process_count).max().unwrap_or(0);
        let mut per_process: Vec<ProcessStats> = (0..process_count)
            .map(|process| ProcessStats {
                process,
                sends: 0,
                receives: 0,
                wire_bytes: 0,
                wire_bytes_full: 0,
                blocked_ns: 0,
            })
            .collect();
        let mut channels: std::collections::BTreeMap<(usize, usize), ChannelStats> =
            std::collections::BTreeMap::new();
        for part in parts {
            for row in &part.per_process {
                if let Some(agg) = per_process.get_mut(row.process) {
                    agg.sends += row.sends;
                    agg.receives += row.receives;
                    agg.wire_bytes += row.wire_bytes;
                    agg.wire_bytes_full += row.wire_bytes_full;
                    agg.blocked_ns += row.blocked_ns;
                }
            }
            for row in &part.per_channel {
                let agg = channels
                    .entry((row.from, row.to))
                    .or_insert_with(|| ChannelStats {
                        from: row.from,
                        to: row.to,
                        messages: 0,
                        wire_bytes: 0,
                        wire_bytes_full: 0,
                        wire_savings_ratio: 1.0,
                    });
                agg.messages += row.messages;
                agg.wire_bytes += row.wire_bytes;
                agg.wire_bytes_full += row.wire_bytes_full;
            }
        }
        let mut per_channel: Vec<ChannelStats> = channels.into_values().collect();
        for row in &mut per_channel {
            row.wire_savings_ratio = savings_ratio(row.wire_bytes, row.wire_bytes_full);
        }
        let sum = |f: fn(&RunStats) -> u64| parts.iter().map(f).sum::<u64>();
        let max = |f: fn(&RunStats) -> u64| parts.iter().map(f).max().unwrap_or(0);
        let total_wire_bytes = sum(|p| p.total_wire_bytes);
        let total_wire_bytes_full = sum(|p| p.total_wire_bytes_full);
        RunStats {
            process_count,
            messages: sum(|p| p.messages),
            receives: sum(|p| p.receives),
            total_wire_bytes,
            total_wire_bytes_full,
            total_blocked_ns: sum(|p| p.total_blocked_ns),
            ack_latency_p50_ns: max(|p| p.ack_latency_p50_ns),
            ack_latency_p99_ns: max(|p| p.ack_latency_p99_ns),
            ack_latency_max_ns: max(|p| p.ack_latency_max_ns),
            wakeups: sum(|p| p.wakeups),
            wakeup_p50_ns: max(|p| p.wakeup_p50_ns),
            wakeup_p99_ns: max(|p| p.wakeup_p99_ns),
            wakeup_max_ns: max(|p| p.wakeup_max_ns),
            latency_sample_dropped: sum(|p| p.latency_sample_dropped),
            max_vector_component: max(|p| p.max_vector_component),
            resync_frames: sum(|p| p.resync_frames),
            faults_injected: sum(|p| p.faults_injected),
            wire_savings_ratio: savings_ratio(total_wire_bytes, total_wire_bytes_full),
            per_process,
            per_channel,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// element whose rank is at least `q_num / q_den` of the sample size.
///
/// A run with zero rendezvous produces an empty sample; the answer is then
/// `0`, not a panic or an out-of-bounds read — every percentile field of
/// [`RunStats`] goes through this helper, so stats of empty runs are all
/// zeroes.
///
/// # Panics
///
/// Panics if `q_den` is zero.
pub fn nearest_rank_percentile(sorted: &[u64], q_num: usize, q_den: usize) -> u64 {
    assert!(q_den > 0, "percentile denominator must be positive");
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * q_num)
        .div_ceil(q_den)
        .max(1)
        .min(sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            process_count: 2,
            messages: 5,
            receives: 5,
            total_wire_bytes: 240,
            total_wire_bytes_full: 320,
            total_blocked_ns: 9000,
            ack_latency_p50_ns: 400,
            ack_latency_p99_ns: 900,
            ack_latency_max_ns: 950,
            wakeups: 4,
            wakeup_p50_ns: 1200,
            wakeup_p99_ns: 2500,
            wakeup_max_ns: 2600,
            latency_sample_dropped: 0,
            max_vector_component: 5,
            resync_frames: 0,
            faults_injected: 0,
            wire_savings_ratio: 0.75,
            per_process: vec![
                ProcessStats {
                    process: 0,
                    sends: 5,
                    receives: 0,
                    wire_bytes: 120,
                    wire_bytes_full: 160,
                    blocked_ns: 4000,
                },
                ProcessStats {
                    process: 1,
                    sends: 0,
                    receives: 5,
                    wire_bytes: 120,
                    wire_bytes_full: 160,
                    blocked_ns: 5000,
                },
            ],
            per_channel: vec![ChannelStats {
                from: 0,
                to: 1,
                messages: 5,
                wire_bytes: 240,
                wire_bytes_full: 320,
                wire_savings_ratio: 0.75,
            }],
        }
    }

    #[test]
    fn json_roundtrip() {
        let stats = sample();
        let json = stats.to_json();
        assert!(json.contains("\"ack_latency_p99_ns\": 900"));
        assert!(json.contains("\"total_wire_bytes_full\": 320"));
        assert!(json.contains("\"per_channel\""));
        assert!(json.contains("\"wire_savings_ratio\": 0.75"));
        let back = RunStats::from_json(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn savings_ratio_handles_empty_runs() {
        assert!((savings_ratio(240, 320) - 0.75).abs() < 1e-9);
        assert_eq!(savings_ratio(0, 0), 1.0);
    }

    #[test]
    fn merged_sums_counters_and_recomputes_ratios() {
        // Two nodes of one distributed run: node 0 saw the send side of
        // channel (0, 1), node 1 the receive side.
        let mut a = sample();
        a.per_process[1] = ProcessStats {
            process: 1,
            sends: 0,
            receives: 0,
            wire_bytes: 0,
            wire_bytes_full: 0,
            blocked_ns: 0,
        };
        let mut b = sample();
        b.messages = 0;
        b.per_process[0] = ProcessStats {
            process: 0,
            sends: 0,
            receives: 0,
            wire_bytes: 0,
            wire_bytes_full: 0,
            blocked_ns: 0,
        };
        b.per_channel[0].messages = 0; // messages count at the sender only
        let merged = RunStats::merged(&[a.clone(), b]);
        assert_eq!(merged.process_count, 2);
        assert_eq!(merged.messages, 5);
        assert_eq!(merged.receives, 10);
        assert_eq!(merged.total_wire_bytes, 480);
        assert_eq!(merged.total_wire_bytes_full, 640);
        assert!((merged.wire_savings_ratio - 0.75).abs() < 1e-9);
        assert_eq!(merged.per_channel.len(), 1);
        assert_eq!(merged.per_channel[0].messages, 5);
        assert_eq!(merged.per_channel[0].wire_bytes, 480);
        // Percentiles merge as maxima (documented upper bound).
        assert_eq!(merged.ack_latency_p99_ns, 900);
        // Empty merge is all zeroes, ratio 1.0.
        let empty = RunStats::merged(&[]);
        assert_eq!(empty.messages, 0);
        assert_eq!(empty.wire_savings_ratio, 1.0);
    }

    #[test]
    fn percentiles_of_zero_rendezvous_runs_are_zero() {
        // A run that exchanged no messages has an empty latency sample;
        // every percentile must come back 0 rather than panicking or
        // reading out of bounds.
        for (q_num, q_den) in [(0, 100), (50, 100), (99, 100), (100, 100)] {
            assert_eq!(nearest_rank_percentile(&[], q_num, q_den), 0);
        }
    }

    #[test]
    fn nearest_rank_picks_expected_elements() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank_percentile(&sorted, 50, 100), 50);
        assert_eq!(nearest_rank_percentile(&sorted, 99, 100), 99);
        assert_eq!(nearest_rank_percentile(&sorted, 100, 100), 100);
        // Tiny samples: the max(1) clamp keeps the 0th percentile total.
        assert_eq!(nearest_rank_percentile(&[7], 0, 100), 7);
        assert_eq!(nearest_rank_percentile(&[7, 9], 50, 100), 7);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn percentile_rejects_zero_denominator() {
        nearest_rank_percentile(&[1], 50, 0);
    }
}
