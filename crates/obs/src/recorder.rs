//! Low-overhead per-process event recording.
//!
//! Hot-path operations touch only atomics plus one mutex-guarded ring-buffer
//! push; nothing allocates after construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use std::collections::BTreeMap;

use crate::stats::{nearest_rank_percentile, savings_ratio, ChannelStats, ProcessStats, RunStats};

/// What a recorded event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A completed rendezvous send, including its acknowledgement round-trip.
    Send {
        /// Receiving process.
        to: usize,
        /// Bytes put on the wire (payload framing plus piggybacked vector).
        wire_bytes: u64,
        /// Nanoseconds from initiating the send until the ack was merged.
        ack_latency_ns: u64,
    },
    /// A completed receive.
    Receive {
        /// Sending process.
        from: usize,
        /// Bytes taken off the wire.
        wire_bytes: u64,
        /// Nanoseconds this process spent blocked waiting for the message.
        blocked_ns: u64,
    },
    /// A parked thread resumed after its rendezvous condition became true.
    Wakeup {
        /// Nanoseconds between the peer making the condition true (and
        /// notifying) and this process observing it.
        latency_ns: u64,
    },
}

/// One timestamped entry in a process's event ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Nanoseconds since the [`Recorder`] was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: ObsEventKind,
}

/// Fixed-capacity ring that keeps the most recent entries.
#[derive(Debug)]
struct Ring {
    slots: Vec<ObsEvent>,
    capacity: usize,
    /// Total number of pushes ever; `next % capacity` is the write slot.
    next: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    fn push(&mut self, event: ObsEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.next % self.capacity] = event;
        }
        self.next += 1;
    }

    /// Entries in arrival order, oldest retained first.
    fn in_order(&self) -> Vec<ObsEvent> {
        if self.slots.len() < self.capacity || self.capacity == 0 {
            return self.slots.clone();
        }
        let pivot = self.next % self.capacity;
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.slots[pivot..]);
        out.extend_from_slice(&self.slots[..pivot]);
        out
    }

    fn dropped(&self) -> usize {
        self.next.saturating_sub(self.slots.len())
    }
}

/// Per-process instrumentation sink.
///
/// Handed by reference to the thread driving one process; all methods take
/// `&self` and are cheap enough to call on every message.
#[derive(Debug)]
pub struct ProcessRecorder {
    /// This process's id — the channel key half this recorder contributes.
    id: usize,
    sends: AtomicU64,
    receives: AtomicU64,
    wire_bytes: AtomicU64,
    wire_bytes_full: AtomicU64,
    blocked_ns: AtomicU64,
    wakeups: AtomicU64,
    resyncs: AtomicU64,
    faults: AtomicU64,
    /// Per-directed-channel accumulation, keyed `(from, to)`:
    /// `(messages, wire_bytes, wire_bytes_full)`. Uncontended in practice —
    /// only this process's thread writes it.
    channels: Mutex<BTreeMap<(usize, usize), (u64, u64, u64)>>,
    events: Mutex<Ring>,
    epoch: Instant,
}

impl ProcessRecorder {
    fn new(id: usize, ring_capacity: usize, epoch: Instant) -> Self {
        ProcessRecorder {
            id,
            sends: AtomicU64::new(0),
            receives: AtomicU64::new(0),
            wire_bytes: AtomicU64::new(0),
            wire_bytes_full: AtomicU64::new(0),
            blocked_ns: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            channels: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Ring::new(ring_capacity)),
            epoch,
        }
    }

    /// Adds one channel observation: `messages` is 1 only on the send side
    /// so channel message counts stay counted-once while bytes are counted
    /// at both endpoints (the aggregate convention).
    fn record_channel(&self, key: (usize, usize), messages: u64, bytes: u64, bytes_full: u64) {
        let mut map = self.channels.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(key).or_insert((0, 0, 0));
        entry.0 += messages;
        entry.1 += bytes;
        entry.2 += bytes_full;
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, kind: ObsEventKind) {
        let event = ObsEvent {
            at_ns: self.now_ns(),
            kind,
        };
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Records a completed send and its acknowledgement round-trip.
    /// `wire_bytes` is what actually moved (delta-encoded where the caller
    /// uses deltas); `wire_bytes_full` is the full-fixed-width-vector price
    /// of the same rendezvous, accumulated as the savings baseline.
    pub fn record_send(
        &self,
        to: usize,
        wire_bytes: u64,
        wire_bytes_full: u64,
        ack_latency_ns: u64,
    ) {
        self.sends.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes.fetch_add(wire_bytes, Ordering::Relaxed);
        self.wire_bytes_full
            .fetch_add(wire_bytes_full, Ordering::Relaxed);
        self.record_channel((self.id, to), 1, wire_bytes, wire_bytes_full);
        self.push(ObsEventKind::Send {
            to,
            wire_bytes,
            ack_latency_ns,
        });
    }

    /// Records a completed receive and how long the process blocked for it
    /// (`wire_bytes` / `wire_bytes_full` as for
    /// [`ProcessRecorder::record_send`]).
    pub fn record_receive(
        &self,
        from: usize,
        wire_bytes: u64,
        wire_bytes_full: u64,
        blocked_ns: u64,
    ) {
        self.receives.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes.fetch_add(wire_bytes, Ordering::Relaxed);
        self.wire_bytes_full
            .fetch_add(wire_bytes_full, Ordering::Relaxed);
        self.record_channel((from, self.id), 0, wire_bytes, wire_bytes_full);
        self.blocked_ns.fetch_add(blocked_ns, Ordering::Relaxed);
        self.push(ObsEventKind::Receive {
            from,
            wire_bytes,
            blocked_ns,
        });
    }

    /// Adds time spent blocked outside a completed receive (e.g. waiting for
    /// an ack, or blocked on a send that was aborted).
    pub fn record_blocked(&self, blocked_ns: u64) {
        self.blocked_ns.fetch_add(blocked_ns, Ordering::Relaxed);
    }

    /// Records how long a parked rendezvous wait took to resume after its
    /// condition became true (the matcher's wakeup latency). Only sampled
    /// when the thread actually parked; an already-satisfied condition does
    /// not produce a sample.
    pub fn record_wakeup(&self, latency_ns: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.push(ObsEventKind::Wakeup { latency_ns });
    }

    /// Records one full-vector resync frame retransmitted after a detected
    /// delta-stream desynchronisation (counted at the sender, where the
    /// frame is actually re-encoded).
    pub fn record_resync(&self) {
        self.resyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fault-injector action firing on this process (a crash,
    /// delay, or armed desync).
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages sent so far.
    pub fn sends(&self) -> u64 {
        self.sends.load(Ordering::Relaxed)
    }

    /// Messages received so far.
    pub fn receives(&self) -> u64 {
        self.receives.load(Ordering::Relaxed)
    }

    /// Recent events, oldest retained first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_order()
    }
}

/// Event recorder for one run: one [`ProcessRecorder`] per process.
///
/// Create it before spawning process threads, hand each thread
/// [`Recorder::process`] for its own id, and call [`Recorder::finish`] after
/// the run to aggregate a [`RunStats`].
#[derive(Debug)]
pub struct Recorder {
    processes: Vec<ProcessRecorder>,
}

impl Recorder {
    /// A recorder for `process_count` processes, each keeping at most
    /// `ring_capacity` recent events.
    pub fn new(process_count: usize, ring_capacity: usize) -> Self {
        let epoch = Instant::now();
        Recorder {
            processes: (0..process_count)
                .map(|id| ProcessRecorder::new(id, ring_capacity, epoch))
                .collect(),
        }
    }

    /// Number of processes being recorded.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The sink for one process.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn process(&self, id: usize) -> &ProcessRecorder {
        &self.processes[id]
    }

    /// Aggregates everything recorded so far into a [`RunStats`].
    ///
    /// `max_vector_component` is supplied by the caller because vector
    /// contents live in the runtime's clocks, not in this crate.
    ///
    /// Ack-latency percentiles are computed over the send events still held
    /// in the ring buffers; if rings overflowed, the sample is the most
    /// recent events and [`RunStats::latency_sample_dropped`] is nonzero.
    pub fn finish(&self, max_vector_component: u64) -> RunStats {
        let mut per_process = Vec::with_capacity(self.processes.len());
        let mut latencies: Vec<u64> = Vec::new();
        let mut wakeup_latencies: Vec<u64> = Vec::new();
        let mut wakeups = 0u64;
        let mut resync_frames = 0u64;
        let mut faults_injected = 0u64;
        let mut dropped = 0usize;
        let mut channels: BTreeMap<(usize, usize), (u64, u64, u64)> = BTreeMap::new();
        for (id, p) in self.processes.iter().enumerate() {
            per_process.push(ProcessStats {
                process: id,
                sends: p.sends.load(Ordering::Relaxed),
                receives: p.receives.load(Ordering::Relaxed),
                wire_bytes: p.wire_bytes.load(Ordering::Relaxed),
                wire_bytes_full: p.wire_bytes_full.load(Ordering::Relaxed),
                blocked_ns: p.blocked_ns.load(Ordering::Relaxed),
            });
            wakeups += p.wakeups.load(Ordering::Relaxed);
            resync_frames += p.resyncs.load(Ordering::Relaxed);
            faults_injected += p.faults.load(Ordering::Relaxed);
            for (key, (msgs, bytes, bytes_full)) in p
                .channels
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
            {
                let entry = channels.entry(*key).or_insert((0, 0, 0));
                entry.0 += msgs;
                entry.1 += bytes;
                entry.2 += bytes_full;
            }
            let ring = p.events.lock().unwrap_or_else(PoisonError::into_inner);
            dropped += ring.dropped();
            for event in ring.in_order() {
                match event.kind {
                    ObsEventKind::Send { ack_latency_ns, .. } => latencies.push(ack_latency_ns),
                    ObsEventKind::Wakeup { latency_ns } => wakeup_latencies.push(latency_ns),
                    ObsEventKind::Receive { .. } => {}
                }
            }
        }
        latencies.sort_unstable();
        wakeup_latencies.sort_unstable();
        let per_channel: Vec<ChannelStats> = channels
            .into_iter()
            .map(
                |((from, to), (messages, wire_bytes, wire_bytes_full))| ChannelStats {
                    from,
                    to,
                    messages,
                    wire_bytes,
                    wire_bytes_full,
                    wire_savings_ratio: savings_ratio(wire_bytes, wire_bytes_full),
                },
            )
            .collect();
        let total_wire_bytes: u64 = per_process.iter().map(|p| p.wire_bytes).sum();
        let total_wire_bytes_full: u64 = per_process.iter().map(|p| p.wire_bytes_full).sum();
        // Nearest-rank percentile; total on empty samples (returns 0), so a
        // run with zero rendezvous aggregates cleanly.
        let pick = nearest_rank_percentile;
        RunStats {
            process_count: self.processes.len(),
            messages: per_process.iter().map(|p| p.sends).sum(),
            receives: per_process.iter().map(|p| p.receives).sum(),
            total_wire_bytes,
            total_wire_bytes_full,
            wire_savings_ratio: savings_ratio(total_wire_bytes, total_wire_bytes_full),
            total_blocked_ns: per_process.iter().map(|p| p.blocked_ns).sum(),
            ack_latency_p50_ns: pick(&latencies, 50, 100),
            ack_latency_p99_ns: pick(&latencies, 99, 100),
            ack_latency_max_ns: latencies.last().copied().unwrap_or(0),
            wakeups,
            wakeup_p50_ns: pick(&wakeup_latencies, 50, 100),
            wakeup_p99_ns: pick(&wakeup_latencies, 99, 100),
            wakeup_max_ns: wakeup_latencies.last().copied().unwrap_or(0),
            latency_sample_dropped: dropped as u64,
            max_vector_component,
            resync_frames,
            faults_injected,
            per_process,
            per_channel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_aggregate() {
        let rec = Recorder::new(2, 16);
        for i in 0..10u64 {
            rec.process(0).record_send(1, 24, 32, (i + 1) * 100);
            rec.process(1).record_receive(0, 24, 32, 50);
        }
        let stats = rec.finish(7);
        assert_eq!(stats.messages, 10);
        assert_eq!(stats.receives, 10);
        assert_eq!(stats.total_wire_bytes, 24 * 20);
        assert_eq!(stats.total_wire_bytes_full, 32 * 20);
        assert_eq!(stats.per_channel.len(), 1);
        let ch = &stats.per_channel[0];
        assert_eq!((ch.from, ch.to), (0, 1));
        assert_eq!(ch.messages, 10);
        assert_eq!(ch.wire_bytes, 24 * 20);
        assert_eq!(ch.wire_bytes_full, 32 * 20);
        assert!((ch.wire_savings_ratio - 0.75).abs() < 1e-12);
        assert!((stats.wire_savings_ratio - 0.75).abs() < 1e-12);
        assert_eq!(stats.ack_latency_p50_ns, 500);
        assert_eq!(stats.ack_latency_p99_ns, 1000);
        assert_eq!(stats.ack_latency_max_ns, 1000);
        assert_eq!(stats.max_vector_component, 7);
        assert_eq!(stats.total_blocked_ns, 10 * 50);
        assert_eq!(stats.latency_sample_dropped, 0);
        assert_eq!(stats.per_process[0].sends, 10);
        assert_eq!(stats.per_process[1].receives, 10);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let rec = Recorder::new(1, 4);
        for i in 0..10u64 {
            rec.process(0).record_send(0, 8, 8, i);
        }
        let events = rec.process(0).events();
        assert_eq!(events.len(), 4);
        let latencies: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                ObsEventKind::Send { ack_latency_ns, .. } => ack_latency_ns,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(latencies, vec![6, 7, 8, 9]);
        let stats = rec.finish(0);
        assert_eq!(stats.latency_sample_dropped, 6);
        assert_eq!(stats.messages, 10); // counters are exact even when the ring drops
    }

    #[test]
    fn zero_capacity_ring_still_counts() {
        let rec = Recorder::new(1, 0);
        rec.process(0).record_send(0, 8, 8, 42);
        assert!(rec.process(0).events().is_empty());
        let stats = rec.finish(1);
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.ack_latency_p50_ns, 0); // no sample retained
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let stats = Recorder::new(3, 8).finish(0);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.ack_latency_p99_ns, 0);
        assert_eq!(stats.per_process.len(), 3);
        assert_eq!(stats.resync_frames, 0);
        assert_eq!(stats.faults_injected, 0);
    }

    #[test]
    fn resync_and_fault_counters_aggregate() {
        let rec = Recorder::new(2, 8);
        rec.process(0).record_resync();
        rec.process(0).record_resync();
        rec.process(1).record_fault();
        let stats = rec.finish(0);
        assert_eq!(stats.resync_frames, 2);
        assert_eq!(stats.faults_injected, 1);
    }
}
