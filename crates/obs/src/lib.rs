//! Runtime observability for synchronous timestamping runs.
//!
//! The paper's protocol (Fig. 5) is a rendezvous protocol: every message is a
//! blocking send matched with a blocking receive plus an acknowledgement
//! round-trip that carries the receiver's vector back to the sender. That
//! makes two operational questions interesting in practice:
//!
//! 1. **How expensive is the protocol?** Each rendezvous costs one ack
//!    round-trip and piggybacks a `d`-component vector on the wire, where `d`
//!    is the number of edge groups in the decomposition. The [`Recorder`]
//!    captures per-process counters and timing samples with low overhead
//!    (atomic counters plus a bounded ring buffer), and [`RunStats`]
//!    summarises a run: message counts, p50/p99 ack latency, total wire
//!    bytes, largest vector component.
//! 2. **What happens when a program misuses the rendezvous?** Two processes
//!    that each wait for the other to send will block forever. The
//!    [`DeadlockDiagnosis`] type describes such a stall as a wait-for graph
//!    and extracts the cycle, so a runtime watchdog can abort with an
//!    actionable error instead of hanging.
//!
//! This crate is deliberately free of any dependency on the runtime itself:
//! `synctime-runtime` records into it, `synctime-cli` and `synctime-bench`
//! read summaries out of it.
//!
//! # Example
//!
//! ```
//! use synctime_obs::{Recorder, WaitOp};
//!
//! let recorder = Recorder::new(2, 64);
//! // Process 0 sends to process 1: 24 actual wire bytes (32 had the
//! // vectors gone out full-width), 1500 ns ack round-trip.
//! recorder.process(0).record_send(1, 24, 32, 1_500);
//! recorder.process(1).record_receive(0, 24, 32, 800);
//!
//! let stats = recorder.finish(3);
//! assert_eq!(stats.messages, 1);
//! assert_eq!(stats.total_wire_bytes, 48); // counted at both endpoints
//! assert_eq!(stats.total_wire_bytes_full, 64);
//! assert_eq!(stats.max_vector_component, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deadlock;
mod recorder;
mod stats;

pub use deadlock::{DeadlockDiagnosis, WaitEdge, WaitOp};
pub use recorder::{ObsEvent, ObsEventKind, ProcessRecorder, Recorder};
pub use stats::{nearest_rank_percentile, ChannelStats, ProcessStats, RunStats};
