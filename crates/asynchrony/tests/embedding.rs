//! Cross-model properties: converting asynchronous computations to
//! synchronous ones preserves causality (and only ever *adds* order —
//! the rendezvous couples each receive back to its sender).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synctime_asynchrony::{AsyncBuilder, AsyncComputation, AsyncEventId};
use synctime_trace::{EventId, Oracle};

/// A random async computation whose deliveries happen immediately after
/// their sends (FIFO-ish), which keeps many of them synchronizable.
fn random_async(n: usize, steps: usize, eagerness: f64, rng: &mut StdRng) -> AsyncComputation {
    loop {
        let mut b = AsyncBuilder::new(n);
        let mut pending: Vec<(usize, String)> = Vec::new();
        let mut next_key = 0usize;
        for _ in 0..steps {
            let deliver = !pending.is_empty() && rng.gen_bool(eagerness);
            if deliver {
                let (q, key) = pending.remove(0);
                b.receive(q, &key).unwrap();
            } else {
                let p = rng.gen_range(0..n);
                let mut q = rng.gen_range(0..n);
                while q == p {
                    q = rng.gen_range(0..n);
                }
                let key = format!("k{next_key}");
                next_key += 1;
                b.send(p, &key).unwrap();
                pending.push((q, key));
            }
        }
        for (q, key) in pending.drain(..) {
            b.receive(q, &key).unwrap();
        }
        if let Ok(c) = b.build() {
            return c;
        }
    }
}

#[test]
fn synchronization_only_adds_order() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut converted = 0;
    for _ in 0..40 {
        let ac = random_async(4, 20, 0.7, &mut rng);
        let Ok(sc) = ac.to_synchronous() else {
            continue; // crossings: legitimately unsynchronizable
        };
        converted += 1;
        // Event positions carry over one-to-one (same per-process slots).
        let poset = ac.event_poset();
        let oracle = Oracle::new(&sc);
        for e in ac.events() {
            for f in ac.events() {
                if e == f {
                    continue;
                }
                let async_hb = ac.happened_before(&poset, e, f);
                let sync_hb = oracle.happened_before(
                    &sc,
                    EventId::new(e.process, e.index),
                    EventId::new(f.process, f.index),
                );
                // Async order is preserved; the rendezvous may add more
                // (receive -> sender's later events via the ack).
                if async_hb {
                    assert!(sync_hb, "{e} -> {f} lost in conversion");
                }
            }
        }
    }
    assert!(
        converted >= 5,
        "expected several synchronizable samples, got {converted}"
    );
}

#[test]
fn rendezvous_adds_the_ack_edge() {
    // Async: r(m) does NOT precede the sender's later events; sync: it does.
    let mut b = AsyncBuilder::new(2);
    b.send(0, "m").unwrap();
    b.internal(0).unwrap(); // sender's later event
    b.receive(1, "m").unwrap();
    let ac = b.build().unwrap();
    let poset = ac.event_poset();
    let r = AsyncEventId {
        process: 1,
        index: 0,
    };
    let later = AsyncEventId {
        process: 0,
        index: 1,
    };
    assert!(
        !ac.happened_before(&poset, r, later),
        "no ack in the async model"
    );

    let sc = ac.to_synchronous().unwrap();
    let oracle = Oracle::new(&sc);
    assert!(
        oracle.happened_before(&sc, EventId::new(1, 0), EventId::new(0, 1)),
        "the rendezvous acknowledgement orders r(m) before the sender's next event"
    );
}

#[test]
fn eager_delivery_is_always_synchronizable() {
    // If every message is delivered before anything else happens, the
    // computation is trivially a rendezvous schedule.
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..20 {
        let ac = random_async(3, 14, 1.0, &mut rng);
        assert!(ac.to_synchronous().is_ok());
    }
}
