//! Classical Fidge–Mattern vector clocks for asynchronous computations:
//! one component per process, each event increments its own component,
//! receives merge the piggybacked vector. These clocks are the baseline
//! the paper starts from — and, by Charron-Bost's bound realized in
//! [`crate::charron_bost`], they cannot be shrunk in the asynchronous
//! model without losing the characterization.

use synctime_core::VectorTime;

use crate::computation::{AsyncComputation, AsyncEvent, AsyncEventId};

/// Per-event Fidge–Mattern vectors for an asynchronous computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncEventClocks {
    stamps: Vec<Vec<VectorTime>>,
}

impl AsyncEventClocks {
    /// The vector of an event.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn vector(&self, e: AsyncEventId) -> &VectorTime {
        &self.stamps[e.process][e.index]
    }

    /// `e → f ⟺ v(e) < v(f)` — the classical FM characterization (every
    /// event increments its own component, so distinct events never share
    /// a vector).
    pub fn happened_before(&self, e: AsyncEventId, f: AsyncEventId) -> bool {
        self.vector(e) < self.vector(f)
    }

    /// Whether the clocks agree with the ground-truth poset on every pair.
    pub fn encodes(&self, computation: &AsyncComputation) -> bool {
        let poset = computation.event_poset();
        let events: Vec<AsyncEventId> = computation.events().collect();
        events.iter().all(|&e| {
            events.iter().all(|&f| {
                e == f || self.happened_before(e, f) == computation.happened_before(&poset, e, f)
            })
        })
    }
}

/// Computes FM clocks for every event: process `p`'s component counts its
/// events; receives additionally merge the sender's vector at the send.
///
/// The walk follows any topological order of the event poset; the result
/// is schedule-independent.
pub fn fm_event_clocks(computation: &AsyncComputation) -> AsyncEventClocks {
    let n = computation.process_count();
    let poset = computation.event_poset();
    let order = poset.linear_extension();
    // Dense index -> event id.
    let mut by_index = Vec::new();
    for e in computation.events() {
        by_index.push(e);
    }
    let mut clocks: Vec<VectorTime> = vec![VectorTime::zero(n); n];
    let mut send_vectors: Vec<Option<VectorTime>> = vec![None; computation.message_count()];
    let mut stamps: Vec<Vec<Option<VectorTime>>> = (0..n)
        .map(|p| vec![None; computation.history(p).len()])
        .collect();
    for &dense in &order {
        let e = by_index[dense];
        let p = e.process;
        match computation.history(p)[e.index] {
            AsyncEvent::Internal => {
                clocks[p].increment(p);
            }
            AsyncEvent::Send(k) => {
                clocks[p].increment(p);
                send_vectors[k] = Some(clocks[p].clone());
            }
            AsyncEvent::Receive(k) => {
                let piggyback = send_vectors[k]
                    .clone()
                    .expect("topological order places the send first");
                clocks[p]
                    .merge_max(&piggyback)
                    .expect("all Fidge–Mattern clocks share dimension N");
                clocks[p].increment(p);
            }
        }
        stamps[p][e.index] = Some(clocks[p].clone());
    }
    AsyncEventClocks {
        stamps: stamps
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|s| s.expect("every event stamped"))
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::{charron_bost, AsyncBuilder};

    #[test]
    fn encodes_simple_chains_and_crossings() {
        let mut b = AsyncBuilder::new(3);
        b.send(0, "a").unwrap();
        b.send(1, "b").unwrap();
        b.receive(1, "a").unwrap();
        b.receive(2, "b").unwrap();
        b.internal(2).unwrap();
        let c = b.build().unwrap();
        let clocks = fm_event_clocks(&c);
        assert!(clocks.encodes(&c));
    }

    #[test]
    fn encodes_charron_bost() {
        for n in [3usize, 4] {
            let c = charron_bost(n);
            let clocks = fm_event_clocks(&c);
            assert!(clocks.encodes(&c), "n = {n}");
            // And the vectors are n-dimensional — Charron-Bost says no
            // characterizing scheme can do better here.
            let any = c.events().next().unwrap();
            assert_eq!(clocks.vector(any).dim(), n);
        }
    }

    #[test]
    fn encodes_random_async_computations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..20 {
            let n = rng.gen_range(2..6);
            let mut b = AsyncBuilder::new(n);
            let mut pending: Vec<(usize, String)> = Vec::new();
            let mut next_key = 0usize;
            for _ in 0..rng.gen_range(1..25) {
                match rng.gen_range(0..3) {
                    0 => {
                        let p = rng.gen_range(0..n);
                        let key = format!("k{next_key}");
                        next_key += 1;
                        b.send(p, &key).unwrap();
                        let q = rng.gen_range(0..n);
                        pending.push((q, key));
                    }
                    1 if !pending.is_empty() => {
                        let (q, key) = pending.swap_remove(rng.gen_range(0..pending.len()));
                        b.receive(q, &key).unwrap();
                    }
                    _ => {
                        b.internal(rng.gen_range(0..n)).unwrap();
                    }
                }
            }
            // Drain undelivered messages.
            for (q, key) in pending.drain(..) {
                b.receive(q, &key).unwrap();
            }
            let c = match b.build() {
                Ok(c) => c,
                Err(e) => panic!("trial {trial}: construction should be causal: {e}"),
            };
            assert!(fm_event_clocks(&c).encodes(&c), "trial {trial}");
        }
    }

    #[test]
    fn synchronizable_async_computation_converts() {
        // Sequential request/response is realizable synchronously.
        let mut b = AsyncBuilder::new(2);
        b.send(0, "req").unwrap();
        b.receive(1, "req").unwrap();
        b.send(1, "resp").unwrap();
        b.receive(0, "resp").unwrap();
        let c = b.build().unwrap();
        let sync = c.to_synchronous().unwrap();
        assert_eq!(sync.message_count(), 2);
    }

    #[test]
    fn charron_bost_is_not_synchronizable() {
        for n in [2usize, 3, 4] {
            let c = charron_bost(n);
            assert!(
                c.to_synchronous().is_err(),
                "the crown schedule must not be realizable by rendezvous (n={n})"
            );
        }
    }
}
