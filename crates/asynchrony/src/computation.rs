use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use synctime_poset::Poset;
use synctime_trace::{EventKind, MessageId, ProcessId, SyncComputation, TraceError};

/// One slot of an asynchronous process history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsyncEvent {
    /// A non-blocking send of the message with the given key.
    Send(usize),
    /// Delivery of the message with the given key.
    Receive(usize),
    /// A local step.
    Internal,
}

/// Addresses an event: the `index`-th slot of `process`'s history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsyncEventId {
    /// The process the event occurs on.
    pub process: ProcessId,
    /// The position within that process's history.
    pub index: usize,
}

impl fmt::Display for AsyncEventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}[{}]", self.process + 1, self.index)
    }
}

/// Errors from building asynchronous computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsyncError {
    /// A process id was out of range.
    ProcessOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The number of processes.
        process_count: usize,
    },
    /// A message key was sent or received more than once.
    DuplicateKey {
        /// The duplicated key (hashed from the caller's label).
        key: String,
    },
    /// A message was received but never sent, or vice versa.
    UnmatchedKey {
        /// The offending key.
        key: String,
    },
    /// A message's receive happens causally before its send (the history
    /// is not a possible execution).
    CausalityViolation {
        /// The offending key.
        key: String,
    },
    /// A process sent a message to itself... which is fine asynchronously,
    /// but the receive must come after the send on that process.
    SelfReceiveBeforeSend {
        /// The offending key.
        key: String,
    },
}

impl fmt::Display for AsyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncError::ProcessOutOfRange {
                process,
                process_count,
            } => {
                write!(
                    f,
                    "process {process} out of range ({process_count} processes)"
                )
            }
            AsyncError::DuplicateKey { key } => write!(f, "message key `{key}` used twice"),
            AsyncError::UnmatchedKey { key } => {
                write!(f, "message key `{key}` lacks a matching send/receive")
            }
            AsyncError::CausalityViolation { key } => {
                write!(f, "message `{key}` would be received before it is sent")
            }
            AsyncError::SelfReceiveBeforeSend { key } => {
                write!(f, "self-message `{key}` received before its send")
            }
        }
    }
}

impl std::error::Error for AsyncError {}

/// Builds an [`AsyncComputation`] by appending events per process in local
/// order. Message keys are arbitrary strings pairing each send with its
/// receive.
#[derive(Debug, Clone, Default)]
pub struct AsyncBuilder {
    process_count: usize,
    histories: Vec<Vec<(AsyncEvent, String)>>,
}

impl AsyncBuilder {
    /// Starts a computation on `process_count` processes.
    pub fn new(process_count: usize) -> Self {
        AsyncBuilder {
            process_count,
            histories: vec![Vec::new(); process_count],
        }
    }

    fn check(&self, p: ProcessId) -> Result<(), AsyncError> {
        if p >= self.process_count {
            return Err(AsyncError::ProcessOutOfRange {
                process: p,
                process_count: self.process_count,
            });
        }
        Ok(())
    }

    /// Appends a non-blocking send of message `key` on `process`.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncError::ProcessOutOfRange`] for a bad process.
    pub fn send(&mut self, process: ProcessId, key: &str) -> Result<AsyncEventId, AsyncError> {
        self.check(process)?;
        self.histories[process].push((AsyncEvent::Send(0), key.to_string()));
        Ok(AsyncEventId {
            process,
            index: self.histories[process].len() - 1,
        })
    }

    /// Appends the delivery of message `key` on `process`.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncError::ProcessOutOfRange`] for a bad process.
    pub fn receive(&mut self, process: ProcessId, key: &str) -> Result<AsyncEventId, AsyncError> {
        self.check(process)?;
        self.histories[process].push((AsyncEvent::Receive(0), key.to_string()));
        Ok(AsyncEventId {
            process,
            index: self.histories[process].len() - 1,
        })
    }

    /// Appends an internal event on `process`.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncError::ProcessOutOfRange`] for a bad process.
    pub fn internal(&mut self, process: ProcessId) -> Result<AsyncEventId, AsyncError> {
        self.check(process)?;
        self.histories[process].push((AsyncEvent::Internal, String::new()));
        Ok(AsyncEventId {
            process,
            index: self.histories[process].len() - 1,
        })
    }

    /// Validates the histories and produces the computation.
    ///
    /// # Errors
    ///
    /// Any [`AsyncError`]: unmatched or duplicate keys, or a causally
    /// impossible delivery (a cycle through process order and send→receive
    /// edges).
    pub fn build(self) -> Result<AsyncComputation, AsyncError> {
        // Pair keys.
        let mut sends: BTreeMap<String, AsyncEventId> = BTreeMap::new();
        let mut recvs: BTreeMap<String, AsyncEventId> = BTreeMap::new();
        for (p, h) in self.histories.iter().enumerate() {
            for (i, (ev, key)) in h.iter().enumerate() {
                let id = AsyncEventId {
                    process: p,
                    index: i,
                };
                match ev {
                    AsyncEvent::Send(_) => {
                        if sends.insert(key.clone(), id).is_some() {
                            return Err(AsyncError::DuplicateKey { key: key.clone() });
                        }
                    }
                    AsyncEvent::Receive(_) => {
                        if recvs.insert(key.clone(), id).is_some() {
                            return Err(AsyncError::DuplicateKey { key: key.clone() });
                        }
                    }
                    AsyncEvent::Internal => {}
                }
            }
        }
        for key in sends.keys() {
            if !recvs.contains_key(key) {
                return Err(AsyncError::UnmatchedKey { key: key.clone() });
            }
        }
        for key in recvs.keys() {
            if !sends.contains_key(key) {
                return Err(AsyncError::UnmatchedKey { key: key.clone() });
            }
        }
        // Renumber keys by send order (process-major) into message ids.
        let keys: Vec<String> = sends.keys().cloned().collect();
        let key_id: BTreeMap<&str, usize> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_str(), i))
            .collect();
        let histories: Vec<Vec<AsyncEvent>> = self
            .histories
            .iter()
            .map(|h| {
                h.iter()
                    .map(|(ev, key)| match ev {
                        AsyncEvent::Send(_) => AsyncEvent::Send(key_id[key.as_str()]),
                        AsyncEvent::Receive(_) => AsyncEvent::Receive(key_id[key.as_str()]),
                        AsyncEvent::Internal => AsyncEvent::Internal,
                    })
                    .collect()
            })
            .collect();
        let comp = AsyncComputation {
            process_count: self.process_count,
            histories,
            send_of: keys.iter().map(|k| sends[k]).collect(),
            receive_of: keys.iter().map(|k| recvs[k]).collect(),
            keys: keys.clone(),
        };
        // Causality: the event relation must be acyclic.
        if comp.event_poset_checked().is_none() {
            // Identify some offending key for the error message.
            for (k, key) in keys.iter().enumerate() {
                let (s, r) = (comp.send_of[k], comp.receive_of[k]);
                if s.process == r.process && r.index < s.index {
                    return Err(AsyncError::SelfReceiveBeforeSend { key: key.clone() });
                }
            }
            let key = keys.first().cloned().unwrap_or_default();
            return Err(AsyncError::CausalityViolation { key });
        }
        Ok(comp)
    }
}

/// A completed asynchronous computation: per-process histories with
/// decoupled send/receive events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncComputation {
    process_count: usize,
    histories: Vec<Vec<AsyncEvent>>,
    send_of: Vec<AsyncEventId>,
    receive_of: Vec<AsyncEventId>,
    keys: Vec<String>,
}

impl AsyncComputation {
    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.process_count
    }

    /// Number of messages.
    pub fn message_count(&self) -> usize {
        self.send_of.len()
    }

    /// The history of one process.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn history(&self, p: ProcessId) -> &[AsyncEvent] {
        &self.histories[p]
    }

    /// All events, process-major.
    pub fn events(&self) -> impl Iterator<Item = AsyncEventId> + '_ {
        (0..self.process_count).flat_map(move |p| {
            (0..self.histories[p].len()).map(move |i| AsyncEventId {
                process: p,
                index: i,
            })
        })
    }

    /// The send and receive events of message `k`.
    pub fn message_endpoints(&self, k: usize) -> (AsyncEventId, AsyncEventId) {
        (self.send_of[k], self.receive_of[k])
    }

    /// Dense event numbering used by the poset representation.
    pub fn event_index(&self, e: AsyncEventId) -> usize {
        let mut base = 0;
        for p in 0..e.process {
            base += self.histories[p].len();
        }
        base + e.index
    }

    fn event_poset_checked(&self) -> Option<Poset> {
        let total: usize = self.histories.iter().map(Vec::len).sum();
        let mut pairs = Vec::new();
        for p in 0..self.process_count {
            for i in 1..self.histories[p].len() {
                let a = self.event_index(AsyncEventId {
                    process: p,
                    index: i - 1,
                });
                let b = self.event_index(AsyncEventId {
                    process: p,
                    index: i,
                });
                pairs.push((a, b));
            }
        }
        for k in 0..self.send_of.len() {
            pairs.push((
                self.event_index(self.send_of[k]),
                self.event_index(self.receive_of[k]),
            ));
        }
        Poset::from_cover_edges(total, &pairs).ok()
    }

    /// The ground-truth happened-before poset over all events (process
    /// order + send→receive edges, transitively closed).
    ///
    /// # Panics
    ///
    /// Never for computations produced by [`AsyncBuilder::build`], which
    /// validated acyclicity.
    pub fn event_poset(&self) -> Poset {
        self.event_poset_checked()
            .expect("builder validated acyclicity")
    }

    /// Lamport's happened-before between two events.
    pub fn happened_before(&self, poset: &Poset, e: AsyncEventId, f: AsyncEventId) -> bool {
        poset.lt(self.event_index(e), self.event_index(f))
    }

    /// Attempts to reinterpret this computation as a **synchronous** one:
    /// succeeds iff the messages can be totally ordered consistently with
    /// both endpoints' local orders (no crossings) — the vertical-drawing
    /// criterion. Internal events between the original send and receive of
    /// a message cannot be preserved in general; they are kept relative to
    /// the merged rendezvous point of each message.
    ///
    /// # Errors
    ///
    /// [`TraceError::NotSynchronous`] when crossings make the computation
    /// unrealizable under rendezvous; other [`TraceError`]s for malformed
    /// self-messages.
    pub fn to_synchronous(&self) -> Result<SyncComputation, TraceError> {
        let sequences: Vec<Vec<EventKind>> = self
            .histories
            .iter()
            .map(|h| {
                h.iter()
                    .map(|ev| match ev {
                        AsyncEvent::Send(k) => EventKind::Send(MessageId(*k)),
                        AsyncEvent::Receive(k) => EventKind::Receive(MessageId(*k)),
                        AsyncEvent::Internal => EventKind::Internal,
                    })
                    .collect()
            })
            .collect();
        SyncComputation::from_process_sequences(sequences)
    }
}

/// Charron-Bost's lower-bound computation on `n` processes: every process
/// broadcasts, then receives from everyone, with `P_i`'s message to
/// `P_{(i+1) mod n}` delivered **last** — after `P_{(i+1)}` has received
/// from everyone else. The event poset restricted to the broadcast events
/// and the "received all but one" points is the crown `S_n`, so any
/// order-characterizing vector timestamps for this computation need `n`
/// components.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn charron_bost(n: usize) -> AsyncComputation {
    assert!(n >= 2, "the construction needs n >= 2");
    let mut b = AsyncBuilder::new(n);
    // Broadcast phase: one send per ordered pair (i -> j).
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.send(i, &format!("m{i}->{j}")).expect("valid process");
            }
        }
    }
    // Receive phase on process p: from everyone except p-1 first (in
    // ascending order), then from p-1 last.
    for p in 0..n {
        let late = (p + n - 1) % n;
        for j in 0..n {
            if j != p && j != late {
                b.receive(p, &format!("m{j}->{p}")).expect("valid process");
            }
        }
        b.receive(p, &format!("m{late}->{p}"))
            .expect("valid process");
    }
    b.build()
        .expect("the Charron-Bost schedule is causally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut b = AsyncBuilder::new(2);
        let s = b.send(0, "x").unwrap();
        let i = b.internal(0).unwrap();
        let r = b.receive(1, "x").unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.process_count(), 2);
        assert_eq!(c.message_count(), 1);
        assert_eq!(c.message_endpoints(0), (s, r));
        let poset = c.event_poset();
        assert!(c.happened_before(&poset, s, r));
        assert!(c.happened_before(&poset, s, i));
        assert!(!c.happened_before(&poset, r, i));
    }

    #[test]
    fn crossing_messages_are_legal_async() {
        let mut b = AsyncBuilder::new(2);
        let s0 = b.send(0, "a").unwrap();
        let s1 = b.send(1, "b").unwrap();
        let r0 = b.receive(0, "b").unwrap();
        let r1 = b.receive(1, "a").unwrap();
        let c = b.build().unwrap();
        let poset = c.event_poset();
        // The sends are concurrent; each send precedes the other side's
        // receive.
        assert!(!c.happened_before(&poset, s0, s1));
        assert!(!c.happened_before(&poset, s1, s0));
        assert!(c.happened_before(&poset, s0, r1));
        assert!(c.happened_before(&poset, s1, r0));
    }

    #[test]
    fn validation_errors() {
        let mut b = AsyncBuilder::new(1);
        assert!(matches!(
            b.send(5, "x"),
            Err(AsyncError::ProcessOutOfRange { .. })
        ));

        let mut b = AsyncBuilder::new(2);
        b.send(0, "x").unwrap();
        b.send(1, "x").unwrap();
        b.receive(0, "x").unwrap();
        assert!(matches!(b.build(), Err(AsyncError::DuplicateKey { .. })));

        let mut b = AsyncBuilder::new(2);
        b.send(0, "x").unwrap();
        assert!(matches!(b.build(), Err(AsyncError::UnmatchedKey { .. })));

        let mut b = AsyncBuilder::new(2);
        b.receive(0, "x").unwrap();
        assert!(matches!(b.build(), Err(AsyncError::UnmatchedKey { .. })));

        // Self-message delivered before its own send.
        let mut b = AsyncBuilder::new(1);
        b.receive(0, "x").unwrap();
        b.send(0, "x").unwrap();
        assert!(matches!(
            b.build(),
            Err(AsyncError::SelfReceiveBeforeSend { .. })
        ));
    }

    #[test]
    fn cyclic_delivery_rejected() {
        // P0 receives m2 before sending m1; P1 receives m1 before sending
        // m2: a genuine causal cycle.
        let mut b = AsyncBuilder::new(2);
        b.receive(0, "m2").unwrap();
        b.send(0, "m1").unwrap();
        b.receive(1, "m1").unwrap();
        b.send(1, "m2").unwrap();
        assert!(matches!(
            b.build(),
            Err(AsyncError::CausalityViolation { .. })
        ));
    }

    #[test]
    fn charron_bost_embeds_the_crown() {
        for n in [3usize, 4, 5] {
            let c = charron_bost(n);
            assert_eq!(c.message_count(), n * (n - 1));
            let poset = c.event_poset();
            // a_i := P_i's first send (below its whole broadcast); b_i :=
            // the event on P_{i+1} just before it receives from P_i, i.e.
            // its second-to-last receive.
            let a: Vec<AsyncEventId> = (0..n)
                .map(|i| AsyncEventId {
                    process: i,
                    index: 0,
                })
                .collect();
            let b: Vec<AsyncEventId> = (0..n)
                .map(|i| {
                    let host = (i + 1) % n;
                    let len = c.history(host).len();
                    AsyncEventId {
                        process: host,
                        index: len - 2,
                    }
                })
                .collect();
            for i in 0..n {
                for j in 0..n {
                    let ordered = c.happened_before(&poset, a[j], b[i]);
                    if i == j {
                        assert!(!ordered, "a_{i} must be concurrent with b_{i}");
                        assert!(!c.happened_before(&poset, b[i], a[i]));
                    } else {
                        assert!(ordered, "a_{j} must precede b_{i}");
                    }
                }
            }
        }
    }
}
