//! Asynchronous message-passing computations — the contrast case.
//!
//! The paper's premise rests on a dichotomy:
//!
//! * for **asynchronous** computations, Charron-Bost showed vector clocks
//!   of size `N` are necessary in the worst case (the crown construction,
//!   see [`charron_bost`] and
//!   [`synctime_poset::dimension::charron_bost_events`]);
//! * for **synchronous** computations, the rendezvous couples every send
//!   to its receive, caps the message-poset width at `⌊N/2⌋`, and lets
//!   timestamps shrink to the edge-decomposition dimension.
//!
//! This crate supplies the asynchronous side so the dichotomy is testable
//! in one workspace: an [`AsyncComputation`] model where sends and
//! receives are decoupled (crossing messages allowed!), classical
//! Fidge–Mattern clocks over it ([`fm_event_clocks`]), a ground-truth
//! happened-before oracle, and conversions showing exactly which
//! asynchronous computations are realizable synchronously
//! ([`AsyncComputation::to_synchronous`]).
//!
//! # Example: crossing messages
//!
//! ```
//! use synctime_asynchrony::AsyncBuilder;
//!
//! // Both processes send before they receive — fine asynchronously,
//! // impossible under rendezvous.
//! let mut b = AsyncBuilder::new(2);
//! b.send(0, "a")?;
//! b.send(1, "b")?;
//! b.receive(0, "b")?;
//! b.receive(1, "a")?;
//! let comp = b.build()?;
//! assert!(comp.to_synchronous().is_err(), "not realizable synchronously");
//! # Ok::<(), synctime_asynchrony::AsyncError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod computation;
mod fm;

pub use computation::{
    charron_bost, AsyncBuilder, AsyncComputation, AsyncError, AsyncEvent, AsyncEventId,
};
pub use fm::{fm_event_clocks, AsyncEventClocks};
