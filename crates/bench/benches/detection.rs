//! Cost of the application layer: weak-conjunctive-predicate detection and
//! orphan/recovery analysis, both driven purely by timestamp comparisons
//! of dimension `d` — the payoff of small vectors at query time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use synctime_core::events::stamp_events;
use synctime_core::online::OnlineStamper;
use synctime_detect::{orphans, wcp};
use synctime_graph::{decompose, topology};
use synctime_sim::workload::RandomWorkload;
use synctime_trace::EventId;

fn bench_detection(c: &mut Criterion) {
    let topo = topology::client_server(3, 9);
    let dec = decompose::best_known(&topo);
    let mut rng = StdRng::seed_from_u64(21);

    let mut group = c.benchmark_group("detection");
    group.sample_size(10);
    for msgs in [100usize, 400] {
        let comp = RandomWorkload::messages(msgs)
            .with_internal_events(msgs)
            .generate(&topo, &mut rng);
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let events = stamp_events(&comp, &stamps);
        // Candidate slots: each client's internal events.
        let slots: Vec<Vec<EventId>> = (3..topo.node_count())
            .map(|p| {
                comp.history(p)
                    .iter()
                    .enumerate()
                    .filter(|(_, ev)| ev.is_internal())
                    .map(|(i, _)| EventId::new(p, i))
                    .collect()
            })
            .filter(|v: &Vec<EventId>| !v.is_empty())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("wcp_possibly", msgs),
            &slots,
            |b, slots| b.iter(|| black_box(wcp::possibly(&events, black_box(slots)))),
        );

        let failures = [orphans::Failure {
            process: rng.gen_range(0..3),
            surviving_events: 1,
        }];
        group.bench_with_input(BenchmarkId::new("recovery_line", msgs), &comp, |b, comp| {
            b.iter(|| black_box(orphans::recovery_line(black_box(comp), &events, &failures)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
