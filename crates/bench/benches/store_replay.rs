//! Experiment R11: durable ingestion and replay throughput.
//!
//! The `synctime-store` crate claims two things worth numbers: streaming
//! every stamp to an append-only log costs almost nothing on top of the
//! run itself (the writer thread drains a channel off the critical path),
//! and recovery replays the persisted records fast enough that restarting
//! a serving node is bounded by I/O, not by parsing. This bench measures
//! both over the same workload:
//!
//! * `ingest` — a rendezvous-heavy ring run, once bare and once with a
//!   store writer attached via the runtime's log sink. The timed window
//!   for the `persist` variant is the *run itself* (every rendezvous,
//!   with the writer draining concurrently): the derived
//!   `ingest_overhead` ratio must stay <= 1.10 on full reports from any
//!   machine with a second hardware thread, because durability may not
//!   tax the protocol. On a single hardware thread the writer's own
//!   encode/write CPU cannot overlap the run — total CPU is conserved —
//!   so the wall ratio necessarily absorbs it; such reports (the
//!   `parallelism` field records the host's thread count) are gated at
//!   the looser serial ceiling instead, still a real regression bound.
//!   The `channel` variant (a sink that receives and discards) isolates
//!   what the run itself pays to emit events — the part of the tax that
//!   survives on any machine. The drain-and-seal that follows the last
//!   rendezvous (compaction snapshot + fsync) is the price of
//!   *finishing* a durable trace, not of running one — it is reported
//!   separately as the `seal` variant.
//! * `replay` — recover the persisted trace directory back into
//!   per-process logs (`read_trace_dir`: scan, CRC-check, dedup, trim)
//!   and reconstruct the stamps (`materialize`). The derived
//!   `replay_records_per_sec` (recovery only, the restart-critical path)
//!   must sustain >= 20,000 records/s on full reports.
//!
//! The recovered logs are asserted equal to the run's own logs before the
//! report is emitted (`derived.round_trip_identical`).
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench store_replay                # full run, JSON to stdout
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks the workload to CI scale (and lifts the floors —
//! tiny runs are dominated by fixed fsync costs); `--out` writes the
//! JSON report to a file; `--validate` checks an existing report (e.g.
//! the checked-in `results/BENCH_store.json`) against the
//! `synctime/bench_store/v1` record schema, including both floors on
//! full reports, and fails the process if it does not conform.

use std::path::Path;
use std::time::Instant;

use serde_json::Value;
use synctime_graph::{decompose, topology};
use synctime_runtime::{Behavior, LogEntry, Runtime};

const SCHEMA: &str = "synctime/bench_store/v1";

/// Ring width for the ingest workload (must be even for the send/receive
/// phasing below).
const RING: usize = 8;

/// The ingest-overhead ceiling enforced on full reports from machines
/// with at least two hardware threads, where the store writer's CPU
/// overlaps the run and the wall ratio measures what durability costs
/// the protocol.
const INGEST_CEILING: f64 = 1.10;

/// The ceiling for full reports from a single hardware thread, where
/// every cycle the writer spends encoding and writing is a cycle taken
/// from the run: the wall ratio then bounds run + writer CPU combined,
/// and 10% is physically unreachable however cheap the seam is.
const SERIAL_INGEST_CEILING: f64 = 1.5;

/// The replay-throughput floor (records/s) enforced on full reports.
const REPLAY_FLOOR: f64 = 20_000.0;

/// Timed repetitions per ingest variant; the best (minimum) elapsed time
/// is reported, the standard way to strip scheduler noise from a ratio.
const INGEST_REPS: usize = 3;

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

// -------------------------------------------------------------- workload

/// One behavior of the ring workload: even processes send right then
/// receive from the left, odd processes the reverse, `rounds` times —
/// every process logs two entries per round and no pairing can deadlock.
fn ring_behavior(p: usize, n: usize, rounds: u64) -> Behavior {
    let right = (p + 1) % n;
    let left = (p + n - 1) % n;
    Box::new(move |ctx| {
        if p % 2 == 0 {
            for r in 0..rounds {
                ctx.send(right, r)?;
                ctx.receive_from(left)?;
            }
        } else {
            for _ in 0..rounds {
                let (x, _) = ctx.receive_from(left)?;
                ctx.send(right, x)?;
            }
        }
        Ok(())
    })
}

/// Runs the ring workload once. Returns `(run_ns, seal_ns, logs)`:
/// `run_ns` times the run itself — every rendezvous, with the store
/// writer (if any) draining concurrently — which is the window the
/// overhead claim is about; `seal_ns` times the drain-and-seal after the
/// last rendezvous (remaining queue, compaction snapshot, fsync), the
/// one-off cost of finishing a durable trace (zero when not persisting).
/// What drains the runtime's log sink during an ingest measurement.
enum Sink<'a> {
    /// No sink at all: the baseline run.
    Bare,
    /// A thread that receives and drops every event: isolates the
    /// channel tax (clone + send + wakeups) from the store writer.
    Channel,
    /// The real `synctime-store` writer persisting to `(root, trace)`.
    Store(&'a Path, &'a str),
}

fn run_ring(rounds: u64, sink: Sink) -> (u128, u128, Vec<Vec<LogEntry>>) {
    let topo = topology::cycle(RING);
    let dec = decompose::best_known(&topo);
    let mut rt = Runtime::new(&topo, &dec);
    let mut writer = None;
    let mut drainer = None;
    match sink {
        Sink::Bare => {}
        Sink::Channel => {
            let (tx, rx) = std::sync::mpsc::channel::<Vec<synctime_store::PersistEvent>>();
            drainer = Some(std::thread::spawn(move || while rx.recv().is_ok() {}));
            rt = rt.with_log_sink(tx);
        }
        Sink::Store(root, trace) => {
            let (tx, w) =
                synctime_store::spawn_writer(root, trace, RING).expect("open bench store");
            rt = rt.with_log_sink(tx);
            writer = Some(w);
        }
    }
    let behaviors: Vec<Behavior> = (0..RING).map(|p| ring_behavior(p, RING, rounds)).collect();
    let started = Instant::now();
    let run = rt.run(behaviors).expect("ring run");
    let run_ns = started.elapsed().as_nanos();
    let started = Instant::now();
    drop(rt); // release the sink so the writer drains and exits
    if let Some(w) = writer {
        w.finish().expect("seal bench store");
    }
    if let Some(d) = drainer {
        d.join().expect("drainer joins");
    }
    let seal_ns = started.elapsed().as_nanos();
    (run_ns, seal_ns, run.logs().to_vec())
}

// --------------------------------------------------------------- records

struct Record {
    workload: &'static str,
    variant: &'static str,
    dim: usize,
    ops: usize,
    elapsed_ns: u128,
    detail: Vec<(&'static str, Value)>,
}

impl Record {
    fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(self) -> Value {
        let rate = self.ops_per_sec();
        obj(vec![
            ("workload", string(self.workload)),
            ("variant", string(self.variant)),
            ("dim", uint(self.dim as u64)),
            ("ops", uint(self.ops as u64)),
            ("elapsed_ns", uint(self.elapsed_ns as u64)),
            ("ops_per_sec", float(rate)),
            ("detail", obj(self.detail)),
        ])
    }
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (rounds, replay_iters) = if smoke { (64u64, 3usize) } else { (12_000, 10) };
    let entries = RING * 2 * rounds as usize;
    let root = std::env::temp_dir().join(format!("synctime-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench store root");

    // Ingest: bare vs persisted, best of INGEST_REPS, alternating so both
    // variants see the same machine conditions.
    eprintln!("store_replay: ingest, ring of {RING}, {rounds} rounds x{INGEST_REPS}");
    let mut bare_ns = u128::MAX;
    let mut channel_ns = u128::MAX;
    let mut persist_ns = u128::MAX;
    let mut seal_ns = u128::MAX;
    let mut truth: Vec<Vec<LogEntry>> = Vec::new();
    for rep in 0..INGEST_REPS {
        let (ns, _, _) = run_ring(rounds, Sink::Bare);
        bare_ns = bare_ns.min(ns);
        let (ns, _, _) = run_ring(rounds, Sink::Channel);
        channel_ns = channel_ns.min(ns);
        let trace = format!("ring-{rep}");
        let (ns, seal, logs) = run_ring(rounds, Sink::Store(&root, &trace));
        persist_ns = persist_ns.min(ns);
        seal_ns = seal_ns.min(seal);
        truth = logs;
    }
    let last_trace = root.join(format!("ring-{}", INGEST_REPS - 1));

    // Replay: recover the last persisted trace repeatedly — the restart
    // path a serving node pays — then reconstruct stamps from it.
    eprintln!("store_replay: replay, {entries} records x{replay_iters}");
    let mut recovered = synctime_store::read_trace_dir(&last_trace).expect("recover bench trace");
    let started = Instant::now();
    for _ in 0..replay_iters {
        recovered = synctime_store::read_trace_dir(&last_trace).expect("recover bench trace");
    }
    let recover_ns = started.elapsed().as_nanos();
    let started = Instant::now();
    for _ in 0..replay_iters {
        synctime_store::materialize(&recovered.logs).expect("reconstruct bench trace");
    }
    let materialize_ns = started.elapsed().as_nanos();

    let round_trip_identical = recovered.logs == truth && recovered.dropped_records == 0;
    if !round_trip_identical {
        eprintln!(
            "store_replay: DIVERGENCE: recovered logs differ from the run \
             ({} records, {} dropped)",
            recovered.records, recovered.dropped_records
        );
    }
    let _ = std::fs::remove_dir_all(&root);

    let records = vec![
        Record {
            workload: "ingest",
            variant: "bare",
            dim: RING,
            ops: entries,
            elapsed_ns: bare_ns,
            detail: vec![("rounds", uint(rounds)), ("reps", uint(INGEST_REPS as u64))],
        },
        Record {
            workload: "ingest",
            variant: "persist",
            dim: RING,
            ops: entries,
            elapsed_ns: persist_ns,
            detail: vec![("rounds", uint(rounds)), ("reps", uint(INGEST_REPS as u64))],
        },
        Record {
            workload: "ingest",
            variant: "channel",
            dim: RING,
            ops: entries,
            elapsed_ns: channel_ns,
            detail: vec![("rounds", uint(rounds)), ("reps", uint(INGEST_REPS as u64))],
        },
        Record {
            workload: "ingest",
            variant: "seal",
            dim: RING,
            ops: entries,
            elapsed_ns: seal_ns,
            detail: vec![("rounds", uint(rounds)), ("reps", uint(INGEST_REPS as u64))],
        },
        Record {
            workload: "replay",
            variant: "recover",
            dim: RING,
            ops: entries * replay_iters,
            elapsed_ns: recover_ns,
            detail: vec![("iters", uint(replay_iters as u64))],
        },
        Record {
            workload: "replay",
            variant: "materialize",
            dim: RING,
            ops: entries * replay_iters,
            elapsed_ns: materialize_ns,
            detail: vec![("iters", uint(replay_iters as u64))],
        },
    ];

    let ingest_overhead = if bare_ns > 0 {
        persist_ns as f64 / bare_ns as f64
    } else {
        0.0
    };
    let replay_rate = if recover_ns > 0 {
        (entries * replay_iters) as f64 / (recover_ns as f64 / 1e9)
    } else {
        0.0
    };

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        ("parallelism", uint(parallelism as u64)),
        (
            "records",
            Value::Array(records.into_iter().map(Record::to_json).collect()),
        ),
        (
            "derived",
            obj(vec![
                ("ingest_overhead", float(ingest_overhead)),
                ("replay_records_per_sec", float(replay_rate)),
                ("round_trip_identical", Value::Bool(round_trip_identical)),
            ]),
        ),
    ])
}

// ------------------------------------------------------------ validation

/// Checks a report against the v1 record schema, including both floors
/// on full reports. Returns every violation found (empty = conforming).
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    let mode = doc.get_field("mode").and_then(Value::as_str);
    match mode {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    if records.is_empty() {
        errs.push("\"records\" must not be empty".to_string());
    }
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["dim", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
        match r.get_field("detail") {
            Some(Value::Object(_)) => {}
            _ => errs.push(format!("records[{i}].detail must be an object")),
        }
    }
    for workload in ["ingest", "replay"] {
        if !records
            .iter()
            .any(|r| r.get_field("workload").and_then(Value::as_str) == Some(workload))
        {
            errs.push(format!("records must cover the \"{workload}\" workload"));
        }
    }
    let Some(derived) = doc.get_field("derived") else {
        errs.push("\"derived\" must be an object".to_string());
        return errs;
    };
    match derived.get_field("round_trip_identical") {
        Some(Value::Bool(true)) => {}
        _ => errs.push("derived.round_trip_identical must be true".to_string()),
    }
    let full = mode == Some("full");
    let parallelism = match doc.get_field("parallelism").and_then(as_u64) {
        Some(p) if p > 0 => p,
        _ => {
            errs.push("\"parallelism\" must be a positive integer".to_string());
            1
        }
    };
    // The 10% claim is enforced wherever the writer's CPU can overlap
    // the run; a single hardware thread serialises the writer with the
    // run, so the wall ratio is gated at the serial ceiling there.
    let ceiling = if parallelism >= 2 {
        INGEST_CEILING
    } else {
        SERIAL_INGEST_CEILING
    };
    match derived.get_field("ingest_overhead").and_then(as_f64) {
        Some(x) if x > 0.0 => {
            // Full reports carry the durability-is-cheap claim; smoke
            // runs are dominated by fixed fsync costs over tiny work.
            if full && x > ceiling {
                errs.push(format!(
                    "derived.ingest_overhead must be <= {ceiling} in a full report \
                     at parallelism {parallelism}, got {x:.3}"
                ));
            }
        }
        _ => errs.push("derived.ingest_overhead must be positive".to_string()),
    }
    match derived.get_field("replay_records_per_sec").and_then(as_f64) {
        Some(x) if x > 0.0 => {
            if full && x < REPLAY_FLOOR {
                errs.push(format!(
                    "derived.replay_records_per_sec must be >= {REPLAY_FLOOR} in a full report, got {x:.0}"
                ));
            }
        }
        _ => errs.push("derived.replay_records_per_sec must be positive".to_string()),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let failures_own = validate_report(&report);
    let mut failures: Vec<String> = Vec::new();
    failures.extend(failures_own);

    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("store_replay: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("store_replay: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("store_replay: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
