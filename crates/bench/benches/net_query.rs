//! Experiment N1: the network layer — precedence-query server throughput
//! and the TCP transport's overhead against the in-process baseline.
//!
//! Two workload families, self-timed and exported as machine-readable JSON:
//!
//! * `query` — a stamped trace served by `synctime_net::query::serve`;
//!   closed-loop client connections hammer it with `precedes` (and a
//!   `chain-of` variant) over loopback TCP, reporting queries/sec and
//!   nearest-rank p50/p99 latency. The paper's selling point is O(d)
//!   comparisons per query; the server should sustain well over 10k
//!   queries/sec even with framing and socket hops in the path.
//! * `ring_transport` — the same token-ring behaviors run in-process
//!   (parking matcher) and as a loopback TCP mesh, so the transport's
//!   cost per rendezvous and its wire accounting sit side by side.
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench net_query
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks the workloads for CI; `--validate PATH` checks an
//! existing report (e.g. `results/BENCH_net.json`) against the
//! `synctime/bench_net/v1` schema. The full run additionally enforces the
//! acceptance floor: `query/precedes` must exceed 10_000 queries/sec.

use std::net::TcpListener;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use synctime_core::online::OnlineStamper;
use synctime_graph::{decompose, topology, EdgeDecomposition, Graph};
use synctime_net::{topology_hash_of, QueryClient, QueryService, TcpMeshBuilder};
use synctime_obs::{nearest_rank_percentile, RunStats};
use synctime_runtime::{Behavior, Runtime};

const SCHEMA: &str = "synctime/bench_net/v1";
const QPS_FLOOR: f64 = 10_000.0;

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

struct Record {
    workload: &'static str,
    variant: &'static str,
    processes: usize,
    ops: u64,
    elapsed_ns: u128,
    detail: Value,
}

impl Record {
    fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("workload", string(self.workload)),
            ("variant", string(self.variant)),
            ("processes", uint(self.processes as u64)),
            ("ops", uint(self.ops)),
            ("elapsed_ns", uint(self.elapsed_ns as u64)),
            ("ops_per_sec", float(self.ops_per_sec())),
            ("detail", self.detail.clone()),
        ])
    }
}

// ----------------------------------------------------------- query server

/// Spawns a query server over a freshly stamped random trace and runs
/// `connections` closed-loop clients, each issuing `per_client` queries of
/// the given kind. Latency percentiles are nearest-rank over every query.
fn bench_query(
    processes: usize,
    messages: usize,
    connections: usize,
    per_client: usize,
    chain: bool,
) -> Record {
    let topo = topology::complete(processes);
    let mut rng = StdRng::seed_from_u64(7);
    let comp = synctime_sim::workload::RandomWorkload::messages(messages).generate(&topo, &mut rng);
    let dec = decompose::best_known(&topo);
    let stamps = OnlineStamper::new(&dec)
        .stamp_computation(&comp)
        .expect("stamping a generated trace");
    let m = stamps.len() as u32;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let _ = synctime_net::query::serve(listener, QueryService::new(stamps));
    });

    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(&addr).expect("connect to query server");
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                let mut latencies = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let m1 = rng.gen_range(0..m);
                    let m2 = rng.gen_range(0..m);
                    let at = Instant::now();
                    if chain {
                        client.chain_of(m1).expect("chain query");
                    } else {
                        client.precedes(m1, m2).expect("precedes query");
                    }
                    latencies.push(at.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(connections * per_client);
    for w in workers {
        latencies.extend(w.join().expect("client thread"));
    }
    let elapsed_ns = started.elapsed().as_nanos();
    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    Record {
        workload: "query",
        variant: if chain { "chain_of" } else { "precedes" },
        processes,
        ops,
        elapsed_ns,
        detail: obj(vec![
            ("messages", uint(m as u64)),
            ("connections", uint(connections as u64)),
            ("dimension", uint(dec.len() as u64)),
            ("p50_ns", uint(nearest_rank_percentile(&latencies, 50, 100))),
            ("p99_ns", uint(nearest_rank_percentile(&latencies, 99, 100))),
        ]),
    }
}

// -------------------------------------------------------- ring transport

fn ring_behaviors(n: usize, rounds: u64) -> Vec<Behavior> {
    (0..n)
        .map(|id| -> Behavior {
            let next = (id + 1) % n;
            let prev = (id + n - 1) % n;
            Box::new(move |ctx| {
                for r in 0..rounds {
                    if ctx.id() == 0 {
                        ctx.send(next, r)?;
                        ctx.receive_from(prev)?;
                    } else {
                        ctx.receive_from(prev)?;
                        ctx.send(next, r)?;
                    }
                }
                Ok(())
            })
        })
        .collect()
}

fn transport_detail(stats: &RunStats) -> Value {
    obj(vec![
        ("total_wire_bytes", uint(stats.total_wire_bytes)),
        ("wire_savings_ratio", float(stats.wire_savings_ratio)),
        ("ack_latency_p50_ns", uint(stats.ack_latency_p50_ns)),
        ("ack_latency_p99_ns", uint(stats.ack_latency_p99_ns)),
    ])
}

fn bench_ring_local(n: usize, rounds: u64) -> Record {
    let topo = topology::cycle(n);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec);
    let started = Instant::now();
    let run = rt.run(ring_behaviors(n, rounds)).expect("local ring run");
    let elapsed_ns = started.elapsed().as_nanos();
    let stats = run.stats();
    assert_eq!(stats.messages, n as u64 * rounds);
    Record {
        workload: "ring_transport",
        variant: "local",
        processes: n,
        ops: stats.messages,
        elapsed_ns,
        detail: transport_detail(stats),
    }
}

fn bench_ring_tcp(n: usize, rounds: u64) -> Record {
    let topo = topology::cycle(n);
    let dec = decompose::best_known(&topo);
    let hash = topology_hash_of(n, &dec);
    let builders: Vec<TcpMeshBuilder> = (0..n)
        .map(|_| TcpMeshBuilder::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = builders.iter().map(TcpMeshBuilder::local_addr).collect();
    let started = Instant::now();
    let handles: Vec<_> = builders
        .into_iter()
        .zip(ring_behaviors(n, rounds))
        .enumerate()
        .map(|(id, (builder, behavior))| {
            let topo: Graph = topo.clone();
            let dec: EdgeDecomposition = dec.clone();
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let neighbors: Vec<usize> = topo.neighbors(id).collect();
                let mesh = builder
                    .establish(
                        id,
                        &addrs,
                        &neighbors,
                        hash,
                        std::time::Duration::from_secs(20),
                    )
                    .expect("mesh establishment");
                let (tx, rx) = mesh.channels();
                Runtime::new(&topo, &dec).run_process(id, behavior, tx, rx)
            })
        })
        .collect();
    let mut parts = Vec::with_capacity(n);
    for h in handles {
        let run = h.join().expect("node thread");
        assert_eq!(run.outcome(), None, "tcp ring node failed");
        let (_, _, _, stats) = run.into_parts();
        parts.push(stats);
    }
    let elapsed_ns = started.elapsed().as_nanos();
    let stats = RunStats::merged(&parts);
    assert_eq!(stats.messages, n as u64 * rounds);
    Record {
        workload: "ring_transport",
        variant: "tcp",
        processes: n,
        ops: stats.messages,
        elapsed_ns,
        detail: transport_detail(&stats),
    }
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (messages, connections, per_client, ring_rounds) = if smoke {
        (60, 2, 50, 5)
    } else {
        (2_000, 4, 20_000, 400)
    };
    let mut records = Vec::new();
    eprintln!(
        "net_query: query server ({connections} connections x {per_client} queries, \
         {messages}-message trace)"
    );
    records.push(bench_query(8, messages, connections, per_client, false));
    records.push(bench_query(8, messages, connections, per_client / 4, true));
    eprintln!("net_query: ring transport ({ring_rounds} rounds x 6 processes, local vs tcp)");
    records.push(bench_ring_local(6, ring_rounds));
    records.push(bench_ring_tcp(6, ring_rounds));

    let rate = |workload: &str, variant: &str| -> f64 {
        records
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .map(Record::ops_per_sec)
            .unwrap_or(0.0)
    };
    let tcp_rate = rate("ring_transport", "tcp");
    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        (
            "records",
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
        (
            "derived",
            obj(vec![
                ("query_precedes_qps", float(rate("query", "precedes"))),
                ("query_chain_qps", float(rate("query", "chain_of"))),
                (
                    "transport_slowdown_tcp_vs_local",
                    float(if tcp_rate > 0.0 {
                        rate("ring_transport", "local") / tcp_rate
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------- validation

/// Checks a report against the v1 schema. Returns every violation found.
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    let mode = doc.get_field("mode").and_then(Value::as_str);
    match mode {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    if records.is_empty() {
        errs.push("\"records\" must not be empty".to_string());
    }
    let mut precedes_qps = None;
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["processes", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
        match r.get_field("detail") {
            Some(Value::Object(_)) => {}
            _ => errs.push(format!("records[{i}].detail must be an object")),
        }
        // Query records must carry their latency percentiles.
        if r.get_field("workload").and_then(Value::as_str) == Some("query") {
            for key in ["p50_ns", "p99_ns"] {
                if r.get_field("detail")
                    .and_then(|d| d.get_field(key))
                    .and_then(as_u64)
                    .is_none()
                {
                    errs.push(format!(
                        "records[{i}].detail.{key} must be an unsigned integer"
                    ));
                }
            }
            if r.get_field("variant").and_then(Value::as_str) == Some("precedes") {
                precedes_qps = r.get_field("ops_per_sec").and_then(as_f64);
            }
        }
    }
    match doc.get_field("derived") {
        Some(Value::Object(_)) => {}
        _ => errs.push("\"derived\" must be an object".to_string()),
    }
    // The acceptance floor binds full runs only; smoke runs are a bit-rot
    // gate, not a performance claim.
    if mode == Some("full") {
        match precedes_qps {
            Some(qps) if qps >= QPS_FLOOR => {}
            Some(qps) => errs.push(format!(
                "full-mode query/precedes throughput {qps:.0} qps is below the {QPS_FLOOR:.0} floor"
            )),
            None => errs.push("full report has no query/precedes record".to_string()),
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let mut failures = validate_report(&report);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("net_query: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("net_query: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("net_query: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
